#!/usr/bin/env python
"""End-to-end smoke for the cluster tier, driven like CI drives it.

Starts ``photomosaic serve-cluster`` plus two ``serve-node`` workers as
real subprocesses, runs mixed job kinds (mosaic dense/sparse and a
library job) through the coordinator, then SIGKILLs the node that owns a
paced job mid-stream and requires the coordinator to re-dispatch it to
the survivor: the client's one event stream must stay gap-free across
the failure, carry exactly one ``redispatch`` marker and exactly one
terminal DONE, and ``?from_seq`` resume must replay the same suffix.
Finishes by validating the cluster metrics exposition and a graceful
drain of the survivors.

Usage: PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.imaging import save_image  # noqa: E402
from repro.library import (  # noqa: E402
    LibraryIndex,
    synthetic_target,
    write_synthetic_library,
)
from repro.service.client import MosaicServiceClient  # noqa: E402

FLOOR = 2.0  # paced jobs give the crash a comfortable mid-stream window


def spawn(argv: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("PHOTOMOSAIC_TOKEN", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def listening(process: subprocess.Popen) -> dict:
    line = process.stdout.readline()
    if not line:
        raise RuntimeError(f"early exit: {process.stderr.read()[-2000:]}")
    info = json.loads(line)
    assert info["kind"] == "listening", info
    return info


def library_assets(root: str) -> tuple[str, str]:
    libdir = os.path.join(root, "lib")
    write_synthetic_library(libdir, 40, size=16, seed=11)
    target = os.path.join(root, "target.pgm")
    save_image(target, synthetic_target(64, seed=6))
    index, _ = LibraryIndex.from_directory(libdir, tile_size=8, thumb_size=16)
    npz = os.path.join(root, "lib.npz")
    index.save(npz)
    return npz, target


def check_stream(events: list[dict]) -> None:
    assert [e["seq"] for e in events] == list(range(len(events))), events
    assert [e["terminal"] for e in events].count(True) == 1
    assert events[-1]["payload"]["state"] == "DONE", events[-1]
    assert events[-1]["payload"].get("result_digest"), events[-1]
    assert all("ts" in (e.get("payload") or {}) for e in events)


def main() -> int:  # noqa: PLR0915 - one linear smoke scenario
    root = tempfile.mkdtemp(prefix="cluster-smoke-")
    npz, target = library_assets(root)

    coordinator = spawn(
        ["serve-cluster", "--port", "0", "--heartbeat-deadline", "1.0"]
    )
    nodes: dict[str, subprocess.Popen] = {}
    try:
        port = listening(coordinator)["port"]
        for node_id in ("w0", "w1"):
            node = spawn(
                [
                    "serve-node",
                    "--coordinator", f"127.0.0.1:{port}",
                    "--node-id", node_id,
                    "--port", "0",
                    "--workers", "2",
                    "--job-floor-seconds", str(FLOOR),
                    "--heartbeat-interval", "0.3",
                    "--outdir", os.path.join(root, node_id, "out"),
                    "--cache-dir", os.path.join(root, node_id, "cache"),
                ]
            )
            listening(node)
            nodes[node_id] = node

        client = MosaicServiceClient(f"http://127.0.0.1:{port}")
        deadline = time.monotonic() + 30.0
        while client.health().get("nodes_up") != 2:
            assert time.monotonic() < deadline, "nodes never registered"
            time.sleep(0.1)

        # --- mixed job kinds through the coordinator -------------------
        mixed = [
            {"name": "m-dense", "input": "portrait", "target": "sailboat",
             "size": 32, "tile_size": 8, "seed": 3},
            {"name": "m-sparse", "input": "peppers", "target": "sailboat",
             "size": 32, "tile_size": 8, "seed": 3, "shortlist_top_k": 4},
            {"name": "m-library", "kind": "library", "input": npz,
             "target": target, "size": 64, "tile_size": 8,
             "thumb_size": 16, "top_k": 8, "seed": 4},
        ]
        submitted = [client.submit(job) for job in mixed]
        streams = {
            job["job_id"]: list(client.events(job["job_id"]))
            for job in submitted
        }
        for events in streams.values():
            check_stream(events)

        # resume through the coordinator, regardless of executing node
        full = streams[submitted[0]["job_id"]]
        cut = len(full) // 2
        resumed = list(client.events(submitted[0]["job_id"], from_seq=cut))
        assert [e["seq"] for e in resumed] == [e["seq"] for e in full[cut:]]

        # --- SIGKILL the owner of a paced job mid-stream ---------------
        victim_job = client.submit(
            {"name": "crash-me", "input": "barbara", "target": "sailboat",
             "size": 32, "tile_size": 8, "seed": 8}
        )
        victim = victim_job["node"]
        survivor = "w1" if victim == "w0" else "w0"
        crash_events = []
        for event in client.events(victim_job["job_id"]):
            crash_events.append(event)
            if len(crash_events) == 2:  # provably mid-stream
                nodes[victim].kill()
        check_stream(crash_events)
        markers = [e for e in crash_events if e["kind"] == "redispatch"]
        assert len(markers) == 1, crash_events
        assert markers[0]["payload"]["from_node"] == victim
        assert markers[0]["payload"]["to_node"] == survivor
        record = client.job(victim_job["job_id"])
        assert record["node"] == survivor
        assert record["redispatches"] == 1

        # late resume replays the post-crash suffix identically
        resumed = list(client.events(victim_job["job_id"], from_seq=2))
        assert [(e["seq"], e["kind"]) for e in resumed] == [
            (e["seq"], e["kind"]) for e in crash_events[2:]
        ]

        # --- cluster metrics exposition --------------------------------
        text = client.metrics_text()
        samples = {
            line.rpartition(" ")[0]: float(line.rpartition(" ")[2])
            for line in text.splitlines()
            if line and not line.startswith("#")
        }
        assert samples["cluster_nodes_up"] == 1.0  # the survivor
        assert samples["cluster_jobs_dispatched_total"] >= 4
        assert samples["cluster_jobs_redispatched_total"] == 1.0
        assert samples["cluster_events_replicated_total"] >= sum(
            len(s) for s in streams.values()
        )
        assert f'node_up_{survivor}' in " ".join(samples)

        # --- graceful drain of the survivors ---------------------------
        nodes[survivor].send_signal(signal.SIGTERM)
        out, err = nodes[survivor].communicate(timeout=60)
        assert nodes[survivor].returncode == 0, f"node exit:\n{err}"
        assert json.loads(out.splitlines()[-1])["kind"] == "drained"
        coordinator.send_signal(signal.SIGTERM)
        out, err = coordinator.communicate(timeout=60)
        assert coordinator.returncode == 0, f"coordinator exit:\n{err}"
        assert json.loads(out.splitlines()[-1])["kind"] == "drained"

        print(
            "cluster smoke ok:",
            {
                "mixed_streams": {j: len(s) for j, s in streams.items()},
                "crash_events": len(crash_events),
                "victim": victim,
                "survivor": survivor,
            },
        )
        return 0
    finally:
        for process in (*nodes.values(), coordinator):
            if process.poll() is None:
                process.kill()
                process.communicate()


if __name__ == "__main__":
    sys.exit(main())
