#!/usr/bin/env python
"""End-to-end smoke for the HTTP front, driven like CI drives it.

Starts ``photomosaic serve-http`` as a real subprocess on a free port,
submits three jobs through the stdlib client, checks every event stream
is ordered with exactly one terminal DONE, exercises ``?from_seq``
resume, validates the Prometheus ``/metrics`` exposition, then sends
SIGTERM and requires a graceful drain (exit 0, final ``drained`` line).

Usage: PYTHONPATH=src python scripts/http_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import MosaicServiceClient  # noqa: E402

JOBS = [
    {"input": "portrait", "target": "sailboat", "size": 64, "tile_size": 8, "name": "a"},
    {"input": "peppers", "target": "sailboat", "size": 64, "tile_size": 8, "name": "b"},
    {"input": "barbara", "target": "sailboat", "size": 64, "tile_size": 8, "name": "c"},
]


def check_stream(events: list[dict]) -> None:
    assert [e["seq"] for e in events] == list(range(len(events))), events
    assert events[0]["kind"] == "admitted"
    assert [e["terminal"] for e in events].count(True) == 1
    assert events[-1]["payload"]["state"] == "DONE", events[-1]
    assert sum(e["kind"] == "phase" for e in events) >= 1


def check_metrics(text: str) -> None:
    lines = [l for l in text.splitlines() if l]
    names = {
        l.split()[2] for l in lines if l.startswith("# TYPE ")
    }
    for required in (
        "http_requests_total",
        "http_responses_2xx_total",
        "http_request_latency_seconds",
        "gateway_admitted",
        "jobs_done",
    ):
        assert required in names, f"missing {required} in /metrics"
    for line in lines:
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        name_part, _, value = line.rpartition(" ")
        float(value)  # every sample value must parse
        assert name_part, line
    samples = {
        l.rpartition(" ")[0]: float(l.rpartition(" ")[2])
        for l in lines
        if not l.startswith("#")
    }
    assert samples["gateway_admitted"] == len(JOBS)
    assert samples["jobs_done"] == len(JOBS)


def main() -> int:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-http",
            "--port", "0", "--workers", "2", "--outdir", "http_smoke_out",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        listening = json.loads(process.stdout.readline())
        assert listening["kind"] == "listening", listening
        client = MosaicServiceClient(f"http://127.0.0.1:{listening['port']}")

        submitted = [client.submit(job) for job in JOBS]
        streams = {
            job["job_id"]: list(client.events(job["job_id"]))
            for job in submitted
        }
        for events in streams.values():
            check_stream(events)

        # Resume: re-fetch one stream's suffix and compare exactly.
        full = streams[submitted[0]["job_id"]]
        cut = len(full) // 2
        resumed = list(client.events(submitted[0]["job_id"], from_seq=cut))
        assert [e["seq"] for e in resumed] == [e["seq"] for e in full[cut:]]

        listing = client.jobs()
        assert sorted(j["name"] for j in listing) == ["a", "b", "c"]
        assert client.health()["status"] == "ok"
        check_metrics(client.metrics_text())

        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 0, f"exit {process.returncode}:\n{err}"
        final = json.loads(out.splitlines()[-1])
        assert final["kind"] == "drained", final
        assert final["jobs"] == len(JOBS), final
        print(
            "http smoke ok:",
            {jid: len(events) for jid, events in streams.items()},
        )
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


if __name__ == "__main__":
    sys.exit(main())
