#!/usr/bin/env python
"""End-to-end smoke for the tile-library pipeline, driven like CI drives it.

Builds a tiny synthetic library on disk, runs ``photomosaic library
build`` twice against a shared cache directory (the second pass must be
a >= 90% warm ingest), then starts ``photomosaic serve-http`` as a real
subprocess and submits two identical ``kind="library"`` jobs: each event
stream must be ordered with the four pipeline phases
(ingest/shortlist/assign/render) and exactly one terminal DONE, the job
summaries must carry the library stats block, and the two rendered
outputs must be bit-identical (the pipeline is deterministic given the
seed).  Finishes with SIGTERM and requires a graceful drain.

Usage: PYTHONPATH=src python scripts/library_smoke.py
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import signal
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.imaging import save_image  # noqa: E402
from repro.library import synthetic_target, write_synthetic_library  # noqa: E402
from repro.service.client import MosaicServiceClient  # noqa: E402

WORKDIR = "library_smoke_out"
LIBRARY_IMAGES = 60
PHASES = ("ingest", "shortlist", "assign", "render")


def run_cli(*args: str) -> str:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{' '.join(args)} exited {result.returncode}:\n{result.stderr}"
    )
    return result.stdout


def parse_build(stdout: str) -> tuple[float, str]:
    hit_rate = float(re.search(r"ingest hit rate : ([\d.]+)", stdout).group(1))
    fingerprint = re.search(r"fingerprint     : (\w+)", stdout).group(1)
    return hit_rate, fingerprint


def build_library() -> tuple[str, str]:
    libdir = os.path.join(WORKDIR, "lib")
    write_synthetic_library(libdir, LIBRARY_IMAGES, size=16, seed=20)
    target = os.path.join(WORKDIR, "target.pgm")
    save_image(target, synthetic_target(64, seed=8))

    npz = os.path.join(WORKDIR, "lib.npz")
    cache_dir = os.path.join(WORKDIR, "cache")
    build_args = (
        "library", "build", "--source", libdir, "--output", npz,
        "--tile-size", "8", "--thumb-size", "16", "--cache-dir", cache_dir,
    )
    cold_rate, cold_fp = parse_build(run_cli(*build_args))
    warm_rate, warm_fp = parse_build(run_cli(*build_args))
    assert cold_rate == 0.0, f"cold build hit rate {cold_rate}"
    assert warm_rate >= 0.9, f"warm build hit rate {warm_rate} < 0.9"
    assert cold_fp == warm_fp, "index fingerprint drifted between builds"
    print(f"library build ok: warm ingest hit rate {warm_rate:.3f}")
    return npz, target


def library_job(npz: str, target: str, name: str) -> dict:
    return {
        "kind": "library",
        "input": npz,
        "target": target,
        "size": 64,
        "tile_size": 8,
        "thumb_size": 16,
        "top_k": 8,
        "repetition_penalty": 1.0,
        "seed": 3,
        "name": name,
        "output": f"{name}.pgm",
    }


def check_stream(events: list[dict]) -> None:
    assert [e["seq"] for e in events] == list(range(len(events))), events
    assert events[0]["kind"] == "admitted"
    assert [e["terminal"] for e in events].count(True) == 1
    assert events[-1]["payload"]["state"] == "DONE", events[-1]
    phases = [e["payload"]["phase"] for e in events if e["kind"] == "phase"]
    assert phases == list(PHASES), phases


def check_summary(summary: dict) -> None:
    lib = summary["library"]
    assert lib["library_size"] == LIBRARY_IMAGES, lib
    assert lib["shortlist_k"] == 8, lib
    assert lib["max_reuse"] >= 1, lib
    assert summary["sweeps"] is None, summary
    for phase in PHASES:
        assert phase in summary["timings"], summary["timings"]


def file_sha256(path: str) -> str:
    with open(path, "rb") as fh:
        return hashlib.sha256(fh.read()).hexdigest()


def main() -> int:
    os.makedirs(WORKDIR, exist_ok=True)
    npz, target = build_library()

    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve-http",
            "--port", "0", "--workers", "2", "--outdir", WORKDIR,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        listening = json.loads(process.stdout.readline())
        assert listening["kind"] == "listening", listening
        client = MosaicServiceClient(f"http://127.0.0.1:{listening['port']}")

        jobs = [
            client.submit(library_job(npz, target, name))
            for name in ("lib-a", "lib-b")
        ]
        for job in jobs:
            check_stream(list(client.events(job["job_id"])))
            check_summary(client.job(job["job_id"]))

        digests = {
            name: file_sha256(os.path.join(WORKDIR, f"{name}.pgm"))
            for name in ("lib-a", "lib-b")
        }
        assert digests["lib-a"] == digests["lib-b"], (
            f"library mosaic not deterministic: {digests}"
        )

        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=60)
        assert process.returncode == 0, f"exit {process.returncode}:\n{err}"
        final = json.loads(out.splitlines()[-1])
        assert final["kind"] == "drained", final
        assert final["jobs"] == len(jobs), final
        print(f"library smoke ok: checksum {digests['lib-a'][:16]}")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


if __name__ == "__main__":
    sys.exit(main())
