#!/usr/bin/env python
"""Regenerate the golden pipeline checksums in ``tests/data/goldens.json``.

The golden layer pins full end-to-end pipeline outputs — the permutation,
the rendered mosaic, the total error, and the bytes the uncompressed
image writers produce — for a small table of deterministic cases.  The
case table and the checksum computation live HERE, and the golden test
imports them from this script, so test and regeneration can never drift
apart.

Run from the repository root after an intentional output-changing change:

    PYTHONPATH=src python scripts/regen_goldens.py

then commit the updated ``tests/data/goldens.json`` together with the
change that motivated it.  The diff of the JSON file is the review
artifact: an unexpected checksum change means the pipeline's output
changed when it should not have.

Determinism notes:

* cases use the in-repo ``hungarian`` solver rather than ``scipy`` so
  optimal-assignment tie-breaking cannot drift with library versions;
* PGM and BMP files are written uncompressed, so their raw bytes are
  checksummed; PNG involves zlib, whose output may vary across zlib
  builds, so PNG is covered by a write/read pixel roundtrip instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(SCRIPT_DIR)
GOLDENS_PATH = os.path.join(REPO_ROOT, "tests", "data", "goldens.json")

#: The golden case table.  Every knob that affects output is spelled out
#: explicitly, so a default drifting elsewhere cannot silently change
#: what these cases mean.
CASES: dict[str, dict] = {
    "optimization-hungarian-48": {
        "input": "portrait",
        "target": "sailboat",
        "size": 48,
        "tile_size": 8,
        "algorithm": "optimization",
        "solver": "hungarian",
    },
    "approximation-serial-48": {
        "input": "portrait",
        "target": "sailboat",
        "size": 48,
        "tile_size": 8,
        "algorithm": "approximation",
        "serial_strategy": "first",
    },
    "parallel-vectorized-64": {
        "input": "peppers",
        "target": "baboon",
        "size": 64,
        "tile_size": 8,
        "algorithm": "parallel",
        "parallel_backend": "vectorized",
    },
}


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def compute_case(name: str) -> dict:
    """Run one golden case end to end and return its checksum record."""
    import numpy as np

    from repro import generate_photomosaic, standard_image
    from repro.imaging.iohub import write_bmp, write_pgm

    params = dict(CASES[name])
    inp = standard_image(params.pop("input"), params.pop("size"))
    tgt = standard_image(params["target"], inp.shape[0])
    del params["target"]
    result = generate_photomosaic(inp, tgt, **params)

    record = {
        "total_error": int(result.total_error),
        "permutation_sha256": _sha256(
            np.asarray(result.permutation, dtype=np.int64).tobytes()
        ),
        "image_sha256": _sha256(
            np.ascontiguousarray(result.image, dtype=np.uint8).tobytes()
        ),
        "image_shape": list(result.image.shape),
    }

    # Uncompressed writers: pin the exact file bytes.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        pgm = os.path.join(tmp, "mosaic.pgm")
        bmp = os.path.join(tmp, "mosaic.bmp")
        write_pgm(pgm, result.image)
        write_bmp(bmp, result.image)
        with open(pgm, "rb") as fh:
            record["pgm_sha256"] = _sha256(fh.read())
        with open(bmp, "rb") as fh:
            record["bmp_sha256"] = _sha256(fh.read())
    return record


def compute_all() -> dict:
    return {name: compute_case(name) for name in sorted(CASES)}


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    goldens = {
        "_comment": (
            "Golden end-to-end pipeline checksums. Regenerate with "
            "`PYTHONPATH=src python scripts/regen_goldens.py` and commit "
            "the diff alongside the change that altered the output."
        ),
        "cases": compute_all(),
    }
    os.makedirs(os.path.dirname(GOLDENS_PATH), exist_ok=True)
    with open(GOLDENS_PATH, "w", encoding="utf-8") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(goldens['cases'])} golden cases to {GOLDENS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
