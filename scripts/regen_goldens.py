#!/usr/bin/env python
"""Regenerate the golden pipeline checksums in ``tests/data/goldens.json``.

The golden layer pins full end-to-end pipeline outputs — the permutation,
the rendered mosaic, the total error, and the bytes the uncompressed
image writers produce — for a small table of deterministic cases.  The
case table and the checksum computation live HERE, and the golden test
imports them from this script, so test and regeneration can never drift
apart.

Run from the repository root after an intentional output-changing change:

    PYTHONPATH=src python scripts/regen_goldens.py

then commit the updated ``tests/data/goldens.json`` together with the
change that motivated it.  The diff of the JSON file is the review
artifact: an unexpected checksum change means the pipeline's output
changed when it should not have.

Determinism notes:

* cases use the in-repo ``hungarian`` solver rather than ``scipy`` so
  optimal-assignment tie-breaking cannot drift with library versions;
* PGM and BMP files are written uncompressed, so their raw bytes are
  checksummed; PNG involves zlib, whose output may vary across zlib
  builds, so PNG is covered by a write/read pixel roundtrip instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

SCRIPT_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(SCRIPT_DIR)
GOLDENS_PATH = os.path.join(REPO_ROOT, "tests", "data", "goldens.json")

#: The golden case table.  Every knob that affects output is spelled out
#: explicitly, so a default drifting elsewhere cannot silently change
#: what these cases mean.
CASES: dict[str, dict] = {
    "optimization-hungarian-48": {
        "input": "portrait",
        "target": "sailboat",
        "size": 48,
        "tile_size": 8,
        "algorithm": "optimization",
        "solver": "hungarian",
    },
    "approximation-serial-48": {
        "input": "portrait",
        "target": "sailboat",
        "size": 48,
        "tile_size": 8,
        "algorithm": "approximation",
        "serial_strategy": "first",
    },
    "parallel-vectorized-64": {
        "input": "peppers",
        "target": "baboon",
        "size": 64,
        "tile_size": 8,
        "algorithm": "parallel",
        "parallel_backend": "vectorized",
    },
    # Sparse Step 2 (repro.cost.sparse) at poster scale: S=1024 tiles,
    # top_k=32 sketch-shortlisted candidates per tile, 2-opt polishing a
    # solver warm start inside the candidate graph.  Pins the whole
    # sparse pipeline — sketching, seeded k-means preference orders,
    # degree-capped selection, exact scoring, sparse warm start and the
    # candidate-restricted sweeps.
    "sparse-2opt-256": {
        "input": "portrait",
        "target": "sailboat",
        "size": 256,
        "tile_size": 8,
        "algorithm": "parallel",
        "parallel_backend": "vectorized",
        "shortlist_top_k": 32,
        "sketch": "mean",
        "shortlist_seed": 11,
    },
    # Many-to-one library pipeline (repro.library): a seeded synthetic
    # 500-image library composed onto a synthetic target.  Pins the
    # chosen-tile vector and the rendered mosaic, plus the reuse profile
    # the repetition penalty is responsible for.
    "library-greedy-500": {
        "kind": "library",
        "library_count": 500,
        "library_image_size": 16,
        "library_seed": 2025,
        "target_size": 64,
        "target_seed": 9,
        "tile_size": 8,
        "thumb_size": 16,
        "top_k": 12,
        "repetition_penalty": 1.0,
        "seed": 7,
    },
}


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def run_library_case(name: str):
    """Run one library-pipeline golden case; returns (result, index)."""
    from repro.library import (
        LibraryConfig,
        LibraryIndex,
        LibraryMosaicEngine,
        synthetic_library_images,
        synthetic_target,
    )

    params = dict(CASES[name])
    params.pop("kind")
    images = synthetic_library_images(
        params.pop("library_count"),
        size=params.pop("library_image_size"),
        seed=params.pop("library_seed"),
    )
    target = synthetic_target(
        params.pop("target_size"), seed=params.pop("target_seed")
    )
    seed = params.pop("seed")
    config = LibraryConfig(
        tile_size=params.pop("tile_size"),
        thumb_size=params.pop("thumb_size"),
        **params,
    )
    index = LibraryIndex.from_images(
        images,
        tile_size=config.tile_size,
        thumb_size=config.thumb_size,
        sketch_grid=config.sketch_grid,
    )
    return LibraryMosaicEngine(config).generate(index, target, seed=seed), index


def compute_library_case(name: str) -> dict:
    """Run one library-pipeline golden case and return its record."""
    import numpy as np

    from repro.imaging.iohub import write_pgm

    result, index = run_library_case(name)

    record = {
        "total_error": int(result.total_error),
        "choice_sha256": _sha256(
            np.asarray(result.choice, dtype=np.int64).tobytes()
        ),
        "image_sha256": _sha256(
            np.ascontiguousarray(result.image, dtype=np.uint8).tobytes()
        ),
        "image_shape": list(result.image.shape),
        "max_reuse": int(result.max_reuse),
        "unique_tiles": int(result.unique_tiles),
        "index_fingerprint": index.content_fingerprint(),
    }
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        pgm = os.path.join(tmp, "mosaic.pgm")
        write_pgm(pgm, result.image)
        with open(pgm, "rb") as fh:
            record["pgm_sha256"] = _sha256(fh.read())
    return record


def run_mosaic_case(name: str):
    """Run one rearrangement-pipeline golden case; returns the result."""
    from repro import generate_photomosaic, standard_image

    params = dict(CASES[name])
    inp = standard_image(params.pop("input"), params.pop("size"))
    tgt = standard_image(params.pop("target"), inp.shape[0])
    return generate_photomosaic(inp, tgt, **params)


def render_case(name: str):
    """Run any golden case and return the rendered mosaic image."""
    if CASES[name].get("kind") == "library":
        return run_library_case(name)[0].image
    return run_mosaic_case(name).image


def compute_case(name: str) -> dict:
    """Run one golden case end to end and return its checksum record."""
    import numpy as np

    from repro.imaging.iohub import write_bmp, write_pgm

    if CASES[name].get("kind") == "library":
        return compute_library_case(name)
    result = run_mosaic_case(name)

    record = {
        "total_error": int(result.total_error),
        "permutation_sha256": _sha256(
            np.asarray(result.permutation, dtype=np.int64).tobytes()
        ),
        "image_sha256": _sha256(
            np.ascontiguousarray(result.image, dtype=np.uint8).tobytes()
        ),
        "image_shape": list(result.image.shape),
    }

    # Uncompressed writers: pin the exact file bytes.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        pgm = os.path.join(tmp, "mosaic.pgm")
        bmp = os.path.join(tmp, "mosaic.bmp")
        write_pgm(pgm, result.image)
        write_bmp(bmp, result.image)
        with open(pgm, "rb") as fh:
            record["pgm_sha256"] = _sha256(fh.read())
        with open(bmp, "rb") as fh:
            record["bmp_sha256"] = _sha256(fh.read())
    return record


def compute_all() -> dict:
    return {name: compute_case(name) for name in sorted(CASES)}


def main() -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    goldens = {
        "_comment": (
            "Golden end-to-end pipeline checksums. Regenerate with "
            "`PYTHONPATH=src python scripts/regen_goldens.py` and commit "
            "the diff alongside the change that altered the output."
        ),
        "cases": compute_all(),
    }
    os.makedirs(os.path.dirname(GOLDENS_PATH), exist_ok=True)
    with open(GOLDENS_PATH, "w", encoding="utf-8") as fh:
        json.dump(goldens, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(goldens['cases'])} golden cases to {GOLDENS_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
