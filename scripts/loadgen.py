#!/usr/bin/env python
"""Seeded mixed-traffic load generator CLI for any service front.

Thin argparse shell over :func:`repro.service.cluster.loadgen.run_load`:
point it at a coordinator (or a bare single-node front — the protocol is
identical), choose the client count and job mix, and it prints the
aggregated :class:`LoadReport` as one JSON object.  The same seed against
the same topology replays the identical request sequence, so a run is a
reproducible probe, not a one-off.

Usage:
    PYTHONPATH=src python scripts/loadgen.py http://127.0.0.1:8700 \
        --clients 8 --jobs-per-client 4 --seed 7
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.cluster.loadgen import LoadConfig, run_load  # noqa: E402


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base_url", help="front to drive, e.g. http://127.0.0.1:8700")
    parser.add_argument(
        "--token", default=None,
        help="bearer token (default: PHOTOMOSAIC_TOKEN if set)",
    )
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads")
    parser.add_argument("--jobs-per-client", type=int, default=4,
                        help="submit->stream loops per client")
    parser.add_argument(
        "--cancel-fraction", type=float, default=0.15,
        help="seeded fraction of jobs cancelled mid-stream",
    )
    parser.add_argument(
        "--sparse-fraction", type=float, default=0.5,
        help="seeded fraction of jobs using sparse (shortlisted) Step 2",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for every client's traffic stream")
    parser.add_argument("--size", type=int, default=32, help="mosaic size")
    parser.add_argument("--tile-size", type=int, default=8)
    parser.add_argument(
        "--submit-timeout", type=float, default=60.0,
        help="max seconds to wait for admission per job",
    )
    parser.add_argument(
        "--stream-timeout", type=float, default=120.0,
        help="per-stream inactivity timeout in seconds",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    config = LoadConfig(
        base_url=args.base_url,
        token=args.token or os.environ.get("PHOTOMOSAIC_TOKEN") or None,
        clients=args.clients,
        jobs_per_client=args.jobs_per_client,
        cancel_fraction=args.cancel_fraction,
        sparse_fraction=args.sparse_fraction,
        seed=args.seed,
        size=args.size,
        tile_size=args.tile_size,
        submit_timeout=args.submit_timeout,
        stream_timeout=args.stream_timeout,
    )
    report = run_load(config)
    print(json.dumps(report.as_dict(), indent=2))
    # a load run "succeeds" when every submitted job reached a clean end
    return 0 if report.failed == 0 and report.errors == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
