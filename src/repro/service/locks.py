"""Cross-process file locks for the shared disk cache.

:class:`FileLock` is an advisory, exclusive lock on a lock file —
``fcntl.flock`` on POSIX, ``msvcrt.locking`` on Windows — with a polling
timeout.  Every ``acquire`` opens its own file descriptor, so two locks
on the same path exclude each other both across processes and across
threads of one process (flock locks attach to the open file description,
not the path).

The disk cache uses two kinds of lock files: one guarding the store
index (size accounting and eviction) and one per cache key making
``get_or_compute`` single-flight across processes.  Plain payload reads
never take a lock.
"""

from __future__ import annotations

import os
import threading
import time

__all__ = ["FileLock", "LockTimeout"]

try:  # POSIX
    import fcntl

    def _lock_fd(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)

    def _unlock_fd(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_UN)

except ImportError:  # pragma: no cover - Windows
    import msvcrt

    def _lock_fd(fd: int) -> None:
        msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)

    def _unlock_fd(fd: int) -> None:
        os.lseek(fd, 0, os.SEEK_SET)
        msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory exclusive lock on ``path`` with a polling timeout.

    Usable as a context manager::

        with FileLock("/tmp/store/index.lock", timeout=30.0):
            ...  # exclusive across processes and threads

    One instance guards one acquisition at a time; re-acquiring a held
    instance raises ``RuntimeError`` (the lock is not reentrant).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        timeout: float = 30.0,
        poll_interval: float = 0.005,
    ) -> None:
        if timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        self.path = os.fspath(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._fd: int | None = None
        self._owner_guard = threading.Lock()

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, timeout: float | None = None) -> None:
        """Block (polling) until the lock is held; raise :class:`LockTimeout`."""
        budget = self.timeout if timeout is None else timeout
        with self._owner_guard:
            if self._fd is not None:
                raise RuntimeError(f"lock {self.path!r} is not reentrant")
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            deadline = time.monotonic() + budget
            try:
                while True:
                    try:
                        _lock_fd(fd)
                        self._fd = fd
                        return
                    except OSError:
                        if time.monotonic() >= deadline:
                            raise LockTimeout(
                                f"could not acquire {self.path!r} "
                                f"within {budget:.3f}s"
                            ) from None
                        time.sleep(self.poll_interval)
            except BaseException:
                if self._fd is None:
                    os.close(fd)
                raise

    def release(self) -> None:
        """Release a held lock (no-op ordering errors raise)."""
        with self._owner_guard:
            if self._fd is None:
                raise RuntimeError(f"lock {self.path!r} is not held")
            try:
                _unlock_fd(self._fd)
            finally:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
