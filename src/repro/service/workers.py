"""Worker pool executing queued mosaic jobs.

``N`` supervisor threads consume the priority queue.  Each job attempt
runs through :mod:`concurrent.futures` — a thread or a process executor,
selectable per pool — so a per-attempt wall-clock timeout can be enforced
by waiting on the future: on timeout the attempt is abandoned (its
executor is shut down without waiting) and the supervisor moves on, which
is what keeps one runaway job from ever stalling the queue.  Failed and
timed-out attempts are retried with exponential backoff (jittered through
:func:`repro.utils.rng.make_rng`, so a seeded pool backs off
reproducibly) up to the job's retry budget, then marked ``FAILED``.

Shutdown is graceful by default: the queue stops accepting work, the
supervisors drain what is already queued, and ``shutdown`` returns when
they exit.  ``drain=False`` cancels everything still pending instead.

Caveat (CPython): a timed-out *thread* attempt cannot be killed — it is
abandoned and keeps running to completion in the background with its
result discarded.  Process attempts terminate with their executor.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from typing import Any, Callable, Iterable, Sequence

from dataclasses import dataclass, field

from repro.exceptions import JobCancelled, JobError, JobTimeout
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.queue import JobQueue
from repro.utils.rng import make_rng, spawn_seeds
from repro.utils.timing import TimingBreakdown

__all__ = [
    "WorkerPool",
    "MosaicJobRunner",
    "JobContext",
    "SystemClock",
    "resolve_image",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("thread", "process")


class SystemClock:
    """Real time source for the pool's backoff sleeps.

    Tests inject a fake with the same two methods to make retry/backoff
    behaviour instantaneous and assertable instead of wall-clock-flaky.
    """

    monotonic = staticmethod(time.monotonic)
    sleep = staticmethod(time.sleep)


@dataclass
class JobContext:
    """Execution context handed to context-aware runners.

    A runner class advertising ``accepts_context = True`` is called as
    ``runner(spec, ctx)`` (thread executors only; process workers cannot
    receive the live context and get ``ctx=None``).  The context carries
    the job identity, the cooperative-cancellation flag and an ``emit``
    hook that streams progress events to whoever observes the record.
    """

    job_id: str
    attempt: int
    cancelled: threading.Event = field(default_factory=threading.Event)
    emit: Callable[[str, dict], None] = lambda kind, payload: None

    def check_cancelled(self) -> None:
        """Raise :class:`JobCancelled` if cancellation was requested."""
        if self.cancelled.is_set():
            raise JobCancelled(f"job {self.job_id} cancelled")


def resolve_image(spec: str, size: int):
    """Resolve a standard-image name or file path to a grayscale array."""
    from repro.imaging import STANDARD_IMAGES, ensure_gray, load_image, standard_image

    if spec in STANDARD_IMAGES:
        return standard_image(spec, size)
    if os.path.exists(spec):
        return ensure_gray(load_image(spec))
    raise JobError(
        f"{spec!r} is neither a file nor a standard image "
        f"({', '.join(STANDARD_IMAGES)})"
    )


class MosaicJobRunner:
    """Default job payload: resolve images, run the pipeline, save output.

    Picklable for process executors.  A ``process_safe`` cache backend —
    a :class:`~repro.service.cache.CacheStack` over a
    :class:`~repro.service.diskcache.DiskCacheStore` — is shipped along:
    the worker process gets a fresh memory tier plus the shared on-disk
    store, so Step-1/Step-2 artifacts are still computed once
    machine-wide.  A purely in-memory cache cannot cross the process
    boundary and is dropped instead (each process would warm its own).

    The runner is context-aware: driven by a thread-executor pool it
    receives a :class:`JobContext` and then (a) streams per-phase and
    per-sweep progress events through ``ctx.emit`` and (b) aborts with
    :class:`~repro.exceptions.JobCancelled` at the next phase/sweep
    boundary once cooperative cancellation is requested.  Called without
    a context (process workers, direct use) it behaves exactly as before.
    """

    accepts_context = True
    #: The pool may attach a Step2BatchCoordinator (thread executors).
    accepts_batcher = True

    def __init__(
        self,
        cache=None,
        outdir: str | None = None,
        default_backend: str | None = None,
    ) -> None:
        self.cache = cache
        self.outdir = outdir
        self.default_backend = default_backend
        self.batcher = None

    def __getstate__(self) -> dict:
        cache = self.cache if getattr(self.cache, "process_safe", False) else None
        # The batcher (locks + conditions) cannot cross a process
        # boundary: process workers run solo Step-2 launches instead.
        return {
            "cache": cache,
            "outdir": self.outdir,
            "default_backend": self.default_backend,
            "batcher": None,
        }

    def __call__(self, spec: JobSpec, ctx: JobContext | None = None):
        from repro.imaging import save_image

        observer = None
        if ctx is not None:
            ctx.check_cancelled()

            def observer(kind: str, payload: dict) -> None:
                ctx.check_cancelled()  # cancellation lands between phases/sweeps
                ctx.emit(kind, payload)

        if spec.kind == "library":
            result = self._run_library(spec, observer)
        else:
            result = self._run_mosaic(spec, observer)
        if spec.output:
            path = spec.output
            if self.outdir is not None and not os.path.isabs(path):
                path = os.path.join(self.outdir, path)
            save_image(path, result.image)
        return result

    def _run_mosaic(self, spec: JobSpec, observer):
        from repro.mosaic.generator import PhotomosaicGenerator

        input_image = resolve_image(spec.input, spec.size)
        target_image = resolve_image(spec.target, spec.size)
        generator = PhotomosaicGenerator(
            spec.to_config(self.default_backend),
            cache=self.cache,
            batcher=self.batcher,
        )
        return generator.generate(input_image, target_image, observer=observer)

    def _run_library(self, spec: JobSpec, observer):
        from repro.library.engine import LibraryMosaicEngine

        if not os.path.exists(spec.input):
            raise JobError(
                f"library source {spec.input!r} does not exist "
                "(expected a directory of images or a saved .npz index)"
            )
        target_image = resolve_image(spec.target, spec.size)
        engine = LibraryMosaicEngine(
            spec.to_library_config(self.default_backend), cache=self.cache
        )
        return engine.generate(
            spec.input, target_image, seed=spec.seed, observer=observer
        )


class WorkerPool:
    """Priority-queue worker pool with timeouts, retries and metrics.

    Parameters
    ----------
    workers:
        Number of concurrent supervisors (= max jobs in flight).
    kind:
        ``"thread"`` or ``"process"`` — the executor each attempt runs on.
        Thread attempts without a timeout run inline (no executor cost).
    runner:
        ``Callable[[JobSpec], result]``; defaults to :class:`MosaicJobRunner`
        with this pool's cache.  Must be picklable for ``kind="process"``.
    max_retries:
        Default extra attempts per job (``JobSpec.max_retries`` overrides).
    backoff / backoff_factor:
        Exponential backoff between attempts:
        ``backoff * factor**attempt``, plus up to 10% seeded jitter.
    default_timeout:
        Per-attempt budget when the spec doesn't set one.
    seed:
        Seeds the per-worker backoff jitter streams via
        :func:`~repro.utils.rng.spawn_seeds`.
    clock:
        Time source for backoff sleeps (anything with ``sleep`` and
        ``monotonic``); defaults to :class:`SystemClock`.  Tests inject a
        fake clock to make retry timing deterministic.
    tiering:
        Optional :class:`~repro.service.tiering.BackendTieringPolicy`:
        jobs that left ``spec.backend`` open are routed by predicted
        Step-2 cost at submit time (an explicit spec backend always
        wins).  Routing decisions tick ``tier_routed_<backend>`` /
        ``tier_fallback_total`` counters and the per-backend
        ``backend_queue_depth_<backend>`` gauges.
    batch_window / batch_max:
        ``batch_window > 0`` attaches a
        :class:`~repro.service.batching.Step2BatchCoordinator` to the
        runner (when it advertises ``accepts_batcher``): concurrent
        same-fingerprint jobs then share one batched Step-2 launch,
        with the window bounding the added latency and ``batch_max``
        the jobs per launch.  Thread pools only — the live coordinator
        cannot cross a process boundary, so ``batch_window > 0`` with
        ``kind="process"`` raises :class:`~repro.exceptions.JobError`
        instead of silently running solo launches.
    """

    def __init__(
        self,
        workers: int = 2,
        kind: str = "thread",
        *,
        runner: Callable[[JobSpec], Any] | None = None,
        cache=None,
        metrics: MetricsRegistry | None = None,
        max_retries: int = 1,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        default_timeout: float | None = None,
        seed: int | None = 0,
        clock: SystemClock | None = None,
        tiering=None,
        batch_window: float = 0.0,
        batch_max: int = 8,
    ) -> None:
        if workers < 1:
            raise JobError(f"workers must be >= 1, got {workers}")
        if kind not in EXECUTOR_KINDS:
            raise JobError(f"unknown executor kind {kind!r} (use {EXECUTOR_KINDS})")
        if max_retries < 0:
            raise JobError(f"max_retries must be >= 0, got {max_retries}")
        if batch_window < 0:
            raise JobError(f"batch_window must be >= 0, got {batch_window}")
        if batch_window > 0 and kind == "process":
            # The live coordinator (locks + condition variables) cannot
            # be pickled into process workers; silently dropping it used
            # to leave users paying the batch-window latency for solo
            # launches.  Fail loudly instead.
            raise JobError(
                "batch_window requires a thread executor: the Step-2 batch "
                "coordinator cannot cross a process boundary, so "
                "kind='process' pools always run solo Step-2 launches "
                "(drop --batch-window or switch to --executor thread)"
            )
        self.workers = workers
        self.kind = kind
        self.cache = cache
        self.metrics = metrics or MetricsRegistry()
        self.runner = runner if runner is not None else MosaicJobRunner(cache=cache)
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.default_timeout = default_timeout
        self.clock = clock if clock is not None else SystemClock()
        self.tiering = tiering
        self.batcher = None
        if (
            batch_window > 0
            and kind == "thread"
            and getattr(self.runner, "accepts_batcher", False)
        ):
            from repro.service.batching import Step2BatchCoordinator

            self.batcher = Step2BatchCoordinator(
                window_s=batch_window,
                max_batch=batch_max,
                metrics=self.metrics,
            )
            self.runner.batcher = self.batcher
        self.timings = TimingBreakdown()  # phase-wise sum over all DONE jobs
        self._queue = JobQueue()
        self._records: dict[str, JobRecord] = {}
        self._announced: dict[str, str] = {}  # job_id -> batch fingerprint
        self._queued_backends: dict[str, str] = {}  # job_id -> backend name
        self._submitted = 0
        self._open = 0  # submitted but not yet terminal
        self._state_lock = threading.Lock()
        self._all_done = threading.Condition(self._state_lock)
        self._shut_down = False
        self.metrics.gauge("workers", "configured pool size").set(workers)
        # A worker killed hard (SIGKILL, OOM) never runs its cleanup, so
        # shared-memory segments it published would strand /dev/shm pages.
        # Reap anything left by dead owners at pool start and again at
        # shutdown; each reaped segment ticks ``shm_leaked_total``.
        from repro.accel.shm import reap_stale_segments

        reap_stale_segments(self.metrics)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(make_rng(worker_seed),),
                name=f"mosaic-worker-{i}",
                daemon=True,
            )
            for i, worker_seed in enumerate(spawn_seeds(seed, workers))
        ]
        for thread in self._threads:
            thread.start()

    # -- submission / lifecycle -----------------------------------------

    def submit(self, spec: JobSpec, observer=None) -> JobRecord:
        """Queue one job; returns its (live) record.

        ``observer(record, kind, payload)``, when given, is attached to
        the record *before* it is queued, so it sees every state
        transition including the first ``RUNNING`` (the streaming gateway
        relies on this ordering).
        """
        with self._state_lock:
            if self._shut_down:
                raise JobError("pool is shut down")
            index = self._submitted
            self._submitted += 1
            self._open += 1
        if self.tiering is not None:
            decision = self.tiering.route(spec)
            self.metrics.counter(
                f"tier_routed_{decision.backend}",
                "jobs routed to this backend by the tiering policy",
            ).inc()
            if decision.reason == "fallback":
                self.metrics.counter(
                    "tier_fallback_total",
                    "large-tier backend unavailable, NumPy substituted",
                ).inc()
            if decision.reason != "override":
                from dataclasses import replace

                spec = replace(spec, backend=decision.backend)
        record = JobRecord(spec=spec, job_id=spec.job_id(index))
        if observer is not None:
            record.set_observer(observer)
        if self.batcher is not None:
            from repro.service.batching import step2_fingerprint

            fingerprint = step2_fingerprint(
                spec, getattr(self.runner, "default_backend", None)
            )
            if fingerprint is not None:
                # Announce before queueing: a worker that pops this job
                # must find its peers already counted, or the batch
                # leader would close the window early.
                with self._state_lock:
                    self._announced[record.job_id] = fingerprint
                self.batcher.announce(fingerprint)
        with self._state_lock:
            self._records[record.job_id] = record
        self._queue.push(record)
        self.metrics.counter("jobs_submitted").inc()
        self.metrics.gauge("queue_depth").set(len(self._queue))
        backend = spec.resolve_backend(
            getattr(self.runner, "default_backend", None)
        )
        with self._state_lock:
            self._queued_backends[record.job_id] = backend
        self._backend_gauge(backend).inc()
        return record

    def _backend_gauge(self, backend: str):
        """Per-backend queue-depth gauge (name-suffixed, no labels)."""
        return self.metrics.gauge(
            f"backend_queue_depth_{backend}",
            "queued jobs resolved to this array backend",
        )

    def _leave_queue(self, job_id: str) -> None:
        """Decrement the per-backend depth gauge once per dequeued job."""
        with self._state_lock:
            backend = self._queued_backends.pop(job_id, None)
        if backend is not None:
            self._backend_gauge(backend).dec()

    def _withdraw(self, job_id: str) -> None:
        """Drop a job's batch announcement (idempotent)."""
        if self.batcher is None:
            return
        with self._state_lock:
            fingerprint = self._announced.pop(job_id, None)
        if fingerprint is not None:
            self.batcher.depart(fingerprint)

    def run(self, specs: Iterable[JobSpec]) -> Sequence[JobRecord]:
        """Submit a batch, wait for every job to finish, return the records."""
        records = [self.submit(spec) for spec in specs]
        self.join()
        return records

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: immediately while queued, cooperatively in flight.

        A still-queued job flips straight to ``CANCELLED``.  A job already
        claimed by a supervisor gets its record's ``cancel_event`` set:
        context-aware runners observe it between sweeps and abort with
        :class:`JobCancelled`, and the supervisor also checks it before
        starting the next attempt — so cancellation lands at the next
        cooperation point rather than never.  Returns ``False`` only when
        the job is unknown or already terminal.
        """
        if self._queue.cancel(job_id):
            self.metrics.counter("jobs_cancelled").inc()
            self.metrics.gauge("queue_depth").set(len(self._queue))
            self._leave_queue(job_id)
            self._withdraw(job_id)
            self._mark_terminal()
            return True
        with self._state_lock:
            record = self._records.get(job_id)
        if record is None or record.state in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
        ):
            return False
        record.cancel_event.set()
        self.metrics.counter("cancel_requests").inc()
        return True

    def join(self, timeout: float | None = None) -> bool:
        """Block until every submitted job reached a terminal state."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._all_done:
            while self._open > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return False
                self._all_done.wait(timeout=remaining)
            return True

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the pool: drain (default) or cancel pending jobs, join workers."""
        with self._state_lock:
            self._shut_down = True
        cancelled = self._queue.close(drain=drain)
        if cancelled:
            self.metrics.counter("jobs_cancelled").inc(cancelled)
            with self._all_done:
                self._open -= cancelled
                self._all_done.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        # Jobs cancelled wholesale by a non-draining close never reach a
        # worker, so their queue-side bookkeeping is settled here.
        with self._state_lock:
            leftover = list(self._queued_backends)
        for job_id in leftover:
            self._leave_queue(job_id)
            self._withdraw(job_id)
        from repro.accel.shm import reap_stale_segments

        reap_stale_segments(self.metrics)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(drain=True)

    def records(self) -> list[JobRecord]:
        """Snapshot of all submitted job records, in submission order."""
        with self._state_lock:
            return list(self._records.values())

    # -- execution ------------------------------------------------------

    def _worker_loop(self, rng) -> None:
        while True:
            record = self._queue.pop()
            if record is None:
                return
            self.metrics.gauge("queue_depth").set(len(self._queue))
            self._leave_queue(record.job_id)
            try:
                self._execute(record, rng)
            finally:
                # The batch announcement must be withdrawn on every exit
                # path (done, failed, cancelled, crashed) or a leader
                # would keep holding windows open for a peer that will
                # never arrive.
                self._withdraw(record.job_id)
            self._mark_terminal()

    def _execute(self, record: JobRecord, rng) -> None:
        spec = record.spec
        retries = spec.max_retries if spec.max_retries is not None else self.max_retries
        active = self.metrics.gauge("active_workers")
        error: str | None = None
        for attempt in range(retries + 1):
            if record.cancel_event.is_set():
                record.transition(JobState.CANCELLED)
                self.metrics.counter("jobs_cancelled").inc()
                return
            record.attempts += 1  # before RUNNING so the event carries it
            record.transition(JobState.RUNNING)
            self.metrics.counter("attempts_total").inc()
            active.inc()
            started = time.perf_counter()
            try:
                result = self._run_attempt(record, spec)
            except JobTimeout as exc:
                error = str(exc)
                self.metrics.counter("job_timeouts").inc()
            except JobCancelled:
                record.transition(JobState.CANCELLED)
                self.metrics.counter("jobs_cancelled").inc()
                return
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                error = f"{type(exc).__name__}: {exc}"
            else:
                self.metrics.histogram("attempt_seconds").observe(
                    time.perf_counter() - started
                )
                self._finish_done(record, result)
                return
            finally:
                active.dec()
            self.metrics.histogram("attempt_seconds").observe(
                time.perf_counter() - started
            )
            if attempt < retries:
                record.transition(JobState.PENDING)  # requeue-in-place for retry
                self.metrics.counter("job_retries").inc()
                delay = self.backoff * self.backoff_factor**attempt
                delay *= 1.0 + 0.1 * float(rng.random())
                record.notify(
                    "retry",
                    {"attempt": record.attempts, "delay": delay, "error": error},
                )
                self.clock.sleep(delay)
        record.error = error
        record.transition(JobState.FAILED)
        self.metrics.counter("jobs_failed").inc()

    def _finish_done(self, record: JobRecord, result: Any) -> None:
        record.result = result
        record.transition(JobState.DONE)
        self.metrics.counter("jobs_done").inc()
        if record.queue_wait is not None:
            self.metrics.histogram("queue_wait_seconds").observe(record.queue_wait)
        if record.latency is not None:
            self.metrics.histogram("job_latency_seconds").observe(record.latency)
        timings = getattr(result, "timings", None)
        if isinstance(timings, TimingBreakdown):
            for phase, seconds in timings.as_dict().items():
                self.timings.add(phase, seconds)
            self.metrics.record_timings(timings, prefix="phase")
        # Per-artifact cache outcomes travel in the result meta, so they
        # survive the process boundary — the pool's registry sees hits
        # that happened inside process workers, which the cache object's
        # own (per-process) counters cannot.
        meta = getattr(result, "meta", None)
        if isinstance(meta, dict) and isinstance(meta.get("cache"), dict):
            outcomes = {"hit": 0, "miss": 0}
            for outcome in meta["cache"].values():
                if outcome in outcomes:
                    outcomes[outcome] += 1
            self.metrics.merge_counts(
                {
                    "cache_artifact_hits": outcomes["hit"],
                    "cache_artifact_misses": outcomes["miss"],
                }
            )
        if isinstance(meta, dict) and isinstance(meta.get("library"), dict):
            # Library-pipeline stats travel the same meta route as the
            # cache outcomes, so process workers' ingests are visible too.
            lib = meta["library"]
            self.metrics.merge_counts(
                {
                    "library_ingest_hits": int(lib.get("ingest_hits", 0)),
                    "library_ingest_misses": int(lib.get("ingest_misses", 0)),
                }
            )
            count_buckets = (1, 2, 4, 8, 16, 32, 64, 128, 256)
            if "shortlist_k" in lib:
                self.metrics.histogram(
                    "library_shortlist_size",
                    "exact-scored candidates per cell",
                    buckets=count_buckets,
                ).observe(float(lib["shortlist_k"]))
            if "max_reuse" in lib:
                self.metrics.histogram(
                    "library_tile_reuse_max",
                    "max cells sharing one tile, per job",
                    buckets=count_buckets,
                ).observe(float(lib["max_reuse"]))
        if isinstance(meta, dict) and isinstance(meta.get("shortlist"), dict):
            # Sparse Step-2 stats use one shared shape across job kinds —
            # mosaic shortlisting (repro.cost.sparse) and the library
            # engine's per-cell shortlist both report how many pairs were
            # exact-scored and how many assignments fell off-shortlist.
            shortlist = meta["shortlist"]
            self.metrics.merge_counts(
                {
                    "shortlist_pairs_evaluated": int(
                        shortlist.get("pairs_evaluated", 0)
                    ),
                    "shortlist_fallback_total": int(shortlist.get("fallback", 0)),
                }
            )
        if isinstance(meta, dict) and isinstance(meta.get("batch"), dict):
            # Batched Step-2 participation travels in the result meta
            # exactly like the shortlist stats, so it survives the
            # process boundary and folds into the pool registry here.
            batch = meta["batch"]
            size = int(batch.get("size", 0))
            self.metrics.merge_counts(
                {
                    "batch_meta_jobs_total": 1 if size > 0 else 0,
                    "batch_meta_shared_total": 1 if size > 1 else 0,
                }
            )

    def _call_for(self, record: JobRecord) -> Callable[[JobSpec], Any]:
        """The per-attempt callable: plain runner, or context-aware wrapper.

        Context-aware runners (``accepts_context = True``) receive a
        :class:`JobContext` wired to this record's cancel event and
        observer — but only on thread executors; the live context (a
        lock-bearing event plus a closure) cannot cross a process
        boundary, so process workers run ``runner(spec)`` and keep
        attempt-level granularity.
        """
        if not getattr(self.runner, "accepts_context", False) or self.kind != "thread":
            return self.runner
        context = JobContext(
            job_id=record.job_id,
            attempt=record.attempts,
            cancelled=record.cancel_event,
            emit=record.notify,
        )
        runner = self.runner
        return lambda spec: runner(spec, context)

    def _run_attempt(self, record: JobRecord, spec: JobSpec) -> Any:
        call = self._call_for(record)
        timeout = spec.timeout if spec.timeout is not None else self.default_timeout
        if timeout is None and self.kind == "thread":
            return call(spec)  # no budget to enforce: skip executor cost
        executor_cls = (
            ThreadPoolExecutor if self.kind == "thread" else ProcessPoolExecutor
        )
        executor = executor_cls(max_workers=1)
        try:
            future = executor.submit(call, spec)
            try:
                return future.result(timeout=timeout)
            except FuturesTimeoutError:
                future.cancel()
                raise JobTimeout(
                    f"job attempt exceeded its {timeout:.3f}s budget"
                ) from None
        finally:
            # On timeout we must not wait: the whole point is to abandon
            # the attempt and keep the supervisor (and queue) moving.
            executor.shutdown(wait=timeout is None, cancel_futures=True)

    def _mark_terminal(self) -> None:
        with self._all_done:
            self._open -= 1
            self._all_done.notify_all()
