"""Rendezvous (highest-random-weight) hashing for the cluster tier.

Both shard assignments in the cluster use the same primitive:

* the coordinator shards *jobs* across worker nodes by their batch
  fingerprint (so concurrent same-fingerprint jobs land on one node and
  can share a batched Step-2 launch) or, failing that, their job id;
* every node shards *cache keys* across the membership so each
  content-addressed artifact has exactly one owner node that serialises
  computes (cross-node single-flight) and holds the authoritative copy.

Rendezvous hashing was chosen over a token ring because membership here
is small (a handful of nodes) and churny (nodes join and die): HRW needs
no ring state, every participant computes the same owner from just the
member list, and a membership change moves only the keys owned by the
departed node (``1/n`` of the keyspace) — the minimal-disruption
property the ISSUE's "rebalance" counters measure.

Determinism matters: scores are SHA-256 based, so every process — the
coordinator, each node, and a test asserting ownership — derives the
identical owner for a key given the same member list, regardless of
Python hash randomisation.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

__all__ = ["rendezvous_score", "rendezvous_owner", "rendezvous_ranked"]


def rendezvous_score(member: str, key: str) -> int:
    """The HRW weight of ``member`` for ``key`` (derived, not stored)."""
    digest = hashlib.sha256(f"{member}\x00{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_ranked(key: str, members: Iterable[str]) -> list[str]:
    """Members ordered best-owner-first for ``key``.

    The head is the owner; the tail is the deterministic failover order
    the coordinator walks when the preferred node rejects a dispatch.
    Ties (possible only for duplicate member ids) break lexically so the
    order stays total.
    """
    return sorted(
        set(members),
        key=lambda member: (rendezvous_score(member, key), member),
        reverse=True,
    )


def rendezvous_owner(key: str, members: Sequence[str] | set[str]) -> str | None:
    """The owning member for ``key``, or ``None`` for an empty membership."""
    best: str | None = None
    best_score = -1
    for member in members:
        score = rendezvous_score(member, key)
        if score > best_score or (score == best_score and (best is None or member > best)):
            best = member
            best_score = score
    return best
