"""Cluster membership: who is in the cluster, and who owns what.

Two views of the same node list live here:

* :class:`ClusterMembership` — the coordinator's authoritative registry.
  Worker nodes register themselves and then heartbeat; the coordinator's
  failure detector calls :meth:`sweep` on an interval and any node whose
  last heartbeat is older than the deadline is marked ``down`` (its jobs
  get re-dispatched, its shard of the cache keyspace moves to the
  survivors).  A node that heartbeats again after being marked down
  simply re-registers — membership is crash-recovery shaped, not
  consensus shaped (one coordinator owns the truth).
* :class:`PeerDirectory` — each node's (and the cluster cache's) local
  snapshot of that truth, pushed by the coordinator on every change.
  It answers "which node owns this cache key" via rendezvous hashing
  and is picklable (locks dropped) so a process worker inherits a
  static but functional snapshot.

Heartbeat bookkeeping uses ``time.monotonic`` — wall-clock jumps must
not kill a healthy cluster.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.service.cluster.hashing import rendezvous_owner, rendezvous_ranked
from repro.service.metrics import MetricsRegistry

__all__ = ["NodeInfo", "PeerDirectory", "ClusterMembership"]


@dataclass
class NodeInfo:
    """One worker node as the coordinator sees it."""

    node_id: str
    host: str
    port: int
    state: str = "up"  # "up" | "down"
    registered_at: float = field(default_factory=time.monotonic)
    last_heartbeat: float = field(default_factory=time.monotonic)
    heartbeats: int = 0
    #: Latest stats block the node attached to its heartbeat (pending
    #: jobs, cache counters, ...) — the coordinator aggregates these
    #: into its cluster-level gauges.
    stats: dict = field(default_factory=dict)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def summary(self) -> dict:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "port": self.port,
            "state": self.state,
            "heartbeats": self.heartbeats,
            "age_s": time.monotonic() - self.registered_at,
            "stats": dict(self.stats),
        }


class PeerDirectory:
    """A point-in-time node list that answers ownership queries.

    The cluster cache holds one of these; the node's membership route
    replaces its contents whenever the coordinator pushes an update.
    ``version`` increases with every accepted push so stale updates
    (reordered HTTP requests) can be ignored.
    """

    def __init__(self, self_id: str) -> None:
        self.self_id = self_id
        self.version = 0
        self._nodes: dict[str, tuple[str, int]] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "self_id": self.self_id,
                "version": self.version,
                "nodes": dict(self._nodes),
            }

    def __setstate__(self, state: dict) -> None:
        self.self_id = state["self_id"]
        self.version = state["version"]
        self._nodes = dict(state["nodes"])
        self._lock = threading.Lock()

    def set_nodes(
        self, nodes: dict[str, tuple[str, int]], version: int | None = None
    ) -> bool:
        """Replace the membership snapshot; returns ``False`` for stale pushes."""
        with self._lock:
            if version is not None:
                if version <= self.version:
                    return False
                self.version = version
            else:
                self.version += 1
            self._nodes = {
                node_id: (host, int(port)) for node_id, (host, port) in nodes.items()
            }
            return True

    def nodes(self) -> dict[str, tuple[str, int]]:
        with self._lock:
            return dict(self._nodes)

    def address(self, node_id: str) -> tuple[str, int] | None:
        with self._lock:
            return self._nodes.get(node_id)

    def owner(self, key: str) -> str | None:
        """The node owning ``key``; the local node when alone/unjoined."""
        with self._lock:
            members = list(self._nodes) or [self.self_id]
        return rendezvous_owner(key, members)

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)


class ClusterMembership:
    """The coordinator's node registry with deadline failure detection.

    Thread-safe (heartbeats arrive on the event loop, but tests poke it
    from anywhere).  Every mutation bumps ``version`` — the number nodes
    use to discard out-of-order membership pushes.
    """

    def __init__(
        self,
        *,
        heartbeat_deadline: float = 3.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if heartbeat_deadline <= 0:
            raise ValueError(
                f"heartbeat_deadline must be positive, got {heartbeat_deadline}"
            )
        self.heartbeat_deadline = heartbeat_deadline
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.version = 0
        self._nodes: dict[str, NodeInfo] = {}
        self._lock = threading.Lock()

    # -- mutation --------------------------------------------------------

    def register(self, node_id: str, host: str, port: int) -> NodeInfo:
        """Add (or resurrect) a node; returns its live record."""
        with self._lock:
            info = NodeInfo(node_id=node_id, host=host, port=int(port))
            self._nodes[node_id] = info
            self.version += 1
        self.metrics.counter(
            "cluster_node_registrations_total", "nodes registered (incl. rejoins)"
        ).inc()
        self._export_up()
        return info

    def heartbeat(self, node_id: str, stats: dict | None = None) -> bool:
        """Record one heartbeat; ``False`` when the node is unknown.

        A heartbeat from a node previously marked ``down`` does *not*
        resurrect it — the node must re-register, because the coordinator
        already re-dispatched its jobs and moved its shards.  (The node
        client treats the ``False``/404 as a cue to register again.)
        """
        with self._lock:
            info = self._nodes.get(node_id)
            if info is None or info.state != "up":
                return False
            info.last_heartbeat = time.monotonic()
            info.heartbeats += 1
            if stats is not None:
                info.stats = dict(stats)
        return True

    def sweep(self, now: float | None = None) -> list[NodeInfo]:
        """Mark overdue nodes ``down``; returns the newly dead ones."""
        now = time.monotonic() if now is None else now
        dead: list[NodeInfo] = []
        with self._lock:
            for info in self._nodes.values():
                if (
                    info.state == "up"
                    and now - info.last_heartbeat > self.heartbeat_deadline
                ):
                    info.state = "down"
                    dead.append(info)
            if dead:
                self.version += 1
        if dead:
            self.metrics.counter(
                "cluster_node_failures_total", "nodes declared dead by the detector"
            ).inc(len(dead))
            self._export_up()
        return dead

    def remove(self, node_id: str) -> None:
        with self._lock:
            if self._nodes.pop(node_id, None) is not None:
                self.version += 1
        self._export_up()

    # -- queries ---------------------------------------------------------

    def get(self, node_id: str) -> NodeInfo | None:
        with self._lock:
            return self._nodes.get(node_id)

    def is_up(self, node_id: str) -> bool:
        with self._lock:
            info = self._nodes.get(node_id)
            return info is not None and info.state == "up"

    def live(self) -> list[NodeInfo]:
        with self._lock:
            return [info for info in self._nodes.values() if info.state == "up"]

    def all(self) -> list[NodeInfo]:
        with self._lock:
            return list(self._nodes.values())

    def live_ids(self) -> list[str]:
        return [info.node_id for info in self.live()]

    def ranked(self, key: str, exclude: set[str] | None = None) -> list[NodeInfo]:
        """Live nodes in rendezvous order for ``key`` (dispatch failover)."""
        live = {info.node_id: info for info in self.live()}
        order = rendezvous_ranked(key, live)
        exclude = exclude or set()
        return [live[node_id] for node_id in order if node_id not in exclude]

    def snapshot(self) -> dict:
        """The membership push payload nodes consume (live nodes only)."""
        with self._lock:
            nodes = {
                info.node_id: {"host": info.host, "port": info.port}
                for info in self._nodes.values()
                if info.state == "up"
            }
            return {"version": self.version, "nodes": nodes}

    def _export_up(self) -> None:
        """Refresh the per-node ``node_up_*`` gauges and the live count."""
        with self._lock:
            infos = list(self._nodes.values())
        up = 0
        for info in infos:
            value = 1.0 if info.state == "up" else 0.0
            up += int(value)
            self.metrics.gauge(
                f"node_up_{info.node_id}", "1 while the node passes heartbeats"
            ).set(value)
        self.metrics.gauge("cluster_nodes_up", "worker nodes currently live").set(up)
