"""Cross-node single-flight: the owner node's compute-lease table.

Within one box, :class:`repro.service.locks.FileLock` already serialises
cache fills — flock dies with its holder, so a SIGKILLed worker can
never wedge the cache.  Across boxes there is no shared kernel to lean
on, so the cluster adds one level above it: the rendezvous *owner* of a
cache key arbitrates who computes it.  A non-owner that misses locally
asks the owner for a lease; the owner answers with one of three states:

``ready``
    the artifact already exists on the owner — fetch it, skip compute.
``granted``
    nobody is computing it — the requester computes, PUTs the result
    back to the owner, and releases the lease.
``wait``
    another node holds the lease — poll again after ``retry_after``.

Leases are soft state with a TTL (:attr:`CacheLeaseTable.ttl`): if the
grantee is SIGKILLed mid-compute, the lease simply expires and the next
acquirer gets a fresh grant — the crash-recovery story mirrors flock's
"lock dies with the process", just on a timer instead of a kernel hook.
Because the TTL can double-grant when a slow-but-alive grantee overruns
it, correctness never depends on exclusivity: cache fills are
content-addressed and idempotent, so the worst case is one redundant
compute, never a wrong artifact.  The table is in-memory on purpose —
losing the owner loses its leases, and requesters fall back to local
compute (see ``ClusterCacheStore``), which is again only redundant work.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CacheLeaseTable"]


class CacheLeaseTable:
    """In-memory lease table an owner node runs for its cache shard."""

    def __init__(self, *, ttl: float = 60.0, retry_after: float = 0.05) -> None:
        if ttl <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl}")
        self.ttl = ttl
        self.retry_after = retry_after
        self._leases: dict[str, tuple[str, float]] = {}  # key -> (holder, granted_at)
        self._lock = threading.Lock()
        self.granted = 0
        self.reclaimed = 0

    def acquire(self, key: str, requester: str, *, ready: bool) -> dict:
        """Arbitrate one acquire; returns the wire-format decision dict."""
        if ready:
            # The artifact landed (possibly while the requester was asking);
            # any lease left behind is moot.
            with self._lock:
                self._leases.pop(key, None)
            return {"state": "ready"}
        now = time.monotonic()
        with self._lock:
            held = self._leases.get(key)
            if held is not None:
                holder, granted_at = held
                if holder == requester or now - granted_at > self.ttl:
                    # Re-grant to the same holder (idempotent retry after a
                    # dropped response) or reclaim an expired lease whose
                    # holder presumably died mid-compute.
                    if holder != requester:
                        self.reclaimed += 1
                    self._leases[key] = (requester, now)
                    self.granted += 1
                    return {"state": "granted"}
                return {"state": "wait", "retry_after": self.retry_after}
            self._leases[key] = (requester, now)
            self.granted += 1
            return {"state": "granted"}

    def release(self, key: str, requester: str) -> bool:
        """Drop the lease if ``requester`` still holds it."""
        with self._lock:
            held = self._leases.get(key)
            if held is not None and held[0] == requester:
                del self._leases[key]
                return True
            return False

    def active(self) -> int:
        """Unexpired leases outstanding (for metrics/debugging)."""
        now = time.monotonic()
        with self._lock:
            return sum(
                1
                for _, granted_at in self._leases.values()
                if now - granted_at <= self.ttl
            )
