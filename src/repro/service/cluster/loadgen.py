"""Seeded mixed-traffic load generator for the service (any front).

Drives a coordinator (or a single node — the protocol is identical)
with ``clients`` concurrent threads, each running its own seeded
generator (via :func:`repro.utils.rng.make_rng`): the job mix (image
pairs, sizes, sparse vs dense Step 2), the submit pacing and the cancel
decisions are all derived from ``seed``, so a load run is reproducible
end to end — the same seed against the same topology produces the same
request sequence.

Each client loops submit → stream-to-terminal, cancelling a seeded
fraction of its jobs mid-stream (after the first few events) to exercise
the cancellation path under load.  Stream lag is sampled per event as
``recv_wallclock - payload["ts"]`` — the coordinator stamps ``ts`` at
replication time, so the samples measure the replicate→serve fabric
delay, not job compute.  Events without a stamp (a bare single-node
front) simply contribute no lag samples.

Used by ``scripts/loadgen.py`` (CLI) and
``benchmarks/bench_cluster_capacity.py`` (capacity curves).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.service.client import MosaicServiceClient
from repro.service.metrics import Histogram
from repro.utils.rng import make_rng

__all__ = ["LoadConfig", "LoadReport", "run_load"]

_IMAGES = (
    "portrait",
    "sailboat",
    "airplane",
    "peppers",
    "barbara",
    "baboon",
    "tiffany",
)

#: Stream-lag histogram buckets: sub-ms fabric up to multi-second stalls.
LAG_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass
class LoadConfig:
    """One load run: where to aim, how many clients, what mix."""

    base_url: str
    token: str | None = None
    clients: int = 4
    jobs_per_client: int = 4
    cancel_fraction: float = 0.15
    sparse_fraction: float = 0.5
    seed: int = 0
    size: int = 32
    tile_size: int = 8
    submit_timeout: float = 60.0
    stream_timeout: float | None = 120.0


@dataclass
class LoadReport:
    """Aggregated outcome of one load run (JSON-ready via ``as_dict``)."""

    submitted: int = 0
    completed: int = 0
    cancelled: int = 0
    failed: int = 0
    errors: int = 0
    events: int = 0
    duration_s: float = 0.0
    lag: Histogram = field(
        default_factory=lambda: Histogram("stream_lag_seconds", buckets=LAG_BUCKETS)
    )

    @property
    def jobs_per_second(self) -> float:
        finished = self.completed + self.cancelled
        return finished / self.duration_s if self.duration_s > 0 else 0.0

    def as_dict(self) -> dict:
        has_lag = self.lag.count > 0
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "errors": self.errors,
            "events": self.events,
            "duration_s": self.duration_s,
            "jobs_per_second": self.jobs_per_second,
            "stream_lag_p50_s": self.lag.quantile(0.5) if has_lag else None,
            "stream_lag_p99_s": self.lag.quantile(0.99) if has_lag else None,
            "lag_samples": self.lag.count,
        }


def _job_spec(rng: np.random.Generator, config: LoadConfig, name: str) -> dict:
    """One seeded mosaic job spec drawn from the mix."""
    pair = rng.choice(len(_IMAGES), size=2, replace=False)
    spec = {
        "name": name,
        "input": _IMAGES[int(pair[0])],
        "target": _IMAGES[int(pair[1])],
        "size": config.size,
        "tile_size": config.tile_size,
        "seed": int(rng.integers(1 << 16)),
    }
    if float(rng.random()) < config.sparse_fraction:
        spec["shortlist_top_k"] = 4  # sparse Step 2 (sketch-shortlisted)
    return spec


def _client_worker(
    index: int, config: LoadConfig, report: LoadReport, lock: threading.Lock
) -> None:
    rng = make_rng((config.seed << 8) ^ index)
    client = MosaicServiceClient(
        config.base_url,
        token=config.token,
        stream_timeout=config.stream_timeout,
        jitter_seed=(config.seed << 8) ^ index,
    )
    for jobno in range(config.jobs_per_client):
        spec = _job_spec(rng, config, name=f"load-c{index}-j{jobno}")
        cancel_after = (
            int(rng.integers(1, 4))
            if float(rng.random()) < config.cancel_fraction
            else None
        )
        try:
            job = client.submit_when_admitted(spec, max_wait=config.submit_timeout)
        except Exception:  # noqa: BLE001 - admission errors are tallied, not fatal
            with lock:
                report.errors += 1
            continue
        with lock:
            report.submitted += 1
        outcome = "failed"
        try:
            seen = 0
            for event in client.events(job["job_id"]):
                seen = seen + 1
                now = time.time()
                stamp = (event.get("payload") or {}).get("ts")
                with lock:
                    report.events += 1
                    if isinstance(stamp, (int, float)):
                        report.lag.observe(max(0.0, now - stamp))
                if cancel_after is not None and seen == cancel_after:
                    client.cancel(job["job_id"])
                if event.get("terminal"):
                    state = (event.get("payload") or {}).get("state")
                    if state == "DONE":
                        outcome = "completed"
                    elif state == "CANCELLED":
                        outcome = "cancelled"
        except Exception:  # noqa: BLE001 - a broken stream is a tallied failure
            outcome = "failed"
        with lock:
            if outcome == "completed":
                report.completed += 1
            elif outcome == "cancelled":
                report.cancelled += 1
            else:
                report.failed += 1


def run_load(config: LoadConfig) -> LoadReport:
    """Run the configured load to completion and return the report."""
    report = LoadReport()
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(index, config, report, lock),
            name=f"loadgen-{index}",
            daemon=True,
        )
        for index in range(config.clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - started
    return report
