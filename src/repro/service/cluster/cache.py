"""Consistent-hashed shared cache tier over per-node disk stores.

Every node keeps its own :class:`~repro.service.diskcache.DiskCacheStore`
(fast local tier, flock single-flight within the box), and the cluster
layer adds exactly one rule on top: each cache key has one rendezvous
*owner* node, and the owner's copy is the authoritative one.

The read/fill protocol, as executed by :meth:`ClusterCacheStore.
get_or_compute` on a node that needs key ``K``:

1. **Local read.**  A verified local hit is returned immediately — once
   an artifact has been read-through-replicated, later reads never leave
   the box.
2. **Owner check.**  If this node owns ``K`` (or the directory is
   empty/unjoined), the local store's ``get_or_compute`` is the whole
   story: flock serialises same-box racers and remote nodes fetch from
   us over the cache RPC.
3. **Remote owner.**  Ask the owner for the compute lease
   (:class:`~repro.service.cluster.leases.CacheLeaseTable` semantics):
   ``ready`` → GET the payload and replicate it locally; ``granted`` →
   compute via the *local* single-flight path, PUT the encoded payload
   back to the owner, release the lease; ``wait`` → re-poll after the
   owner's ``retry_after`` hint, re-checking the local store each round
   (a sibling thread may land the artifact first).

Any RPC failure — owner died, is restarting, or the membership snapshot
is stale — degrades to the local-only path and ticks
``cluster_cache_owner_failures_total``.  That can duplicate a compute
across boxes but can never produce a wrong artifact (fills are pure
functions of the key) and never stalls a job on a dead peer.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.service.cluster.membership import PeerDirectory
from repro.service.cluster.rpc import NodeRpcClient, RpcError
from repro.service.diskcache import DiskCacheStore, decode_payload, encode_payload

__all__ = ["ClusterCacheStore"]

_MISS = object()


class ClusterCacheStore:
    """:class:`~repro.service.cache.CacheBackend` over the cluster.

    Parameters
    ----------
    local:
        This node's disk store (the only place values ever decode from).
    directory:
        The live membership snapshot used for ownership lookups; the
        node app replaces its contents on every coordinator push.
    token:
        Bearer token for the internal cache routes (shared cluster-wide).
    wait_timeout:
        Ceiling on time spent polling a ``wait`` lease before giving up
        and computing locally anyway — availability beats deduplication,
        same rule as the flock path underneath.
    """

    def __init__(
        self,
        local: DiskCacheStore,
        directory: PeerDirectory,
        *,
        token: str | None = None,
        rpc_timeout: float = 30.0,
        wait_timeout: float = 60.0,
        metrics=None,
    ) -> None:
        self.local = local
        self.directory = directory
        self.token = token
        self.rpc_timeout = rpc_timeout
        self.wait_timeout = wait_timeout
        self.metrics = metrics
        self._counts_lock = threading.Lock()
        self._counts = {
            "remote_hits": 0,
            "remote_misses": 0,
            "replications_out": 0,
            "replications_in": 0,
            "owner_failures": 0,
            "lease_grants": 0,
            "lease_waits": 0,
        }
        self._sleep = time.sleep  # test seam: patched to advance fake clocks

    #: Picklable into process workers: the local store re-opens from its
    #: root and the directory ships as a static membership snapshot.
    process_safe = True

    def __getstate__(self) -> dict:
        return {
            "local": self.local,
            "directory": self.directory,
            "token": self.token,
            "rpc_timeout": self.rpc_timeout,
            "wait_timeout": self.wait_timeout,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["local"],
            state["directory"],
            token=state["token"],
            rpc_timeout=state["rpc_timeout"],
            wait_timeout=state["wait_timeout"],
        )

    # -- bookkeeping -----------------------------------------------------

    def _tick(self, name: str, amount: int = 1) -> None:
        with self._counts_lock:
            self._counts[name] += amount
        if self.metrics is not None:
            self.metrics.counter(f"cluster_cache_{name}_total").inc(amount)

    def counts(self) -> dict:
        """Cross-node counters (shipped to the coordinator in heartbeats)."""
        with self._counts_lock:
            return dict(self._counts)

    @property
    def stats(self):
        return self.local.stats

    def _owner_client(self, key: str) -> NodeRpcClient | None:
        """An RPC client for ``key``'s owner, or ``None`` when it's us."""
        owner = self.directory.owner(key)
        if owner is None or owner == self.directory.self_id:
            return None
        address = self.directory.address(owner)
        if address is None:
            return None
        return NodeRpcClient(
            address[0], address[1], token=self.token, timeout=self.rpc_timeout
        )

    # -- CacheBackend ----------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        value = self.local.get(key, _MISS)
        if value is not _MISS:
            return value
        client = self._owner_client(key)
        if client is None:
            return default
        try:
            fetched = client.cache_get(key)
        except RpcError:
            self._tick("owner_failures")
            return default
        if fetched is None:
            self._tick("remote_misses")
            return default
        data, layout = fetched
        try:
            value = decode_payload(data, layout)
        except Exception:
            return default  # corrupt in flight; recompute beats propagating
        self._tick("remote_hits")
        self._tick("replications_in")
        self.local.put(key, value)  # read-through replication
        return value

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        self.local.put(key, value, nbytes=nbytes)
        self._replicate_to_owner(key, value)

    def contains(self, key: str) -> bool:
        """Local residency only — advisory, like the backends beneath."""
        return self.local.contains(key)

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], nbytes: int | None = None
    ) -> Any:
        value = self.local.get(key, _MISS)
        if value is not _MISS:
            return value
        client = self._owner_client(key)
        if client is None:
            # We own the key (or run standalone): plain cross-process
            # single-flight; remote requesters will fetch from our store.
            return self.local.get_or_compute(key, compute, nbytes=nbytes)
        return self._remote_fill(key, compute, client, nbytes=nbytes)

    def clear(self) -> None:
        self.local.clear()

    def __len__(self) -> int:
        return len(self.local)

    # -- the cross-node fill path ---------------------------------------

    def _remote_fill(
        self,
        key: str,
        compute: Callable[[], Any],
        client: NodeRpcClient,
        *,
        nbytes: int | None,
    ) -> Any:
        requester = self.directory.self_id
        deadline = time.monotonic() + self.wait_timeout
        while True:
            try:
                decision = client.lease_acquire(key, requester)
            except RpcError:
                self._tick("owner_failures")
                return self.local.get_or_compute(key, compute, nbytes=nbytes)
            state = decision.get("state")
            if state == "ready":
                value = self._fetch_from_owner(key, client)
                if value is not _MISS:
                    return value
                # The owner's copy vanished between the lease check and
                # our GET (eviction, quarantine): compute it ourselves.
                state = "granted"
            if state == "granted":
                self._tick("lease_grants")
                try:
                    value = self.local.get_or_compute(key, compute, nbytes=nbytes)
                    self._replicate_to_owner(key, value)
                    return value
                finally:
                    try:
                        client.lease_release(key, requester)
                    except RpcError:
                        pass  # lease TTL reclaims it
            if state == "wait":
                self._tick("lease_waits")
                if time.monotonic() >= deadline:
                    # The grantee is slow or its node died with the owner's
                    # lease outliving it — stop waiting, duplicate the work.
                    return self.local.get_or_compute(key, compute, nbytes=nbytes)
                self._sleep(float(decision.get("retry_after", 0.05)))
                value = self.local.get(key, _MISS)
                if value is not _MISS:
                    return value
                continue
            if state not in ("ready", "granted", "wait"):
                self._tick("owner_failures")
                return self.local.get_or_compute(key, compute, nbytes=nbytes)

    def _fetch_from_owner(self, key: str, client: NodeRpcClient) -> Any:
        try:
            fetched = client.cache_get(key)
        except RpcError:
            self._tick("owner_failures")
            return _MISS
        if fetched is None:
            self._tick("remote_misses")
            return _MISS
        data, layout = fetched
        try:
            value = decode_payload(data, layout)
        except Exception:
            return _MISS
        self._tick("remote_hits")
        self._tick("replications_in")
        self.local.put(key, value)
        return value

    def _replicate_to_owner(self, key: str, value: Any) -> None:
        """Best-effort push of a fresh artifact to its owner node."""
        client = self._owner_client(key)
        if client is None:
            return
        try:
            data, layout = encode_payload(value)
            client.cache_put(key, data, layout)
            self._tick("replications_out")
        except RpcError:
            self._tick("owner_failures")
