"""The cluster coordinator: admission, sharding, replication, failover.

One coordinator process fronts N worker nodes.  Clients speak to it with
the exact single-box protocol — ``POST /v1/jobs``, ``GET
/v1/jobs/{id}/events?from_seq=N``, ``DELETE /v1/jobs/{id}`` — so
:class:`~repro.service.client.MosaicServiceClient` works against a
cluster unchanged.  Behind that surface the coordinator:

* **shards jobs** with rendezvous hashing on the job's Step-2 batch
  fingerprint (same-fingerprint jobs land on one node, where the node's
  :class:`~repro.service.batching.Step2BatchCoordinator` can coalesce
  their Step-2 launches into one batched kernel), falling back to a
  content hash of the spec; the ranked rendezvous order doubles as the
  failover sequence when a node refuses (429) or is unreachable;
* **replicates event logs**: every dispatched job gets a coordinator-side
  :class:`~repro.service.http.broker.EventLog` fed by a pump task that
  streams the node's NDJSON events and renumbers them into one
  gap-free coordinator sequence.  Any front-end can then serve
  ``?from_seq=N`` resume for any job, whichever node ran it — the
  node's own log is just the transport;
* **detects failures** with heartbeat deadlines
  (:class:`~repro.service.cluster.membership.ClusterMembership`): nodes
  register and heartbeat; a sweep task declares overdue nodes dead,
  pushes the shrunk membership to the survivors (moving their cache
  shards), and the pump of every non-terminal job on a dead node
  **re-dispatches** it to the next-ranked live node.  The replicated log
  keeps its sequence — consumers see a ``redispatch`` marker event, then
  the replacement run's events, then exactly one terminal event.

Replication is *pull*: the coordinator subscribes to node streams rather
than nodes pushing, so a slow coordinator backpressures naturally and a
node needs zero cluster awareness to execute jobs.  Each replicated
event's payload is stamped with a coordinator-side ``ts`` (wall clock)
at append time — the load generator measures stream lag against it.
"""

from __future__ import annotations

import asyncio
import time

from repro.service.batching import step2_fingerprint
from repro.service.cache import config_fingerprint
from repro.service.cluster.membership import ClusterMembership, NodeInfo
from repro.service.cluster.rpc import RpcError, request_json, stream_ndjson
from repro.service.gateway import GatewayEvent
from repro.service.http.broker import EventLog
from repro.service.http.protocol import (
    HttpError,
    HttpRequest,
    end_chunks,
    read_request,
    response_head,
    send_json,
    write_chunk,
)
from repro.service.http.server import spec_from_payload
from repro.service.metrics import MetricsRegistry

__all__ = ["ClusterJob", "ClusterCoordinator", "CoordinatorConfig"]


class CoordinatorConfig:
    """Bind address, auth, limits and failure-detection knobs."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8700,
        auth_token: str | None = None,
        heartbeat_deadline: float = 3.0,
        sweep_interval: float | None = None,
        max_pending: int = 256,
        retain_terminal: int = 1024,
        max_body_bytes: int = 1 << 20,
        max_header_bytes: int = 32 * 1024,
        retry_after: float = 1.0,
        pump_retry: float = 0.25,
        rpc_timeout: float = 10.0,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if retain_terminal < 1:
            raise ValueError(f"retain_terminal must be >= 1, got {retain_terminal}")
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.heartbeat_deadline = heartbeat_deadline
        self.sweep_interval = (
            sweep_interval if sweep_interval is not None else heartbeat_deadline / 3.0
        )
        self.max_pending = max_pending
        self.retain_terminal = retain_terminal
        self.max_body_bytes = max_body_bytes
        self.max_header_bytes = max_header_bytes
        self.retry_after = retry_after
        self.pump_retry = pump_retry
        self.rpc_timeout = rpc_timeout


class ClusterJob:
    """One job as the coordinator tracks it across dispatches."""

    def __init__(
        self, job_id: str, payload: dict, shard_key: str, node_id: str, node_job_id: str
    ) -> None:
        self.job_id = job_id
        self.payload = payload  # the validated submission body, for re-dispatch
        self.shard_key = shard_key
        self.node_id = node_id
        self.node_job_id = node_job_id
        self.node_next_seq = 0  # next seq to request from the executing node
        self.next_seq = 0  # next coordinator-side (replicated) seq
        self.redispatches = 0
        self.failed_nodes: set[str] = set()
        self.log = EventLog(job_id)
        self.submitted_at = time.time()
        self.last_state: str | None = None

    @property
    def terminal(self) -> bool:
        return self.log.closed

    def summary(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.payload.get("name") or self.job_id,
            "kind": self.payload.get("kind", "mosaic"),
            "state": self.last_state or "REPLICATING",
            "node": self.node_id,
            "events": len(self.log.events),
            "redispatches": self.redispatches,
            "submitted_at": self.submitted_at,
        }


class ClusterCoordinator:
    """Coordinator front + control plane on one asyncio loop.

    Lifecycle mirrors :class:`~repro.service.http.server.HttpFront`:
    ``await start()`` binds (``.port`` holds the real port), ``await
    aclose()`` drains pumps and releases the socket.
    """

    def __init__(
        self,
        *,
        config: CoordinatorConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else CoordinatorConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.membership = ClusterMembership(
            heartbeat_deadline=self.config.heartbeat_deadline, metrics=self.metrics
        )
        self.jobs: dict[str, ClusterJob] = {}
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._sweep_task: asyncio.Task | None = None
        self._pumps: dict[str, asyncio.Task] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "ClusterCoordinator":
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweep_task = asyncio.create_task(self._sweep_loop())
        return self

    def begin_drain(self) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()

    async def aclose(self) -> None:
        self.begin_drain()
        if self._sweep_task is not None:
            self._sweep_task.cancel()
            try:
                await self._sweep_task
            except asyncio.CancelledError:
                pass
            self._sweep_task = None
        for task in list(self._pumps.values()):
            task.cancel()
        if self._pumps:
            await asyncio.gather(*self._pumps.values(), return_exceptions=True)
        self._pumps.clear()
        if self._server is not None:
            await self._server.wait_closed()
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def __aenter__(self) -> "ClusterCoordinator":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- failure detection ------------------------------------------------

    async def _sweep_loop(self) -> None:
        # Guarded by the drain flag, not just cancellation: wait_for can
        # swallow a cancel that lands in the same tick an inner RPC
        # completes (bpo-37658), and aclose() must still terminate.
        while not self._draining:
            await asyncio.sleep(self.config.sweep_interval)
            self.sweep_once()

    def sweep_once(self) -> list[NodeInfo]:
        """One failure-detector pass (tests drive this synchronously)."""
        dead = self.membership.sweep()
        if dead:
            # Survivors need the shrunk membership *now* — cache shards
            # owned by the dead node move to them.  Pumps notice the
            # death on their own and re-dispatch.
            asyncio.ensure_future(self.push_membership())
        return dead

    async def push_membership(self) -> None:
        """Best-effort fan-out of the membership snapshot to live nodes."""
        snapshot = self.membership.snapshot()
        live = self.membership.live()

        async def push(node: NodeInfo) -> None:
            try:
                await request_json(
                    node.host,
                    node.port,
                    "POST",
                    "/internal/v1/membership",
                    snapshot,
                    token=self.config.auth_token,
                    timeout=self.config.rpc_timeout,
                )
            except RpcError:
                pass  # it will learn the membership on the next change

        if live:
            await asyncio.gather(*(push(node) for node in live))

    # -- dispatch ---------------------------------------------------------

    @staticmethod
    def shard_key_for(spec, payload: dict) -> str:
        """Content hash, scoped by the Step-2 batch fingerprint.

        The content hash spreads distinct jobs across the cluster (a
        homogeneous workload must not pile onto one node), while
        resubmissions of the *same* spec land on the same node — their
        cache entries and event history are already there.  The batch
        fingerprint rides along as a prefix purely for observability:
        two keys with the same prefix could have shared a batched
        Step-2 launch had they landed together.
        """
        fingerprint = step2_fingerprint(spec) or "unbatched"
        return f"{fingerprint}#{config_fingerprint(payload)}"

    async def _dispatch(self, payload: dict, shard_key: str, exclude: set[str]):
        """Walk the rendezvous ranking until a live node admits the job.

        Returns ``(node, node_job_id)``; raises :class:`HttpError` when
        no node can take it (all down, or all full -> 429 passthrough).
        """
        candidates = self.membership.ranked(shard_key, exclude=exclude)
        if not candidates:
            raise HttpError(
                503,
                "no live worker nodes",
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            )
        saw_full = False
        for node in candidates:
            try:
                status, body = await request_json(
                    node.host,
                    node.port,
                    "POST",
                    "/v1/jobs",
                    payload,
                    token=self.config.auth_token,
                    timeout=self.config.rpc_timeout,
                )
            except RpcError:
                self.metrics.counter("cluster_dispatch_errors_total").inc()
                continue
            if status == 202 and body.get("job_id"):
                self.metrics.counter("cluster_jobs_dispatched_total").inc()
                self.metrics.counter(f"cluster_dispatched_{node.node_id}_total").inc()
                return node, str(body["job_id"])
            if status == 429:
                saw_full = True  # spill to the next-ranked node
                continue
            raise HttpError(
                status if status >= 400 else 502,
                str(body.get("error", f"node {node.node_id} answered {status}")),
            )
        if saw_full:
            raise HttpError(
                429,
                "every live node is at capacity",
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            )
        raise HttpError(
            503,
            "no reachable worker node accepted the job",
            headers={"Retry-After": f"{self.config.retry_after:g}"},
        )

    async def submit(self, payload: dict) -> ClusterJob:
        """Validate, shard, dispatch and start replicating one job."""
        spec = spec_from_payload(payload)
        pending = sum(1 for job in self.jobs.values() if not job.terminal)
        if pending >= self.config.max_pending:
            self.metrics.counter("http_rejected_429_total").inc()
            raise HttpError(
                429,
                f"cluster admission full ({pending} pending)",
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            )
        shard_key = self.shard_key_for(spec, payload)
        node, node_job_id = await self._dispatch(payload, shard_key, set())
        job_id = node_job_id
        if job_id in self.jobs:
            # Content-hashed ids can repeat across nodes/submissions;
            # keep the external id unique.
            suffix = 1
            while f"{node_job_id}-r{suffix}" in self.jobs:
                suffix += 1
            job_id = f"{node_job_id}-r{suffix}"
        job = ClusterJob(job_id, dict(payload), shard_key, node.node_id, node_job_id)
        self.jobs[job_id] = job
        self._evict_terminal()
        self._pumps[job_id] = asyncio.create_task(self._pump(job))
        return job

    def _evict_terminal(self) -> None:
        terminal = [jid for jid, job in self.jobs.items() if job.terminal]
        for jid in terminal[: max(0, len(terminal) - self.config.retain_terminal)]:
            del self.jobs[jid]

    # -- event replication ------------------------------------------------

    def _replicate(self, job: ClusterJob, event: dict) -> None:
        payload = dict(event.get("payload") or {})
        payload.setdefault("ts", time.time())  # stream-lag reference point
        replicated = GatewayEvent(
            job_id=job.job_id,
            seq=job.next_seq,
            kind=str(event.get("kind", "event")),
            payload=payload,
            terminal=bool(event.get("terminal")),
        )
        job.next_seq += 1
        node_seq = event.get("seq")
        if isinstance(node_seq, int):
            job.node_next_seq = node_seq + 1
        if replicated.kind == "state":
            job.last_state = payload.get("state")
        job.log.append(replicated)
        self.metrics.counter("cluster_events_replicated_total").inc()

    def _append_marker(
        self, job: ClusterJob, kind: str, payload: dict, terminal: bool = False
    ) -> None:
        payload = dict(payload)
        payload.setdefault("ts", time.time())
        job.log.append(
            GatewayEvent(
                job_id=job.job_id,
                seq=job.next_seq,
                kind=kind,
                payload=payload,
                terminal=terminal,
            )
        )
        job.next_seq += 1
        if terminal:
            job.last_state = payload.get("state", job.last_state)

    async def _pump(self, job: ClusterJob) -> None:
        """Replicate ``job``'s events until terminal, surviving node death.

        The loop distinguishes two failure shapes: a *transient* stream
        break while the node still heartbeats (resume from
        ``node_next_seq`` — the node's log replays history, so nothing is
        lost) and a *declared-dead* node (re-dispatch to the next-ranked
        live node, marker event in the log, sequence continues).
        """
        try:
            # The drain-flag guard (not just task cancellation) matters:
            # wait_for can swallow a cancel arriving in the same tick an
            # inner await completes, and aclose() gathers these tasks.
            while not self._draining:
                node = self.membership.get(job.node_id)
                if node is None or node.state != "up":
                    if not await self._redispatch(job):
                        return
                    continue
                path = (
                    f"/v1/jobs/{job.node_job_id}/events"
                    f"?from_seq={job.node_next_seq}"
                )
                try:
                    async for event in stream_ndjson(
                        node.host,
                        node.port,
                        path,
                        token=self.config.auth_token,
                        connect_timeout=self.config.rpc_timeout,
                    ):
                        self._replicate(job, event)
                        if job.terminal:
                            return
                except RpcError:
                    await asyncio.sleep(self.config.pump_retry)
                    continue
                # Stream closed cleanly without a terminal event (node
                # drain closes logs): brief pause, then resume/redispatch.
                await asyncio.sleep(self.config.pump_retry)
        except asyncio.CancelledError:
            raise
        finally:
            self._pumps.pop(job.job_id, None)

    async def _redispatch(self, job: ClusterJob) -> bool:
        """Move a job off its dead node; ``False`` ends the pump.

        ``False`` means either the job finished (terminal already
        replicated) or no replacement node exists — in the latter case a
        terminal FAILED event is appended so every subscriber ends
        cleanly instead of hanging on a log that will never close.
        """
        if job.terminal:
            return False
        job.failed_nodes.add(job.node_id)
        try:
            node, node_job_id = await self._dispatch(
                job.payload, job.shard_key, job.failed_nodes
            )
        except HttpError as exc:
            if exc.status == 429:
                # Capacity, not death: drop the exclusion next round and
                # keep the job alive — it re-enters dispatch after a pause.
                await asyncio.sleep(self.config.retry_after)
                job.failed_nodes.discard(job.node_id)
                return not job.terminal
            self._append_marker(
                job,
                "state",
                {
                    "state": "FAILED",
                    "error": (
                        f"node {job.node_id!r} died and no live node could "
                        f"take the job: {exc.message}"
                    ),
                },
                terminal=True,
            )
            self.metrics.counter("cluster_orphaned_jobs_total").inc()
            return False
        previous = job.node_id
        job.node_id = node.node_id
        job.node_job_id = node_job_id
        job.node_next_seq = 0
        job.redispatches += 1
        self.metrics.counter("cluster_jobs_redispatched_total").inc()
        self._append_marker(
            job,
            "redispatch",
            {"from_node": previous, "to_node": node.node_id, "attempt": job.redispatches},
        )
        return True

    # -- HTTP front -------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes,
                    )
                except HttpError as exc:
                    send_json(writer, exc.status, exc.body(), keep_alive=False)
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._handle_request(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle_request(self, request: HttpRequest, writer) -> bool:
        self.metrics.counter("http_requests_total").inc()
        try:
            status, keep_alive = await self._route(request, writer)
        except HttpError as exc:
            status = exc.status
            keep_alive = (
                request.keep_alive
                and exc.headers.get("Connection", "").lower() != "close"
            )
            send_json(
                writer, exc.status, exc.body(), headers=exc.headers,
                keep_alive=keep_alive,
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            return False
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.metrics.counter("http_internal_errors_total").inc()
            try:
                send_json(
                    writer,
                    500,
                    {"error": f"internal error: {type(exc).__name__}: {exc}"},
                    keep_alive=False,
                )
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass
            return False
        self.metrics.counter(f"http_responses_{status // 100}xx_total").inc()
        return keep_alive

    async def _route(self, request: HttpRequest, writer) -> tuple[int, bool]:
        path, method = request.path, request.method
        if path == "/healthz":
            send_json(
                writer,
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "role": "coordinator",
                    "nodes_up": len(self.membership.live()),
                    "jobs": len(self.jobs),
                },
                keep_alive=request.keep_alive,
            )
            return 200, request.keep_alive
        if self._draining:
            raise HttpError(
                503,
                "coordinator is draining",
                headers={
                    "Retry-After": f"{self.config.retry_after:g}",
                    "Connection": "close",
                },
            )
        if path == "/metrics" and method == "GET":
            return self._get_metrics(request, writer), request.keep_alive
        if path.startswith("/v1/") or path.startswith("/internal/v1/"):
            self._authorize(request)
        if path == "/internal/v1/nodes" and method == "POST":
            return await self._post_node(request, writer), request.keep_alive
        if path.startswith("/internal/v1/nodes/"):
            tail = path[len("/internal/v1/nodes/"):]
            if tail.endswith("/heartbeat") and method == "POST":
                node_id = tail[: -len("/heartbeat")].rstrip("/")
                return self._post_heartbeat(request, writer, node_id), request.keep_alive
            if "/" not in tail and method == "DELETE":
                return await self._delete_node(request, writer, tail), request.keep_alive
        if path == "/internal/v1/cluster" and method == "GET":
            send_json(
                writer,
                200,
                {
                    "version": self.membership.version,
                    "nodes": [info.summary() for info in self.membership.all()],
                    "jobs": len(self.jobs),
                },
                keep_alive=request.keep_alive,
            )
            return 200, request.keep_alive
        if path == "/v1/jobs":
            if method == "POST":
                return await self._post_job(request, writer), request.keep_alive
            if method == "GET":
                send_json(
                    writer,
                    200,
                    {"jobs": [job.summary() for job in self.jobs.values()]},
                    keep_alive=request.keep_alive,
                )
                return 200, request.keep_alive
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/events") and method == "GET":
                job_id = tail[: -len("/events")].rstrip("/")
                return (
                    await self._get_events(request, writer, job_id),
                    request.keep_alive,
                )
            if "/" not in tail:
                if method == "GET":
                    job = self.jobs.get(tail)
                    if job is None:
                        raise HttpError(404, f"unknown job {tail!r}")
                    send_json(writer, 200, job.summary(), keep_alive=request.keep_alive)
                    return 200, request.keep_alive
                if method == "DELETE":
                    return (
                        await self._delete_job(request, writer, tail),
                        request.keep_alive,
                    )
                raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no route for {method} {path}")

    def _authorize(self, request: HttpRequest) -> None:
        token = self.config.auth_token
        if not token:
            return
        import hmac

        supplied = request.headers.get("authorization", "")
        scheme, _, value = supplied.partition(" ")
        if scheme.lower() == "bearer" and hmac.compare_digest(
            value.strip().encode("utf-8"), token.encode("utf-8")
        ):
            return
        self.metrics.counter("http_auth_failures_total").inc()
        raise HttpError(
            401,
            "missing or invalid bearer token",
            headers={"WWW-Authenticate": "Bearer"},
        )

    # -- handlers ---------------------------------------------------------

    async def _post_node(self, request: HttpRequest, writer) -> int:
        payload = request.json()
        node_id = payload.get("node_id")
        host = payload.get("host")
        port = payload.get("port")
        if not node_id or not host or not isinstance(port, int):
            raise HttpError(400, "registration needs node_id, host and int port")
        self.membership.register(str(node_id), str(host), port)
        await self.push_membership()
        send_json(
            writer,
            200,
            {"registered": node_id, "version": self.membership.version},
            keep_alive=request.keep_alive,
        )
        return 200

    def _post_heartbeat(self, request: HttpRequest, writer, node_id: str) -> int:
        stats = None
        if request.body:
            stats = request.json().get("stats")
        if not self.membership.heartbeat(node_id, stats):
            raise HttpError(
                404, f"node {node_id!r} is not a live member (re-register)"
            )
        send_json(writer, 200, {"ok": True}, keep_alive=request.keep_alive)
        return 200

    async def _delete_node(self, request: HttpRequest, writer, node_id: str) -> int:
        self.membership.remove(node_id)
        await self.push_membership()
        send_json(writer, 200, {"removed": node_id}, keep_alive=request.keep_alive)
        return 200

    async def _post_job(self, request: HttpRequest, writer) -> int:
        job = await self.submit(request.json())
        send_json(
            writer,
            202,
            {
                "job_id": job.job_id,
                "name": job.payload.get("name") or job.job_id,
                "node": job.node_id,
                "events": f"/v1/jobs/{job.job_id}/events",
            },
            keep_alive=request.keep_alive,
        )
        return 202

    async def _delete_job(self, request: HttpRequest, writer, job_id: str) -> int:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        accepted = False
        node = self.membership.get(job.node_id)
        if node is not None and node.state == "up" and not job.terminal:
            try:
                status, body = await request_json(
                    node.host,
                    node.port,
                    "DELETE",
                    f"/v1/jobs/{job.node_job_id}",
                    token=self.config.auth_token,
                    timeout=self.config.rpc_timeout,
                )
                accepted = status == 202 and bool(body.get("cancel_accepted"))
            except RpcError:
                accepted = False
        send_json(
            writer,
            202,
            {"job_id": job_id, "cancel_accepted": accepted},
            keep_alive=request.keep_alive,
        )
        return 202

    async def _get_events(self, request: HttpRequest, writer, job_id: str) -> int:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        from_seq = request.int_query("from_seq", 0)
        if from_seq < 0:
            raise HttpError(400, "from_seq must be >= 0")
        writer.write(
            response_head(
                200,
                {
                    "Content-Type": "application/x-ndjson; charset=utf-8",
                    "Transfer-Encoding": "chunked",
                    "Cache-Control": "no-store",
                    "Connection": "keep-alive" if request.keep_alive else "close",
                },
            )
        )
        async for event in job.log.subscribe(from_seq):
            write_chunk(writer, (event.to_json() + "\n").encode("utf-8"))
            self.metrics.counter("http_events_streamed_total").inc()
            await writer.drain()
        end_chunks(writer)
        await writer.drain()
        return 200

    def _get_metrics(self, request: HttpRequest, writer) -> int:
        self._export_aggregates()
        body = self.metrics.render_prometheus().encode("utf-8")
        writer.write(
            response_head(
                200,
                {
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                    "Content-Length": str(len(body)),
                    "Connection": "keep-alive" if request.keep_alive else "close",
                },
            )
            + body
        )
        return 200

    def _export_aggregates(self) -> None:
        """Fold node heartbeat stats + job table into cluster gauges."""
        remote_hits = remote_misses = pending = 0
        for info in self.membership.live():
            cache = info.stats.get("cache") or {}
            remote_hits += int(cache.get("remote_hits", 0))
            remote_misses += int(cache.get("remote_misses", 0))
            pending += int(info.stats.get("pending_jobs", 0))
        lookups = remote_hits + remote_misses
        self.metrics.gauge(
            "cluster_cache_remote_hit_ratio",
            "cross-node cache hits over cross-node lookups",
        ).set(remote_hits / lookups if lookups else 0.0)
        self.metrics.gauge(
            "cluster_pending_jobs", "jobs admitted on nodes, not yet terminal"
        ).set(pending)
        assigned: dict[str, int] = {}
        for job in self.jobs.values():
            if not job.terminal:
                assigned[job.node_id] = assigned.get(job.node_id, 0) + 1
        for info in self.membership.all():
            self.metrics.gauge(
                f"cluster_jobs_assigned_{info.node_id}",
                "non-terminal jobs currently assigned to this node",
            ).set(assigned.get(info.node_id, 0))
