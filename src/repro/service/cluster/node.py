"""The worker-node side of the cluster: one serve-http stack, joined up.

A cluster node is deliberately boring: it is the existing single-box
service — :class:`~repro.service.workers.WorkerPool` +
:class:`~repro.service.gateway.MosaicGateway` +
:class:`~repro.service.http.server.HttpFront` — with three additions:

* :class:`NodeFront` extends the public HTTP front with the
  ``/internal/v1/*`` RPC routes the cluster needs: membership pushes
  from the coordinator, the cache-entry transfer pair (GET/PUT with the
  payload layout in an ``X-Payload-Layout`` header and the key — which
  contains slashes — as a *query parameter*), and the compute-lease
  routes backing cross-node single-flight.  Internal routes share the
  public bearer token: one cluster, one credential.
* :class:`ClusterNodeApp` runs the node's half of membership: register
  with the coordinator, heartbeat on an interval with a stats payload
  (queue depth, cache counters) the coordinator folds into its
  cluster-level gauges, and re-register whenever a heartbeat is refused
  (the coordinator declared us dead while we were merely slow).
* :class:`PacedRunner` wraps the job runner with a wall-clock floor per
  job.  Its purpose is honest capacity benchmarking on small boxes: on a
  single-core host, N nodes contend for the same core and a jobs/sec
  curve would measure the GIL, not the cluster fabric.  A floor turns
  each job into a mostly-sleeping task (the sleep releases the GIL), so
  ``bench_cluster_capacity.py`` can measure dispatch/stream/replication
  overhead at a disclosed emulated job duration.  It is opt-in
  (``--job-floor-seconds``) and off by default.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any

from repro.service.cluster.cache import ClusterCacheStore
from repro.service.cluster.leases import CacheLeaseTable
from repro.service.cluster.membership import PeerDirectory
from repro.service.cluster.rpc import RpcError, request_json
from repro.service.diskcache import decode_payload, encode_payload
from repro.service.http.protocol import HttpError, HttpRequest, response_head, send_json
from repro.service.http.server import HttpFront, HttpFrontConfig

__all__ = ["PacedRunner", "NodeFront", "ClusterNodeApp"]

_MISS = object()


class PacedRunner:
    """Wrap a job runner with a minimum wall-clock duration per job.

    Forwards the context/batcher capabilities of the wrapped runner, so
    the pool treats it exactly like the runner underneath; the batcher
    handed to us is passed straight through.
    """

    def __init__(self, inner, floor_seconds: float) -> None:
        if floor_seconds < 0:
            raise ValueError(f"floor_seconds must be >= 0, got {floor_seconds}")
        self.inner = inner
        self.floor_seconds = floor_seconds
        self.accepts_context = bool(getattr(inner, "accepts_context", False))
        self.accepts_batcher = bool(getattr(inner, "accepts_batcher", False))

    @property
    def batcher(self):
        return getattr(self.inner, "batcher", None)

    @batcher.setter
    def batcher(self, value) -> None:
        self.inner.batcher = value

    def __call__(self, spec, ctx=None):
        started = time.monotonic()
        if self.accepts_context:
            result = self.inner(spec, ctx)
        else:
            result = self.inner(spec)
        remaining = self.floor_seconds - (time.monotonic() - started)
        if remaining > 0:
            time.sleep(remaining)  # releases the GIL: jobs overlap across nodes
        return result


class NodeFront(HttpFront):
    """The public HTTP front plus the cluster's internal RPC routes.

    =====================================  ==============================
    ``POST /internal/v1/membership``       coordinator pushes the node
                                           list; stale versions ignored.
    ``GET /internal/v1/cache/entry``       serve one owned cache payload
                                           (``?key=``, layout in header).
    ``PUT /internal/v1/cache/entry``       accept a replicated payload.
    ``POST /internal/v1/cache/lease``      arbitrate a compute lease.
    ``DELETE /internal/v1/cache/lease``    release a granted lease.
    ``GET /internal/v1/status``            node identity + live counters.
    =====================================  ==============================
    """

    def __init__(
        self,
        gateway,
        *,
        node_id: str,
        directory: PeerDirectory,
        cluster_cache: ClusterCacheStore | None = None,
        leases: CacheLeaseTable | None = None,
        config: HttpFrontConfig | None = None,
        metrics=None,
    ) -> None:
        super().__init__(gateway, config=config, metrics=metrics)
        self.node_id = node_id
        self.directory = directory
        self.cluster_cache = cluster_cache
        self.leases = leases if leases is not None else CacheLeaseTable()

    async def _route(self, request: HttpRequest, reader, writer) -> tuple[int, bool]:
        if request.path.startswith("/internal/v1/"):
            if self._draining:
                raise HttpError(
                    503,
                    "node is draining",
                    headers={
                        "Retry-After": f"{self.config.retry_after:g}",
                        "Connection": "close",
                    },
                )
            self._authorize(request)
            return self._route_internal(request, writer), request.keep_alive
        return await super()._route(request, reader, writer)

    def _route_internal(self, request: HttpRequest, writer) -> int:
        path, method = request.path, request.method
        if path == "/internal/v1/membership" and method == "POST":
            return self._post_membership(request, writer)
        if path == "/internal/v1/cache/entry":
            if method == "GET":
                return self._get_cache_entry(request, writer)
            if method == "PUT":
                return self._put_cache_entry(request, writer)
            raise HttpError(405, f"{method} not allowed on {path}")
        if path == "/internal/v1/cache/lease":
            if method == "POST":
                return self._post_lease(request, writer)
            if method == "DELETE":
                return self._delete_lease(request, writer)
            raise HttpError(405, f"{method} not allowed on {path}")
        if path == "/internal/v1/status" and method == "GET":
            return self._get_status(request, writer)
        raise HttpError(404, f"no route for {method} {path}")

    # -- membership -------------------------------------------------------

    def _post_membership(self, request: HttpRequest, writer) -> int:
        payload = request.json()
        nodes = payload.get("nodes")
        if not isinstance(nodes, dict):
            raise HttpError(400, "membership push needs a 'nodes' object")
        try:
            parsed = {
                node_id: (str(entry["host"]), int(entry["port"]))
                for node_id, entry in nodes.items()
            }
        except (TypeError, KeyError, ValueError):
            raise HttpError(
                400, "membership nodes must map id -> {host, port}"
            ) from None
        version = payload.get("version")
        accepted = self.directory.set_nodes(
            parsed, version=int(version) if version is not None else None
        )
        self.metrics.counter("cluster_membership_pushes_total").inc()
        send_json(
            writer,
            200,
            {"accepted": accepted, "version": self.directory.version},
            keep_alive=request.keep_alive,
        )
        return 200

    # -- cache transfer ---------------------------------------------------

    def _cache_key(self, request: HttpRequest) -> str:
        # Keys contain '/' (e.g. "tiles/<fp>/t8"), so they travel as a
        # query parameter — parse_qsl unquotes them safely, whereas a
        # path segment would be mangled by the route split.
        key = request.query.get("key")
        if not key:
            raise HttpError(400, "missing 'key' query parameter")
        return key

    def _local_store(self):
        if self.cluster_cache is None:
            raise HttpError(404, "this node runs without a cluster cache")
        return self.cluster_cache.local

    def _get_cache_entry(self, request: HttpRequest, writer) -> int:
        key = self._cache_key(request)
        value = self._local_store().get(key, _MISS)
        if value is _MISS:
            raise HttpError(404, f"no cache entry for key {key!r}")
        data, layout = encode_payload(value)
        writer.write(
            response_head(
                200,
                {
                    "Content-Type": "application/octet-stream",
                    "Content-Length": str(len(data)),
                    "X-Payload-Layout": json.dumps(layout),
                    "Connection": "keep-alive" if request.keep_alive else "close",
                },
            )
            + data
        )
        self.metrics.counter("cluster_cache_served_total").inc()
        return 200

    def _put_cache_entry(self, request: HttpRequest, writer) -> int:
        key = self._cache_key(request)
        try:
            layout = json.loads(request.headers.get("x-payload-layout", ""))
        except json.JSONDecodeError:
            raise HttpError(400, "missing or malformed X-Payload-Layout") from None
        try:
            value = decode_payload(request.body, layout)
        except Exception:
            raise HttpError(400, "payload does not decode under its layout") from None
        self._local_store().put(key, value)
        self.metrics.counter("cluster_cache_accepted_total").inc()
        send_json(writer, 200, {"stored": key}, keep_alive=request.keep_alive)
        return 200

    # -- leases -----------------------------------------------------------

    def _post_lease(self, request: HttpRequest, writer) -> int:
        payload = request.json()
        key = payload.get("key")
        requester = payload.get("requester")
        if not key or not requester:
            raise HttpError(400, "lease acquire needs 'key' and 'requester'")
        decision = self.leases.acquire(
            key, requester, ready=self._local_store().contains(key)
        )
        send_json(writer, 200, decision, keep_alive=request.keep_alive)
        return 200

    def _delete_lease(self, request: HttpRequest, writer) -> int:
        key = self._cache_key(request)
        requester = request.query.get("requester")
        if not requester:
            raise HttpError(400, "missing 'requester' query parameter")
        released = self.leases.release(key, requester)
        send_json(writer, 200, {"released": released}, keep_alive=request.keep_alive)
        return 200

    # -- status -----------------------------------------------------------

    def _get_status(self, request: HttpRequest, writer) -> int:
        send_json(
            writer,
            200,
            self.node_stats(),
            keep_alive=request.keep_alive,
        )
        return 200

    def node_stats(self) -> dict[str, Any]:
        """The stats payload heartbeats carry to the coordinator."""
        stats: dict[str, Any] = {
            "node_id": self.node_id,
            "pending_jobs": self.gateway.pending,
            "active_streams": self._streams_active,
            "membership_version": self.directory.version,
            "leases_active": self.leases.active(),
            "leases_reclaimed": self.leases.reclaimed,
        }
        if self.cluster_cache is not None:
            stats["cache"] = self.cluster_cache.counts()
        return stats


class ClusterNodeApp:
    """The node's membership client: register, heartbeat, re-register.

    Runs inside the node's event loop next to the front.  ``start()``
    registers with the coordinator (retrying until it answers — the node
    may boot first) and launches the heartbeat task; ``stop()`` cancels
    it and best-effort deregisters so clean shutdowns don't count as
    failures in the coordinator's metrics.
    """

    def __init__(
        self,
        front: NodeFront,
        *,
        coordinator_host: str,
        coordinator_port: int,
        advertise_host: str | None = None,
        token: str | None = None,
        heartbeat_interval: float = 0.5,
        rpc_timeout: float = 5.0,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        self.front = front
        self.coordinator_host = coordinator_host
        self.coordinator_port = int(coordinator_port)
        self.advertise_host = advertise_host
        self.token = token
        self.heartbeat_interval = heartbeat_interval
        self.rpc_timeout = rpc_timeout
        self.registrations = 0
        self._task: asyncio.Task | None = None
        self._stopping = False

    async def start(self) -> "ClusterNodeApp":
        self._stopping = False
        await self._register_until_accepted()
        self._task = asyncio.create_task(self._heartbeat_loop())
        return self

    async def stop(self) -> None:
        # Set the flag before cancelling: a cancel that lands in the
        # same tick a heartbeat RPC completes gets swallowed by
        # wait_for (bpo-37658), and the loop would otherwise run — and
        # this await would hang — forever.
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        try:
            await request_json(
                self.coordinator_host,
                self.coordinator_port,
                "DELETE",
                f"/internal/v1/nodes/{self.front.node_id}",
                token=self.token,
                timeout=self.rpc_timeout,
            )
        except RpcError:
            pass  # the failure detector cleans up after us

    # -- internals --------------------------------------------------------

    def _registration_payload(self) -> dict:
        host = self.advertise_host or self.front.config.host
        return {
            "node_id": self.front.node_id,
            "host": host,
            "port": self.front.port,
        }

    async def _register(self) -> bool:
        try:
            status, _ = await request_json(
                self.coordinator_host,
                self.coordinator_port,
                "POST",
                "/internal/v1/nodes",
                self._registration_payload(),
                token=self.token,
                timeout=self.rpc_timeout,
            )
        except RpcError:
            return False
        if status == 200:
            self.registrations += 1
            return True
        return False

    async def _register_until_accepted(self) -> None:
        while not self._stopping and not await self._register():
            await asyncio.sleep(self.heartbeat_interval)

    async def _heartbeat_loop(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.heartbeat_interval)
            try:
                status, _ = await request_json(
                    self.coordinator_host,
                    self.coordinator_port,
                    "POST",
                    f"/internal/v1/nodes/{self.front.node_id}/heartbeat",
                    {"stats": self.front.node_stats()},
                    token=self.token,
                    timeout=self.rpc_timeout,
                )
            except RpcError:
                continue  # coordinator unreachable: keep trying
            if status == 404:
                # Declared dead while we were alive (GC pause, network
                # blip): our jobs are already re-dispatched, so rejoin as
                # a fresh member and take new work.
                await self._register()
