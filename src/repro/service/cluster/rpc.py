"""Thin node RPC on the dependency-free HTTP stack.

Two transports over the same wire format, because the two sides of the
cluster live in different worlds:

* the **coordinator** is an asyncio process — :func:`request_json` and
  :func:`stream_ndjson` speak HTTP/1.1 over ``asyncio.open_connection``
  (status line + headers + ``Content-Length`` body, or chunked NDJSON
  for event streams), so dispatching, cancelling and pumping node event
  logs never block the loop;
* the **cluster cache** runs on worker *threads* mid-pipeline —
  :class:`NodeRpcClient` is a blocking :mod:`http.client` twin for the
  cache/lease routes (binary npz payloads with the layout in an
  ``X-Payload-Layout`` header).

Every call is one connection (``Connection: close``): internal RPC is
low-rate (leases, dispatches, heartbeats) and per-call connections mean
a dead node can never poison a pooled socket.  All errors — refused,
reset, timeout, non-2xx — normalise to :class:`RpcError`, which callers
treat as "peer unavailable" and degrade from (compute locally, retry on
the next-ranked node, re-dispatch).
"""

from __future__ import annotations

import asyncio
import json
from http.client import HTTPConnection, HTTPException
from urllib.parse import quote

__all__ = [
    "RpcError",
    "NodeRpcClient",
    "request_json",
    "stream_ndjson",
]


class RpcError(Exception):
    """An internal RPC failed (connection-level or non-2xx status)."""

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


def _auth_headers(token: str | None) -> dict[str, str]:
    return {"Authorization": f"Bearer {token}"} if token else {}


# -- blocking transport (worker threads: cache + lease RPC) ---------------


class NodeRpcClient:
    """Blocking internal-RPC client for one peer node address."""

    def __init__(
        self, host: str, port: int, *, token: str | None = None, timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.token = token
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            sent = dict(_auth_headers(self.token))
            sent.update(headers or {})
            try:
                connection.request(method, path, body=body, headers=sent)
                response = connection.getresponse()
                data = response.read()
            except (OSError, HTTPException) as exc:
                raise RpcError(
                    f"{method} {self.host}:{self.port}{path}: {exc}"
                ) from exc
            return response.status, dict(response.getheaders()), data
        finally:
            connection.close()

    # -- cache payload transfer ---------------------------------------

    def cache_get(self, key: str) -> tuple[bytes, dict] | None:
        """Fetch one cache payload from the owner; ``None`` on miss."""
        status, headers, data = self._request(
            "GET", f"/internal/v1/cache/entry?key={quote(key, safe='')}"
        )
        if status == 404:
            return None
        if status != 200:
            raise RpcError(f"cache get {key!r} -> HTTP {status}", status=status)
        try:
            layout = json.loads(headers.get("X-Payload-Layout", ""))
        except json.JSONDecodeError as exc:
            raise RpcError(f"cache get {key!r}: bad layout header") from exc
        return data, layout

    def cache_put(self, key: str, data: bytes, layout: dict) -> None:
        """Replicate one encoded payload to the owner node."""
        status, _, _ = self._request(
            "PUT",
            f"/internal/v1/cache/entry?key={quote(key, safe='')}",
            body=data,
            headers={
                "Content-Type": "application/octet-stream",
                "X-Payload-Layout": json.dumps(layout),
            },
        )
        if status not in (200, 204):
            raise RpcError(f"cache put {key!r} -> HTTP {status}", status=status)

    # -- cross-node single-flight leases -------------------------------

    def lease_acquire(self, key: str, requester: str) -> dict:
        """Ask the owner for the compute lease on ``key``.

        Returns the owner's decision: ``{"state": "ready" | "granted" |
        "wait", "retry_after": seconds}``.
        """
        body = json.dumps({"key": key, "requester": requester}).encode("utf-8")
        status, _, data = self._request(
            "POST",
            "/internal/v1/cache/lease",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        if status != 200:
            raise RpcError(f"lease acquire {key!r} -> HTTP {status}", status=status)
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RpcError(f"lease acquire {key!r}: bad response body") from exc

    def lease_release(self, key: str, requester: str) -> None:
        status, _, _ = self._request(
            "DELETE",
            "/internal/v1/cache/lease"
            f"?key={quote(key, safe='')}&requester={quote(requester, safe='')}",
        )
        if status not in (200, 204):
            raise RpcError(f"lease release {key!r} -> HTTP {status}", status=status)


# -- async transport (coordinator loop: dispatch + event pumps) -----------


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    *,
    token: str | None = None,
    timeout: float = 10.0,
) -> tuple[int, dict]:
    """One unary JSON request over a fresh connection; ``(status, body)``."""
    body = b""
    if payload is not None:
        body = json.dumps(payload, default=str).encode("utf-8")
    headers = {
        "Host": f"{host}:{port}",
        "Connection": "close",
        "Accept": "application/json",
        **_auth_headers(token),
    }
    if body or method in ("POST", "PUT", "PATCH"):
        headers["Content-Type"] = "application/json"
        headers["Content-Length"] = str(len(body))
    request = (
        f"{method} {path} HTTP/1.1\r\n"
        + "".join(f"{name}: {value}\r\n" for name, value in headers.items())
        + "\r\n"
    ).encode("latin-1") + body
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise RpcError(f"{method} {host}:{port}{path}: {exc}") from exc
    try:
        writer.write(request)
        await writer.drain()
        status, response_headers = await asyncio.wait_for(
            _read_response_head(reader), timeout=timeout
        )
        data = await asyncio.wait_for(
            _read_body(reader, response_headers), timeout=timeout
        )
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
        raise RpcError(f"{method} {host}:{port}{path}: {exc}") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass
    if not data:
        return status, {}
    try:
        decoded = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return status, {}
    return status, decoded if isinstance(decoded, dict) else {}


async def stream_ndjson(
    host: str,
    port: int,
    path: str,
    *,
    token: str | None = None,
    connect_timeout: float = 10.0,
):
    """Async-iterate the NDJSON event stream at ``path``.

    Decodes chunked transfer framing and yields one dict per event line.
    Connection drops raise :class:`RpcError` — the caller (the
    coordinator's replication pump) resumes with ``?from_seq=N`` or
    re-dispatches, depending on whether the node is still alive.  Reads
    between events are unbounded by design: a healthy stream can idle
    for as long as a job computes.
    """
    headers = {
        "Host": f"{host}:{port}",
        "Connection": "close",
        "Accept": "application/x-ndjson",
        **_auth_headers(token),
    }
    request = (
        f"GET {path} HTTP/1.1\r\n"
        + "".join(f"{name}: {value}\r\n" for name, value in headers.items())
        + "\r\n"
    ).encode("latin-1")
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=connect_timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise RpcError(f"GET {host}:{port}{path}: {exc}") from exc
    try:
        writer.write(request)
        await writer.drain()
        status, response_headers = await asyncio.wait_for(
            _read_response_head(reader), timeout=connect_timeout
        )
        if status != 200:
            body = await _read_body(reader, response_headers)
            message = body.decode("utf-8", "replace").strip() or "no body"
            raise RpcError(
                f"GET {host}:{port}{path} -> HTTP {status}: {message}",
                status=status,
            )
        if "chunked" not in response_headers.get("transfer-encoding", "").lower():
            raise RpcError(f"GET {host}:{port}{path}: expected a chunked stream")
        buffer = b""
        async for chunk in _iter_chunks(reader):
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
    except (OSError, asyncio.IncompleteReadError, ValueError) as exc:
        raise RpcError(f"GET {host}:{port}{path}: stream broke: {exc}") from exc
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, ConnectionError):
            pass


async def _read_response_head(reader) -> tuple[int, dict[str, str]]:
    status_line = await reader.readline()
    if not status_line:
        raise asyncio.IncompleteReadError(b"", None)
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise RpcError(f"malformed status line {status_line!r}")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return int(parts[1]), headers


async def _read_body(reader, headers: dict[str, str]) -> bytes:
    if "chunked" in headers.get("transfer-encoding", "").lower():
        data = b""
        async for chunk in _iter_chunks(reader):
            data += chunk
        return data
    length = headers.get("content-length")
    if length is not None:
        return await reader.readexactly(int(length))
    return await reader.read()  # Connection: close framing


async def _iter_chunks(reader):
    """Decode chunked transfer encoding into raw chunk payloads."""
    while True:
        size_line = await reader.readline()
        if not size_line:
            raise asyncio.IncompleteReadError(b"", None)
        size = int(size_line.split(b";")[0].strip() or b"0", 16)
        if size == 0:
            await reader.readline()  # trailing CRLF after the zero chunk
            return
        chunk = await reader.readexactly(size)
        await reader.readexactly(2)  # chunk-terminating CRLF
        yield chunk
