"""Multi-node sharded service: coordinator, worker nodes, shared cache.

See :mod:`repro.service.cluster.coordinator` for the control-plane
design and docs/service.md ("Multi-node deployment") for topology,
failure model and operational knobs.  The public pieces:

* :class:`~repro.service.cluster.coordinator.ClusterCoordinator` — the
  front clients talk to; owns admission, rendezvous job sharding,
  membership/failure detection and replicated event logs.
* :class:`~repro.service.cluster.node.NodeFront` +
  :class:`~repro.service.cluster.node.ClusterNodeApp` — a single-box
  serve-http stack extended with the internal cluster RPC routes and a
  register/heartbeat client.
* :class:`~repro.service.cluster.cache.ClusterCacheStore` — the
  consistent-hashed cache tier with cross-node single-flight.
"""

from repro.service.cluster.cache import ClusterCacheStore
from repro.service.cluster.coordinator import (
    ClusterCoordinator,
    ClusterJob,
    CoordinatorConfig,
)
from repro.service.cluster.hashing import (
    rendezvous_owner,
    rendezvous_ranked,
    rendezvous_score,
)
from repro.service.cluster.leases import CacheLeaseTable
from repro.service.cluster.membership import (
    ClusterMembership,
    NodeInfo,
    PeerDirectory,
)
from repro.service.cluster.node import ClusterNodeApp, NodeFront, PacedRunner
from repro.service.cluster.rpc import NodeRpcClient, RpcError

__all__ = [
    "CacheLeaseTable",
    "ClusterCacheStore",
    "ClusterCoordinator",
    "ClusterJob",
    "ClusterMembership",
    "ClusterNodeApp",
    "CoordinatorConfig",
    "NodeFront",
    "NodeInfo",
    "NodeRpcClient",
    "PacedRunner",
    "PeerDirectory",
    "RpcError",
    "rendezvous_owner",
    "rendezvous_ranked",
    "rendezvous_score",
]
