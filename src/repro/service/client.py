"""Stdlib client for the mosaic HTTP front (:mod:`repro.service.http`).

No third-party dependencies — plain :mod:`http.client` under the hood —
so anything that can run Python can drive a remote mosaic service:

    client = MosaicServiceClient("http://127.0.0.1:8765", token="s3cret")
    job = client.submit({"input": "portrait", "target": "sailboat",
                         "size": 64, "tile_size": 8})
    for event in client.events(job["job_id"]):
        print(event["seq"], event["kind"])
    client.cancel(job["job_id"])

:meth:`MosaicServiceClient.events` consumes the NDJSON stream and is
resume-aware: it remembers the last sequence number it yielded and, if
the connection drops before the terminal event, transparently reconnects
with ``?from_seq=last+1`` — overlapping events are deduplicated, so the
caller sees each sequence number exactly once and exactly one terminal
event, connection blips notwithstanding.

Backpressure is typed end to end: a ``429`` from the server raises
:class:`BackpressureError` (an :class:`~repro.exceptions.
AdmissionRejected` subclass) carrying the parsed ``Retry-After`` hint.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPConnection, HTTPException
from urllib.parse import urlsplit

from repro.exceptions import AdmissionRejected, JobError

__all__ = [
    "AuthenticationError",
    "BackpressureError",
    "MosaicServiceClient",
    "ServiceClientError",
]


class ServiceClientError(JobError):
    """The service answered with an unexpected error status.

    ``code`` carries the server's machine-readable error-taxonomy tag
    (``"unknown_field"``, ``"unknown_kind"``, ``"invalid_spec"``,
    ``"malformed_body"``) when the body provided one, so callers can
    branch on the class of failure instead of matching message prose.
    """

    def __init__(
        self, status: int, message: str, code: str | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.code = code

class AuthenticationError(ServiceClientError):
    """The service rejected the bearer token (HTTP 401)."""


class BackpressureError(AdmissionRejected):
    """Admission was full (HTTP 429); retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _JitterStream:
    """Seedable uniform-[0, 1) stream (SplitMix64 mixer).

    The client is deliberately stdlib-http-only and the library's rng
    helpers are numpy-backed, so reconnect jitter carries its own
    few-line generator instead of importing either.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int | None) -> None:
        if seed is None:
            seed = time.time_ns() ^ id(self)
        self._state = seed & self._MASK

    def random(self) -> float:
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        word = self._state
        word = ((word ^ (word >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        word = ((word ^ (word >> 27)) * 0x94D049BB133111EB) & self._MASK
        word ^= word >> 31
        return (word >> 11) / float(1 << 53)


class MosaicServiceClient:
    """Blocking client for one service base URL.

    Each call opens its own connection, so one client instance is safe
    to share across threads and a dropped stream never poisons later
    unary calls.  ``timeout`` bounds unary requests; event streams use
    ``stream_timeout`` (``None`` = wait forever between events).
    """

    def __init__(
        self,
        base_url: str,
        *,
        token: str | None = None,
        timeout: float = 30.0,
        stream_timeout: float | None = None,
        jitter_seed: int | None = None,
    ) -> None:
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}")
        if split.scheme not in ("", "http"):
            raise JobError(f"only http:// service URLs are supported, got {base_url!r}")
        if not split.hostname:
            raise JobError(f"service URL {base_url!r} has no host")
        self.host = split.hostname
        self.port = split.port or 80
        self.token = token
        self.timeout = timeout
        self.stream_timeout = stream_timeout
        # Per-client jitter stream for reconnect backoff.  Seedable so
        # tests (and the seeded load generator) get reproducible delays;
        # unseeded clients draw from a fresh system-entropy stream.
        self._jitter_rng = _JitterStream(jitter_seed)
        self._sleep = time.sleep  # test seam

    # -- plumbing --------------------------------------------------------

    def _headers(self) -> dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _connect(self, timeout: float | None) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=timeout)

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        connection = self._connect(self.timeout)
        try:
            headers = self._headers()
            body = None
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            self._raise_for_status(response.status, response, raw)
            return response.status, _decode_json(raw)
        finally:
            connection.close()

    def _raise_for_status(self, status: int, response, raw: bytes) -> None:
        if status < 400:
            return
        body = _decode_json(raw)
        message = body.get("error", raw.decode("utf-8", "replace"))
        code = body.get("code")
        if status == 401:
            raise AuthenticationError(status, message)
        if status == 429:
            raise BackpressureError(
                message, _parse_retry_after(response.getheader("Retry-After"))
            )
        raise ServiceClientError(status, message, code=code)

    # -- unary calls -----------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """Submit one job spec; returns ``{"job_id", "name", "events"}``.

        Raises :class:`BackpressureError` when admission is full.
        """
        _, body = self._request("POST", "/v1/jobs", payload=dict(spec))
        return body

    def submit_when_admitted(
        self, spec: dict, *, max_wait: float = 60.0
    ) -> dict:
        """Retry :meth:`submit` on backpressure, honouring ``Retry-After``."""
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self.submit(spec)
            except BackpressureError as exc:
                if time.monotonic() + exc.retry_after > deadline:
                    raise
                time.sleep(exc.retry_after)

    def job(self, job_id: str) -> dict:
        _, body = self._request("GET", f"/v1/jobs/{job_id}")
        return body

    def jobs(self) -> list[dict]:
        _, body = self._request("GET", "/v1/jobs")
        return body.get("jobs", [])

    def cancel(self, job_id: str) -> bool:
        """Request cooperative cancellation; ``True`` if accepted."""
        _, body = self._request("DELETE", f"/v1/jobs/{job_id}")
        return bool(body.get("cancel_accepted"))

    def health(self) -> dict:
        _, body = self._request("GET", "/healthz")
        return body

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``/metrics``."""
        connection = self._connect(self.timeout)
        try:
            connection.request("GET", "/metrics", headers=self._headers())
            response = connection.getresponse()
            raw = response.read()
            self._raise_for_status(response.status, response, raw)
            return raw.decode("utf-8")
        finally:
            connection.close()

    # -- event streaming -------------------------------------------------

    def events(
        self,
        job_id: str,
        *,
        from_seq: int = 0,
        reconnect: bool = True,
        max_reconnects: int = 5,
        reconnect_delay: float = 0.2,
        reconnect_jitter: float = 0.5,
    ):
        """Iterate the job's ordered NDJSON event stream.

        Yields one dict per :class:`~repro.service.gateway.GatewayEvent`
        and returns after the terminal event.  On a connection drop the
        iterator resumes from the last yielded sequence number (at most
        ``max_reconnects`` consecutive times), deduplicating any overlap
        — callers never see a repeated ``seq`` or a second terminal.

        Each reconnect sleeps ``reconnect_delay`` plus a uniform random
        fraction of it (up to ``reconnect_jitter``), drawn from the
        client's seedable jitter stream: when a node restart drops a
        thousand streams at once, the herd's reconnects spread over the
        jitter window instead of landing in one synchronized burst.
        """
        if reconnect_jitter < 0:
            raise JobError(
                f"reconnect_jitter must be >= 0, got {reconnect_jitter}"
            )
        next_seq = from_seq
        drops = 0
        while True:
            try:
                for event in self._stream_once(job_id, next_seq):
                    if event.get("seq", -1) < next_seq:
                        continue  # overlap after a resume
                    next_seq = event["seq"] + 1
                    drops = 0
                    yield event
                    if event.get("terminal"):
                        return
                # Stream ended cleanly but without a terminal event: the
                # server went away mid-job.  Treat it like a drop.
                raise ConnectionError(
                    f"event stream for {job_id} ended without a terminal event"
                )
            except (ConnectionError, HTTPException, socket.timeout, OSError):
                drops += 1
                if not reconnect or drops > max_reconnects:
                    raise
                self._sleep(
                    reconnect_delay
                    * (1.0 + reconnect_jitter * self._jitter_rng.random())
                )

    def _stream_once(self, job_id: str, from_seq: int):
        connection = self._connect(self.stream_timeout)
        try:
            path = f"/v1/jobs/{job_id}/events"
            if from_seq:
                path += f"?from_seq={from_seq}"
            connection.request("GET", path, headers=self._headers())
            response = connection.getresponse()
            if response.status >= 400:
                self._raise_for_status(response.status, response, response.read())
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()


def _decode_json(raw: bytes) -> dict:
    if not raw:
        return {}
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {}
    return payload if isinstance(payload, dict) else {}


def _parse_retry_after(value: str | None) -> float:
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return 1.0
