"""Disk-first, content-addressed artifact store shared across processes.

One on-disk store backs every worker — thread *or* process — so the
expensive pipeline artifacts (Step-1 tile stacks, the Step-2 ``S x S``
error matrix) are computed once per key machine-wide.  The layout under
``root`` is::

    store/<algo>/<shard>/<digest>.npz     payload (arrays, ``np.savez``)
    store/<algo>/<shard>/<digest>.json    sidecar: key, checksum, size, layout
    index.json                            digest -> {nbytes, algo}
    locks/index.lock                      guards index updates + eviction
    locks/key-<digest>.lock               single-flight compute per key
    quarantine/                           corrupt entries moved here

where ``algo`` is the first segment of the cache key (``tiles``,
``matrix``, ...), ``shard`` is the first two hex chars of the digest and
``digest`` is the SHA-256 of the full key.

Design rules:

* **Writes are atomic** — payload and sidecar are written to a temp file,
  fsynced and ``os.replace``-d into place, so readers never observe a
  torn file; a writer killed mid-write leaves only an invisible temp.
* **Reads are lock-free** — a read opens the sidecar, verifies the
  payload length and SHA-256 checksum, and decodes.  Any mismatch
  (truncation, bit-flip, zero-length, garbage sidecar) quarantines the
  entry and reports a miss: corruption is *never* surfaced to the
  caller as an exception.
* **The index is advisory** — it tracks entry sizes for the byte budget
  and is only touched under ``locks/index.lock``.  If it is lost or
  stale it is rebuilt by scanning the store, so it can never corrupt
  the cache, only delay an eviction.
* **``get_or_compute`` is single-flight across processes** — a miss
  takes the per-key lock, re-checks, and only then computes, so N
  workers racing on one key do one compute (the stress suite asserts
  exactly-once via a filesystem counter).  If the lock cannot be
  acquired in time the caller computes anyway: availability beats
  deduplication.

Eviction is LRU by payload mtime (refreshed on every read via
``os.utime``) against ``max_bytes``; the entry just written is never
evicted, so an oversized payload is admitted alone, mirroring
:class:`~repro.service.cache.ArtifactCache`.
"""

from __future__ import annotations

import hashlib
import io
import json
import mmap
import os
import pickle
import struct
import threading
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.service.locks import FileLock, LockTimeout
from repro.utils.arrays import mmap_npz_arrays

__all__ = ["DiskCacheStore", "DiskCacheStats", "encode_payload", "decode_payload"]

_MISS = object()


class _CorruptPayload(Exception):
    """Internal: payload failed length/checksum verification."""

#: Sidecar/layout format version; bump on incompatible layout changes.
FORMAT_VERSION = 1

_SIDECAR_REQUIRED = ("checksum", "nbytes", "layout", "version")


# -- payload serialisation ----------------------------------------------


def encode_payload(value: Any) -> tuple[bytes, dict]:
    """Serialise a cache payload to ``(npz_bytes, layout)``.

    Arrays and tuples/lists of arrays-or-``None`` — the shapes the
    pipeline actually caches — are stored as plain ``.npz`` members
    (``allow_pickle=False`` on load, so payload files can never execute
    code).  Anything else falls back to a pickle blob wrapped in a
    ``uint8`` array; the layout records which decoding to apply.
    """
    arrays: dict[str, np.ndarray] = {}
    layout: dict[str, Any] | None = None
    if isinstance(value, np.ndarray) and value.dtype != object:
        arrays["a0"] = value
        layout = {"kind": "array"}
    elif isinstance(value, (tuple, list)):
        elements: list[str] = []
        for i, element in enumerate(value):
            if isinstance(element, np.ndarray) and element.dtype != object:
                arrays[f"a{i}"] = element
                elements.append("array")
            elif element is None:
                elements.append("none")
            else:
                elements = []
                break
        else:
            layout = {
                "kind": "tuple" if isinstance(value, tuple) else "list",
                "elements": elements,
            }
    if layout is None:
        arrays = {
            "a0": np.frombuffer(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL),
                dtype=np.uint8,
            )
        }
        layout = {"kind": "pickle"}
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue(), layout


def decode_payload(data: bytes, layout: Mapping[str, Any]) -> Any:
    """Inverse of :func:`encode_payload`; raises on malformed input."""
    with np.load(io.BytesIO(data), allow_pickle=False) as npz:
        kind = layout.get("kind")
        if kind == "array":
            return npz["a0"]
        if kind in ("tuple", "list"):
            out: list[Any] = []
            index = 0
            for element in layout["elements"]:
                if element == "none":
                    out.append(None)
                else:
                    out.append(npz[f"a{index}"])
                index += 1
            return tuple(out) if kind == "tuple" else out
        if kind == "pickle":
            return pickle.loads(npz["a0"].tobytes())
    raise ValueError(f"unknown payload layout {layout!r}")


def _write_atomic(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + ``os.replace``."""
    tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


# -- stats ---------------------------------------------------------------


@dataclass
class DiskCacheStats:
    """Per-process counters plus store-wide occupancy (from the index)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corruptions: int = 0
    entries: int = 0
    current_bytes: int = 0
    mmap_hits: int = 0
    copied_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "writes": self.writes,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "entries": self.entries,
            "current_bytes": self.current_bytes,
            "mmap_hits": self.mmap_hits,
            "copied_bytes": self.copied_bytes,
        }


class DiskCacheStore:
    """Content-addressed disk cache shared by thread and process workers.

    Parameters
    ----------
    root:
        Store directory (created on demand).  Safe to share between any
        number of processes on one machine.
    max_bytes:
        Byte budget over all payload files; least-recently-*read*
        entries are deleted once exceeded.  A single oversized payload
        is still admitted alone.
    lock_timeout:
        Budget for acquiring the index and per-key locks.  On expiry the
        store degrades gracefully: index updates are skipped and
        ``get_or_compute`` computes without single-flight protection.
    mmap_mode:
        ``"r"`` (default) memory-maps array payloads on read instead of
        heap-copying them: the checksum is verified over the mapping and
        the returned arrays are read-only zero-copy views backed by the
        page cache, so warm hits on a multi-hundred-MB error matrix stop
        copying (``stats.copied_bytes`` stays flat).  ``None`` restores
        the copying read.  Pickle-layout payloads always copy.
    metrics:
        Optional :class:`~repro.service.metrics.MetricsRegistry`; the
        store ticks ``cache_disk_{hits,misses,writes,evictions}_total``
        and ``cache_corruption_total`` counters live.  Dropped on
        pickling (a child process gets its own counters).
    """

    #: Safe to pickle into process workers — state lives on disk.
    process_safe = True

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int = 1 << 30,
        *,
        lock_timeout: float = 30.0,
        mmap_mode: str | None = "r",
        metrics=None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if mmap_mode not in (None, "r"):
            raise ValueError(f"mmap_mode must be None or 'r', got {mmap_mode!r}")
        self.root = os.fspath(root)
        self.max_bytes = int(max_bytes)
        self.lock_timeout = lock_timeout
        self.mmap_mode = mmap_mode
        self.metrics = metrics
        self._stats = DiskCacheStats()
        self._stats_lock = threading.Lock()
        self._quarantine_seq = 0

    # -- pickling (process executors ship the store by configuration) ----

    def __getstate__(self) -> dict:
        return {
            "root": self.root,
            "max_bytes": self.max_bytes,
            "lock_timeout": self.lock_timeout,
            "mmap_mode": self.mmap_mode,
        }

    def __setstate__(self, state: dict) -> None:
        self.__init__(
            state["root"],
            state["max_bytes"],
            lock_timeout=state["lock_timeout"],
            mmap_mode=state.get("mmap_mode", "r"),
        )

    # -- paths -----------------------------------------------------------

    @staticmethod
    def _digest(key: str) -> str:
        return hashlib.sha256(key.encode("utf-8")).hexdigest()

    @staticmethod
    def _algo(key: str) -> str:
        head = key.split("/", 1)[0]
        if (
            head
            and head not in (".", "..")  # no path traversal via the key
            and all(c.isalnum() or c in "._-" for c in head)
        ):
            return head
        return "misc"

    def _entry_paths(self, algo: str, digest: str) -> tuple[str, str]:
        shard_dir = os.path.join(self.root, "store", algo, digest[:2])
        return (
            os.path.join(shard_dir, f"{digest}.npz"),
            os.path.join(shard_dir, f"{digest}.json"),
        )

    def _index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _index_lock(self) -> FileLock:
        return FileLock(
            os.path.join(self.root, "locks", "index.lock"),
            timeout=self.lock_timeout,
        )

    def lock_path_for(self, key: str) -> str:
        """Path of ``key``'s single-flight compute lock file.

        Exposed for operational introspection (is anything computing
        this key?) and for crash-recovery tests that need to hold the
        lock from another process.
        """
        return os.path.join(self.root, "locks", f"key-{self._digest(key)}.lock")

    def _key_lock(self, digest: str) -> FileLock:
        return FileLock(
            os.path.join(self.root, "locks", f"key-{digest}.lock"),
            timeout=self.lock_timeout,
        )

    # -- stats helpers ---------------------------------------------------

    def _tick(self, field: str, metric: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self._stats, field, getattr(self._stats, field) + amount)
        if self.metrics is not None:
            self.metrics.counter(metric).inc(amount)

    @property
    def stats(self) -> DiskCacheStats:
        with self._stats_lock:
            snapshot = DiskCacheStats(**vars(self._stats))
        index = self._load_index()
        snapshot.entries = len(index)
        snapshot.current_bytes = sum(e.get("nbytes", 0) for e in index.values())
        return snapshot

    # -- core operations -------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Lock-free checksum-verified read; corrupt entries become misses."""
        value = self._read(key)
        return default if value is _MISS else value

    def contains(self, key: str) -> bool:
        """Whether both payload and sidecar exist (no checksum, no stats)."""
        payload, sidecar = self._entry_paths(self._algo(key), self._digest(key))
        return os.path.exists(sidecar) and os.path.exists(payload)

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Atomically persist ``key`` and enforce the byte budget.

        ``nbytes`` is accepted for :class:`CacheBackend` compatibility
        but ignored — the store charges the true serialised size.
        """
        algo, digest = self._algo(key), self._digest(key)
        payload_path, sidecar_path = self._entry_paths(algo, digest)
        data, layout = encode_payload(value)
        sidecar = {
            "version": FORMAT_VERSION,
            "key": key,
            "algo": algo,
            "nbytes": len(data),
            "checksum": hashlib.sha256(data).hexdigest(),
            "layout": layout,
        }
        os.makedirs(os.path.dirname(payload_path), exist_ok=True)
        try:
            # Payload first, sidecar second: an entry is visible to
            # readers only once its sidecar exists, so a crash between
            # the two leaves an invisible (and later pruned) payload.
            _write_atomic(payload_path, data)
            _write_atomic(
                sidecar_path, json.dumps(sidecar, sort_keys=True).encode("utf-8")
            )
        except OSError:
            return  # best-effort: a full disk degrades to recompute
        self._tick("writes", "cache_disk_writes_total")
        self._index_add(digest, algo, len(data))

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], nbytes: int | None = None
    ) -> Any:
        """Return the stored value, computing at most once across processes.

        The fast path is a lock-free read.  On a miss the per-key file
        lock serialises competing workers machine-wide: the winner
        computes and stores, the losers re-check and read the fresh
        entry.  If the lock cannot be acquired within ``lock_timeout``
        the caller computes without it (duplicate work, never a stall).
        """
        value = self._read(key)
        if value is not _MISS:
            return value
        lock = self._key_lock(self._digest(key))
        try:
            lock.acquire()
        except LockTimeout:
            value = compute()
            self.put(key, value)
            return value
        try:
            value = self._read(key, count_miss=False)
            if value is not _MISS:
                return value
            value = compute()
            self.put(key, value)
            return value
        finally:
            lock.release()

    def clear(self) -> None:
        """Delete every entry and the index (quarantine is kept)."""
        with self._index_lock():
            index = self._load_index()
            for digest, entry in index.items():
                payload, sidecar = self._entry_paths(
                    entry.get("algo", "misc"), digest
                )
                for path in (payload, sidecar):
                    try:
                        os.remove(path)
                    except OSError:
                        pass
            self._store_index({})

    def __len__(self) -> int:
        return len(self._load_index())

    # -- read path -------------------------------------------------------

    def _read_mmap(self, payload_path: str, sidecar: Mapping[str, Any]) -> Any:
        """Zero-copy read: checksum over the mapping, views into it.

        Raises :class:`_CorruptPayload` on length/checksum mismatch (the
        caller quarantines), and :class:`ValueError`/``OSError`` when the
        payload simply cannot be mapped (the caller falls back to the
        copying read, which re-verifies).
        """
        if os.path.getsize(payload_path) != sidecar["nbytes"]:
            raise _CorruptPayload
        with open(payload_path, "rb") as fh:
            mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        # Hashing the mapping reads pages straight from the page cache —
        # no heap copy of the payload is ever made on this path.
        if hashlib.sha256(mapping).hexdigest() != sidecar["checksum"]:
            raise _CorruptPayload
        members = mmap_npz_arrays(payload_path)
        layout = sidecar["layout"]
        kind = layout.get("kind")
        if kind == "array":
            return members["a0"]
        if kind in ("tuple", "list"):
            out: list[Any] = []
            index = 0
            for element in layout["elements"]:
                if element == "none":
                    out.append(None)
                else:
                    out.append(members[f"a{index}"])
                index += 1
            return tuple(out) if kind == "tuple" else out
        raise ValueError(f"layout {kind!r} is not mappable")

    def _read(self, key: str, count_miss: bool = True) -> Any:
        algo, digest = self._algo(key), self._digest(key)
        payload_path, sidecar_path = self._entry_paths(algo, digest)
        try:
            with open(sidecar_path, "rb") as fh:
                sidecar = json.loads(fh.read().decode("utf-8"))
            if not isinstance(sidecar, dict) or any(
                field not in sidecar for field in _SIDECAR_REQUIRED
            ):
                raise ValueError("malformed sidecar")
        except FileNotFoundError:
            if count_miss:
                self._tick("misses", "cache_disk_misses_total")
            return _MISS
        except (OSError, ValueError, UnicodeDecodeError):
            self._quarantine(payload_path, sidecar_path, digest)
            if count_miss:
                self._tick("misses", "cache_disk_misses_total")
            return _MISS
        layout = sidecar["layout"]
        if (
            self.mmap_mode == "r"
            and isinstance(layout, dict)
            and layout.get("kind") in ("array", "tuple", "list")
        ):
            try:
                value = self._read_mmap(payload_path, sidecar)
            except _CorruptPayload:
                self._quarantine(payload_path, sidecar_path, digest)
                if count_miss:
                    self._tick("misses", "cache_disk_misses_total")
                return _MISS
            except FileNotFoundError:
                self._quarantine(payload_path, sidecar_path, digest)
                if count_miss:
                    self._tick("misses", "cache_disk_misses_total")
                return _MISS
            except (OSError, ValueError, KeyError, struct.error):
                pass  # unmappable, not necessarily corrupt: copying read
            else:
                try:
                    os.utime(payload_path)  # refresh LRU recency, lock-free
                except OSError:
                    pass
                self._tick("mmap_hits", "cache_disk_mmap_hits_total")
                self._tick("hits", "cache_disk_hits_total")
                return value
        try:
            with open(payload_path, "rb") as fh:
                data = fh.read()
        except OSError:
            # Sidecar without payload: a partial delete or external
            # tampering — quarantine what is left.
            self._quarantine(payload_path, sidecar_path, digest)
            if count_miss:
                self._tick("misses", "cache_disk_misses_total")
            return _MISS
        if (
            len(data) != sidecar["nbytes"]
            or hashlib.sha256(data).hexdigest() != sidecar["checksum"]
        ):
            self._quarantine(payload_path, sidecar_path, digest)
            if count_miss:
                self._tick("misses", "cache_disk_misses_total")
            return _MISS
        try:
            value = decode_payload(data, sidecar["layout"])
        except Exception:
            self._quarantine(payload_path, sidecar_path, digest)
            if count_miss:
                self._tick("misses", "cache_disk_misses_total")
            return _MISS
        try:
            os.utime(payload_path)  # refresh LRU recency, lock-free
        except OSError:
            pass
        self._tick("hits", "cache_disk_hits_total")
        self._tick("copied_bytes", "cache_disk_copied_bytes_total", len(data))
        return value

    def _quarantine(self, payload_path: str, sidecar_path: str, digest: str) -> None:
        """Move a corrupt entry aside so it is recomputed, never re-read."""
        qdir = os.path.join(self.root, "quarantine")
        os.makedirs(qdir, exist_ok=True)
        with self._stats_lock:
            self._quarantine_seq += 1
            seq = self._quarantine_seq
        moved = False
        for path in (payload_path, sidecar_path):
            if not os.path.exists(path):
                continue
            target = os.path.join(
                qdir, f"{os.path.basename(path)}.{os.getpid()}.{seq}"
            )
            try:
                os.replace(path, target)
                moved = True
            except OSError:
                try:
                    os.remove(path)
                    moved = True
                except OSError:
                    pass
        if moved:
            self._tick("corruptions", "cache_corruption_total")
            self._index_discard(digest)

    # -- index + eviction ------------------------------------------------

    def _load_index(self) -> dict[str, dict]:
        try:
            with open(self._index_path(), "rb") as fh:
                index = json.loads(fh.read().decode("utf-8"))
            if isinstance(index, dict):
                return {k: v for k, v in index.items() if isinstance(v, dict)}
        except (OSError, ValueError, UnicodeDecodeError):
            pass
        return {}

    def _store_index(self, index: dict[str, dict]) -> None:
        # Caller holds the index lock.
        _write_atomic(
            self._index_path(), json.dumps(index, sort_keys=True).encode("utf-8")
        )

    def _rebuild_index(self) -> dict[str, dict]:
        """Re-derive the index by scanning the store (self-healing)."""
        index: dict[str, dict] = {}
        store_dir = os.path.join(self.root, "store")
        for dirpath, _dirnames, filenames in os.walk(store_dir):
            for filename in filenames:
                if not filename.endswith(".npz") or ".tmp." in filename:
                    continue
                digest = filename[: -len(".npz")]
                path = os.path.join(dirpath, filename)
                try:
                    nbytes = os.path.getsize(path)
                except OSError:
                    continue
                algo = os.path.basename(os.path.dirname(dirpath))
                index[digest] = {"nbytes": nbytes, "algo": algo}
        return index

    def _index_add(self, digest: str, algo: str, nbytes: int) -> None:
        try:
            with self._index_lock():
                index = self._load_index()
                if not index:
                    index = self._rebuild_index()
                index[digest] = {"nbytes": nbytes, "algo": algo}
                self._evict_locked(index, keep=digest)
                self._store_index(index)
        except (LockTimeout, OSError):
            pass  # accounting is best-effort; the next writer catches up

    def _index_discard(self, digest: str) -> None:
        try:
            with self._index_lock():
                index = self._load_index()
                if digest in index:
                    del index[digest]
                    self._store_index(index)
        except (LockTimeout, OSError):
            pass

    def _evict_locked(self, index: dict[str, dict], keep: str) -> None:
        """LRU-evict (by payload mtime) until the budget holds.

        Runs under the index lock.  Entries whose payload vanished are
        pruned from the index for free; the entry just written (``keep``)
        is never evicted, so oversized payloads are admitted alone.
        """
        total = sum(e.get("nbytes", 0) for e in index.values())
        if total <= self.max_bytes:
            return
        aged: list[tuple[float, str, int]] = []
        for digest, entry in list(index.items()):
            payload, _ = self._entry_paths(entry.get("algo", "misc"), digest)
            try:
                mtime = os.path.getmtime(payload)
            except OSError:
                total -= entry.get("nbytes", 0)
                del index[digest]
                continue
            if digest != keep:
                aged.append((mtime, digest, entry.get("nbytes", 0)))
        aged.sort()
        for _mtime, digest, nbytes in aged:
            if total <= self.max_bytes:
                break
            entry = index.pop(digest)
            payload, sidecar = self._entry_paths(entry.get("algo", "misc"), digest)
            for path in (sidecar, payload):  # sidecar first: hides the entry
                try:
                    os.remove(path)
                except OSError:
                    pass
            total -= nbytes
            self._tick("evictions", "cache_disk_evictions_total")
