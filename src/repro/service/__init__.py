"""Mosaic job service: queued batch execution with caching and metrics.

This subsystem turns the one-shot pipeline into a servable workload:

* :mod:`repro.service.jobs` — the job model (specs, records, states,
  deterministic IDs);
* :mod:`repro.service.queue` — a thread-safe in-process priority queue;
* :mod:`repro.service.workers` — a worker pool (thread/process executors)
  with per-job timeouts, bounded retries with backoff, and graceful
  drain;
* :mod:`repro.service.batching` — the Step-2 micro-batching rendezvous:
  concurrent same-fingerprint jobs share one batched error-matrix
  launch (:mod:`repro.cost.batch`), bit-identical to solo runs;
* :mod:`repro.service.tiering` — the backend-tiering scheduler routing
  jobs to NumPy or an accelerator by predicted Step-2 cost;
* :mod:`repro.service.cache` — content-addressed artifact caching
  (memory LRU, the two-tier :class:`CacheStack`) memoizing Step-1 tile
  grids and Step-2 error matrices;
* :mod:`repro.service.diskcache` — the disk-first store shared across
  thread *and* process workers (atomic writes, checksums, quarantine,
  cross-process LRU eviction);
* :mod:`repro.service.locks` — the cross-process file lock the disk
  store builds on;
* :mod:`repro.service.metrics` — counters/gauges/latency histograms with
  JSON export and a text summary;
* :mod:`repro.service.manifest` — the batch manifest format consumed by
  ``photomosaic batch``;
* :mod:`repro.service.gateway` — the asyncio streaming intake layer
  (bounded admission with typed backpressure, per-job event streams,
  cooperative cancellation, NDJSON event logs) behind
  ``photomosaic serve``;
* :mod:`repro.service.http` — the HTTP/1.1 + WebSocket network front
  over the gateway (job submission, resumable event streams, Prometheus
  ``/metrics``, bearer auth, graceful drain) behind
  ``photomosaic serve-http``;
* :mod:`repro.service.client` — the stdlib client library for that
  front (submit / events with reconnect-resume / cancel);
* :mod:`repro.service.cluster` — the multi-node tier behind
  ``photomosaic serve-cluster`` / ``serve-node``: a coordinator that
  shards jobs across worker nodes with rendezvous hashing, replicates
  their event logs, detects node failures by heartbeat deadline and
  re-dispatches, plus a consistent-hashed cross-node cache tier.
  Imported lazily — ``from repro.service.cluster import ...`` — so the
  single-box service pays nothing for it.

See ``docs/service.md`` for the job lifecycle, cache keying scheme and
metrics schema.
"""

from __future__ import annotations

from repro.service.batching import (
    Step2BatchCoordinator,
    step2_fingerprint,
)
from repro.service.tiering import (
    DEFAULT_TIER_THRESHOLD,
    BackendTieringPolicy,
    TierDecision,
)
from repro.service.cache import (
    ArtifactCache,
    CacheBackend,
    CacheStack,
    CacheStats,
    StackStats,
    config_fingerprint,
    error_matrix_key,
    image_fingerprint,
    tile_grid_key,
)
from repro.exceptions import AdmissionRejected
from repro.service.diskcache import DiskCacheStats, DiskCacheStore
from repro.service.gateway import (
    GatewayEvent,
    JobStream,
    MosaicGateway,
    TERMINAL_STATES,
)
from repro.service.http import HttpFront, HttpFrontConfig, JobEventBroker
from repro.service.client import MosaicServiceClient
from repro.service.jobs import JOB_KINDS, JobRecord, JobSpec, JobState
from repro.service.locks import FileLock, LockTimeout
from repro.service.manifest import load_manifest, parse_manifest
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.queue import JobQueue
from repro.service.workers import (
    EXECUTOR_KINDS,
    JobContext,
    MosaicJobRunner,
    SystemClock,
    WorkerPool,
    resolve_image,
)

__all__ = [
    "ArtifactCache",
    "CacheBackend",
    "CacheStack",
    "CacheStats",
    "StackStats",
    "DiskCacheStats",
    "DiskCacheStore",
    "FileLock",
    "LockTimeout",
    "config_fingerprint",
    "image_fingerprint",
    "tile_grid_key",
    "error_matrix_key",
    "JOB_KINDS",
    "JobRecord",
    "JobSpec",
    "JobState",
    "load_manifest",
    "parse_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JobQueue",
    "EXECUTOR_KINDS",
    "JobContext",
    "MosaicJobRunner",
    "SystemClock",
    "WorkerPool",
    "resolve_image",
    "AdmissionRejected",
    "GatewayEvent",
    "JobStream",
    "MosaicGateway",
    "TERMINAL_STATES",
    "HttpFront",
    "HttpFrontConfig",
    "JobEventBroker",
    "MosaicServiceClient",
    "Step2BatchCoordinator",
    "step2_fingerprint",
    "BackendTieringPolicy",
    "TierDecision",
    "DEFAULT_TIER_THRESHOLD",
]
