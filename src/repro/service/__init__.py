"""Mosaic job service: queued batch execution with caching and metrics.

This subsystem turns the one-shot pipeline into a servable workload:

* :mod:`repro.service.jobs` — the job model (specs, records, states,
  deterministic IDs);
* :mod:`repro.service.queue` — a thread-safe in-process priority queue;
* :mod:`repro.service.workers` — a worker pool (thread/process executors)
  with per-job timeouts, bounded retries with backoff, and graceful
  drain;
* :mod:`repro.service.cache` — a content-addressed LRU artifact cache
  memoizing Step-1 tile grids and Step-2 error matrices;
* :mod:`repro.service.metrics` — counters/gauges/latency histograms with
  JSON export and a text summary;
* :mod:`repro.service.manifest` — the batch manifest format consumed by
  ``photomosaic batch``.

See ``docs/service.md`` for the job lifecycle, cache keying scheme and
metrics schema.
"""

from __future__ import annotations

from repro.service.cache import (
    ArtifactCache,
    CacheStats,
    error_matrix_key,
    image_fingerprint,
    tile_grid_key,
)
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.manifest import load_manifest, parse_manifest
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.queue import JobQueue
from repro.service.workers import (
    EXECUTOR_KINDS,
    MosaicJobRunner,
    WorkerPool,
    resolve_image,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "image_fingerprint",
    "tile_grid_key",
    "error_matrix_key",
    "JobRecord",
    "JobSpec",
    "JobState",
    "load_manifest",
    "parse_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JobQueue",
    "EXECUTOR_KINDS",
    "MosaicJobRunner",
    "WorkerPool",
    "resolve_image",
]
