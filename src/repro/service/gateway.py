"""Async streaming job gateway over the worker pool.

The batch service (:mod:`repro.service.workers`) is fire-and-forget:
submit a manifest, wait, read the records.  Long-running 2-opt jobs want
the opposite shape — callers need to watch a job converge sweep by sweep
and pull the plug when it has converged enough.  :class:`MosaicGateway`
is that intake layer:

* **bounded admission with typed backpressure** — at most ``max_pending``
  jobs may be in flight; :meth:`MosaicGateway.submit` raises
  :class:`~repro.exceptions.AdmissionRejected` beyond that instead of
  queueing unboundedly;
* **per-job async event streams** — every admitted job returns a
  :class:`JobStream`, an async iterator yielding :class:`GatewayEvent`
  objects for each :class:`~repro.service.jobs.JobState` transition,
  retry/backoff notice, per-phase timing snapshot and 2-opt sweep, ending
  with exactly one terminal event;
* **async cancellation** — :meth:`MosaicGateway.cancel` propagates to
  :meth:`WorkerPool.cancel`, which cancels queued jobs immediately and
  in-flight jobs cooperatively at the next phase/sweep boundary;
* **graceful drain** — :meth:`MosaicGateway.drain` (and ``aclose``)
  waits until every admitted stream has terminated;
* **NDJSON event logging** — every dispatched event can be appended as
  one JSON line to a log file for replay/debugging.

Threading model: worker threads emit events through the record observer;
the observer trampolines them onto the gateway's event loop with
``loop.call_soon_threadsafe``, so all bookkeeping (sequence numbers,
admission accounting, stream queues) is mutated only on the loop thread
and needs no locks.  Per-job ordering is inherited from the commit order
of the underlying record transitions.

Event schema (one dict per NDJSON line)::

    {"job_id": "job-...", "seq": 3, "kind": "state" | "retry" | "phase"
        | "sweep" | "admitted", "terminal": false, "payload": {...}}

Gateway metrics folded into the shared registry: ``gateway_admitted``,
``gateway_rejected``, ``gateway_events_streamed``,
``gateway_events_dropped``, ``gateway_cancel_requests``, the
``gateway_pending`` gauge, and the ``gateway_stream_lag_seconds``
histogram (worker-thread emit to loop-thread dispatch).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from dataclasses import dataclass, field

from repro.exceptions import AdmissionRejected, JobError
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.metrics import MetricsRegistry
from repro.service.workers import WorkerPool

__all__ = ["GatewayEvent", "JobStream", "MosaicGateway", "TERMINAL_STATES"]

#: Job states that end a stream.
TERMINAL_STATES = frozenset(
    {JobState.DONE.value, JobState.FAILED.value, JobState.CANCELLED.value}
)

#: Lag buckets: thread->loop handoff is micro- to milliseconds.
STREAM_LAG_BUCKETS: tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0,
)


@dataclass(frozen=True)
class GatewayEvent:
    """One event on a job's stream.

    ``seq`` is the per-job sequence number, starting at 0 with the
    ``admitted`` event and strictly increasing; ``terminal`` is true for
    exactly the last event of a stream (a ``state`` event whose state is
    ``DONE``, ``FAILED`` or ``CANCELLED``).
    """

    job_id: str
    seq: int
    kind: str
    payload: dict = field(default_factory=dict)
    terminal: bool = False

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "kind": self.kind,
            "terminal": self.terminal,
            "payload": dict(self.payload),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False, default=str)

    @property
    def state(self) -> str | None:
        """The new job state for ``kind="state"`` events, else ``None``."""
        if self.kind == "state":
            return self.payload.get("state")
        return None


class JobStream:
    """Async iterator over one admitted job's events.

    Yields :class:`GatewayEvent` in per-job order and stops after the
    terminal event.  The underlying :class:`JobRecord` stays accessible
    for the final result::

        stream = await gateway.submit(spec)
        async for event in stream:
            ...
        result = stream.record.result
    """

    def __init__(self, job_id: str, record: JobRecord, queue: asyncio.Queue) -> None:
        self.job_id = job_id
        self.record = record
        self._queue = queue

    def __aiter__(self) -> "JobStream":
        return self

    async def __anext__(self) -> GatewayEvent:
        event = await self._queue.get()
        if event is None:  # sentinel queued right after the terminal event
            raise StopAsyncIteration
        return event

    async def collect(self) -> list[GatewayEvent]:
        """Convenience: consume the stream to termination."""
        return [event async for event in self]


class MosaicGateway:
    """Asyncio streaming intake over a :class:`WorkerPool`.

    Parameters
    ----------
    pool:
        The worker pool executing jobs.  The gateway does not own it —
        shut it down separately (the ``serve`` CLI does both).
    max_pending:
        Admission bound: maximum jobs admitted but not yet terminal.
        Submissions beyond it raise :class:`AdmissionRejected`.
    metrics:
        Registry for the gateway counters; defaults to the pool's, so
        one report carries pool and gateway instruments together.
    event_log:
        Optional NDJSON sink — a path (opened append, closed by
        ``aclose``) or any object with ``write(str)``.

    All async methods must be called from one event loop (bound on first
    use).  Use as an async context manager for drain-on-exit::

        async with MosaicGateway(pool, max_pending=8) as gateway:
            stream = await gateway.submit(spec)
            async for event in stream: ...
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        max_pending: int = 16,
        metrics: MetricsRegistry | None = None,
        event_log=None,
    ) -> None:
        if max_pending < 1:
            raise JobError(f"max_pending must be >= 1, got {max_pending}")
        self.pool = pool
        self.max_pending = max_pending
        self.metrics = metrics if metrics is not None else pool.metrics
        self._loop: asyncio.AbstractEventLoop | None = None
        self._streams: dict[str, asyncio.Queue] = {}
        self._seq: dict[str, int] = {}
        self._closed_jobs: set[str] = set()
        self._pending = 0
        self._closed = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._log = None
        self._owns_log = False
        if event_log is not None:
            if hasattr(event_log, "write"):
                self._log = event_log
            else:
                self._log = open(os.fspath(event_log), "a", encoding="utf-8")
                self._owns_log = True

    # -- intake ----------------------------------------------------------

    async def submit(self, spec: JobSpec) -> JobStream:
        """Admit one job and return its event stream.

        Raises :class:`AdmissionRejected` when ``max_pending`` jobs are
        already in flight (typed backpressure — nothing was queued), and
        :class:`JobError` after ``aclose``.
        """
        self._bind_loop()
        if self._closed:
            raise JobError("gateway is closed")
        if self._pending >= self.max_pending:
            self.metrics.counter("gateway_rejected").inc()
            raise AdmissionRejected(
                f"admission queue full: {self._pending}/{self.max_pending} "
                "jobs in flight"
            )
        loop = self._loop

        def observer(record: JobRecord, kind: str, payload: dict) -> None:
            # Runs on worker threads; trampoline onto the loop.  The
            # emit timestamp rides along so dispatch can measure lag.
            try:
                loop.call_soon_threadsafe(
                    self._dispatch, record.job_id, kind, dict(payload),
                    time.perf_counter(),
                )
            except RuntimeError:
                # Loop already closed (gateway abandoned): drop the event
                # rather than killing the supervisor thread.
                pass

        record = self.pool.submit(spec, observer=observer)
        # Transitions may already be scheduled on the loop, but they run
        # only after this coroutine yields — so bookkeeping set up here
        # is visible to them, and "admitted" is always seq 0.
        self._pending += 1
        self._idle.clear()
        self._streams[record.job_id] = asyncio.Queue()
        self._seq[record.job_id] = 0
        self.metrics.counter("gateway_admitted").inc()
        self.metrics.gauge("gateway_pending").set(self._pending)
        self._dispatch(
            record.job_id,
            "admitted",
            {"name": spec.name or record.job_id, "priority": spec.priority},
            time.perf_counter(),
        )
        return JobStream(record.job_id, record, self._streams[record.job_id])

    async def submit_when_admitted(
        self, spec: JobSpec, *, poll: float = 0.01
    ) -> JobStream:
        """Blocking-style submit: wait for an admission slot instead of
        raising.  Manifest-driven serving uses this for backpressure."""
        while True:
            try:
                return await self.submit(spec)
            except AdmissionRejected:
                await asyncio.sleep(poll)

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; see :meth:`WorkerPool.cancel` semantics.

        Queued jobs emit their ``CANCELLED`` terminal event immediately;
        in-flight jobs emit it when the runner reaches its next
        cooperation point.  Returns ``False`` for unknown/terminal jobs.
        """
        self._bind_loop()
        accepted = self.pool.cancel(job_id)
        if accepted:
            self.metrics.counter("gateway_cancel_requests").inc()
        return accepted

    # -- lifecycle -------------------------------------------------------

    async def drain(self) -> None:
        """Wait until every admitted job's stream has terminated."""
        self._bind_loop()
        await self._idle.wait()

    async def aclose(self, drain: bool = True) -> None:
        """Stop intake; drain outstanding streams (default) and close the
        event log.  Idempotent."""
        self._closed = True
        if drain:
            await self.drain()
        if self._log is not None and self._owns_log:
            self._log.close()
            self._log = None

    async def __aenter__(self) -> "MosaicGateway":
        self._bind_loop()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose(drain=True)

    @property
    def pending(self) -> int:
        """Jobs admitted but not yet terminal."""
        return self._pending

    # -- loop-side dispatch ---------------------------------------------

    def _bind_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise JobError("gateway is bound to a different event loop")

    def _dispatch(
        self, job_id: str, kind: str, payload: dict, emitted_at: float
    ) -> None:
        """Deliver one event to its stream (loop thread only)."""
        if job_id in self._closed_jobs:
            # Late emissions from an abandoned (timed-out) attempt after
            # the job reached a terminal state: never leak them into a
            # finished stream.
            self.metrics.counter("gateway_events_dropped").inc()
            return
        queue = self._streams.get(job_id)
        if queue is None:  # not admitted through this gateway
            self.metrics.counter("gateway_events_dropped").inc()
            return
        seq = self._seq[job_id]
        self._seq[job_id] = seq + 1
        terminal = kind == "state" and payload.get("state") in TERMINAL_STATES
        event = GatewayEvent(
            job_id=job_id, seq=seq, kind=kind, payload=payload, terminal=terminal
        )
        self.metrics.counter("gateway_events_streamed").inc()
        self.metrics.histogram(
            "gateway_stream_lag_seconds", buckets=STREAM_LAG_BUCKETS
        ).observe(max(0.0, time.perf_counter() - emitted_at))
        if self._log is not None:
            self._log.write(event.to_json() + "\n")
        queue.put_nowait(event)
        if terminal:
            queue.put_nowait(None)  # stream sentinel
            self._closed_jobs.add(job_id)
            self._pending -= 1
            self.metrics.gauge("gateway_pending").set(self._pending)
            if self._pending == 0:
                self._idle.set()
