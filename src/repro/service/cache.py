"""Content-addressed artifact cache for pipeline intermediates.

The dominant costs of the pipeline are Step 1 (tiling) and above all
Step 2 (the ``S x S`` error matrix).  Both are pure functions of their
inputs, so the cache keys them by content: an image is fingerprinted by
the SHA-256 of its bytes + shape + dtype, and the artifact keys compose
fingerprints with the parameters that affect the result (tile size, cost
metric, transform flag).  Two jobs that share a target image — the common
case for batch workloads rendering many inputs against one target — hit
the same Step-1/Step-2 entries and skip straight to Step 3.

Storage backends implement the small :class:`CacheBackend` protocol:

* :class:`ArtifactCache` — thread-safe in-memory LRU with a byte budget
  and optional disk spill of evicted entries;
* :class:`~repro.service.diskcache.DiskCacheStore` — a disk-first store
  shared across *processes* (content-addressed files, atomic writes,
  checksums, cross-process LRU eviction);
* :class:`CacheStack` — the two-tier combination (memory front, disk
  store behind) that the service and the ``photomosaic batch`` CLI use,
  and the only backend that survives pickling into process workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass, is_dataclass
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "ArtifactCache",
    "CacheBackend",
    "CacheStack",
    "CacheStats",
    "StackStats",
    "config_fingerprint",
    "image_fingerprint",
    "tile_grid_key",
    "error_matrix_key",
]

_MISS = object()


def image_fingerprint(image: np.ndarray) -> str:
    """Content hash of an image: SHA-256 over dtype, shape and raw bytes."""
    h = hashlib.sha256()
    h.update(str(image.dtype).encode())
    h.update(repr(image.shape).encode())
    h.update(np.ascontiguousarray(image).tobytes())
    return h.hexdigest()[:32]


def tile_grid_key(fingerprint: str, tile_size: int) -> str:
    """Cache key for a Step-1 tile stack of one image."""
    return f"tiles/{fingerprint}/t{tile_size}"


def error_matrix_key(
    input_fingerprint: str,
    target_fingerprint: str,
    tile_size: int,
    metric: str,
    allow_transforms: bool = False,
) -> str:
    """Cache key for a Step-2 error matrix (and its orientation codes)."""
    suffix = "+dihedral" if allow_transforms else ""
    return (
        f"matrix/{input_fingerprint}/{target_fingerprint}"
        f"/t{tile_size}/{metric}{suffix}"
    )


def config_fingerprint(config: Any) -> str:
    """Order-independent fingerprint of a configuration.

    Accepts a mapping, a dataclass (e.g. :class:`~repro.mosaic.config.
    MosaicConfig`) or any JSON-encodable value and hashes its canonical
    JSON form (sorted keys), so two dicts with the same items in any
    insertion order — or a config and its ``asdict`` — fingerprint
    identically.  Use it to key custom artifacts by pipeline settings.
    """
    if is_dataclass(config) and not isinstance(config, type):
        config = asdict(config)
    payload = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@runtime_checkable
class CacheBackend(Protocol):
    """What the generator, worker pool and CLI need from a cache."""

    def get(self, key: str, default: Any = None) -> Any: ...

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None: ...

    def contains(self, key: str) -> bool: ...

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], nbytes: int | None = None
    ) -> Any: ...


def _payload_nbytes(value: Any) -> int:
    """Best-effort byte size of a cached payload (arrays and containers)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_payload_nbytes(v) for v in value)
    if value is None:
        return 0
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unknown payloads get a nominal charge


@dataclass
class CacheStats:
    """Counters exposed in the metrics report."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    spill_writes: int = 0
    spill_reads: int = 0
    current_bytes: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never queried)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "spill_writes": self.spill_writes,
            "spill_reads": self.spill_reads,
            "current_bytes": self.current_bytes,
            "entries": self.entries,
        }


@dataclass
class _Entry:
    value: Any
    nbytes: int = 0


class ArtifactCache:
    """Thread-safe content-addressed LRU cache with optional disk spill.

    Parameters
    ----------
    max_bytes:
        In-memory budget; least-recently-used entries are evicted (and
        spilled, when ``spill_dir`` is set) once the budget is exceeded.
        A single payload larger than the budget is still admitted alone.
    spill_dir:
        Directory for evicted entries (created on demand).  ``None``
        disables spilling: evicted entries are simply recomputed on the
        next miss.
    """

    def __init__(
        self, max_bytes: int = 256 * 2**20, spill_dir: str | os.PathLike | None = None
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self.spill_dir = os.fspath(spill_dir) if spill_dir is not None else None
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.RLock()
        self._stats = CacheStats()

    # -- core operations ------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        """Look up ``key``; counts a hit/miss and refreshes LRU order."""
        value = self._lookup(key)
        return default if value is _MISS else value

    def contains(self, key: str) -> bool:
        """Whether ``key`` is resident (memory or spill) — no stats impact."""
        with self._lock:
            if key in self._entries:
                return True
        return self._spill_path(key) is not None and os.path.exists(
            self._spill_path(key)
        )

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        """Insert/replace ``key``; evicts LRU entries to honour the budget."""
        size = _payload_nbytes(value) if nbytes is None else int(nbytes)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._stats.current_bytes -= old.nbytes
            self._entries[key] = _Entry(value, size)
            self._stats.current_bytes += size
            self._stats.entries = len(self._entries)
            self._evict_over_budget()

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], nbytes: int | None = None
    ) -> Any:
        """Return the cached value for ``key``, computing and storing on miss.

        The compute callable runs outside the cache lock, so a slow Step-2
        computation never blocks other workers' lookups; if two workers
        race on the same key, both compute and the second insert wins —
        acceptable because payloads are pure functions of the key.
        """
        value = self._lookup(key)
        if value is not _MISS:
            return value
        value = compute()
        self.put(key, value, nbytes=nbytes)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stats.current_bytes = 0
            self._stats.entries = 0

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            snapshot = CacheStats(**vars(self._stats))
            snapshot.entries = len(self._entries)
            return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- internals ------------------------------------------------------

    def _lookup(self, key: str) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                return entry.value
        value = self._load_spilled(key)
        with self._lock:
            if value is not _MISS:
                self._stats.hits += 1
                self._stats.spill_reads += 1
            else:
                self._stats.misses += 1
        if value is not _MISS:
            self.put(key, value)
        return value

    def _evict_over_budget(self) -> None:
        # Caller holds the lock.  Never evict the entry just inserted
        # (last), so oversized payloads are admitted alone.
        while self._stats.current_bytes > self.max_bytes and len(self._entries) > 1:
            key, entry = self._entries.popitem(last=False)
            self._stats.current_bytes -= entry.nbytes
            self._stats.evictions += 1
            self._stats.entries = len(self._entries)
            self._spill(key, entry.value)

    def _spill_path(self, key: str) -> str | None:
        if self.spill_dir is None:
            return None
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]
        return os.path.join(self.spill_dir, f"{digest}.pkl")

    def _spill(self, key: str, value: Any) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        os.makedirs(self.spill_dir, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            # Atomic publish: a spill file only becomes visible complete.
            # The fsync closes the crash window where os.replace survives
            # a power cut but the data blocks don't — a writer killed at
            # any point leaves either the old entry or an invisible temp,
            # never a torn .pkl (the crash-window regression test kills a
            # spilling process mid-write and reloads the store).
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            with self._lock:
                self._stats.spill_writes += 1
        except (OSError, pickle.PicklingError):
            # Spilling is best-effort; a full disk degrades to recompute.
            try:
                os.remove(tmp)
            except OSError:
                pass

    def _load_spilled(self, key: str) -> Any:
        path = self._spill_path(key)
        if path is None or not os.path.exists(path):
            return _MISS
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return _MISS


# -- the two-tier stack --------------------------------------------------


@dataclass
class StackStats:
    """Per-tier snapshot of a :class:`CacheStack`.

    ``memory`` is this process's front tier; ``disk`` combines the
    store-wide occupancy (entries/bytes, accurate machine-wide) with the
    calling process's own hit/miss counters.
    """

    memory: CacheStats
    disk: Any = None  # DiskCacheStats | None

    @property
    def hit_rate(self) -> float:
        """Fraction of stack lookups served by either tier.

        Every lookup consults the memory tier first, so memory lookups
        count the total; a memory miss answered by the disk tier is
        still one served lookup.
        """
        lookups = self.memory.hits + self.memory.misses
        if not lookups:
            return 0.0
        served = self.memory.hits + (self.disk.hits if self.disk else 0)
        return min(1.0, served / lookups)

    def as_dict(self) -> dict:
        return {
            "hit_rate": self.hit_rate,
            "memory": self.memory.as_dict(),
            "disk": self.disk.as_dict() if self.disk else None,
        }


class CacheStack:
    """Two-tier cache: in-memory LRU front, shared disk store behind.

    Lookups hit the memory tier first; a memory miss falls through to
    the disk store and a disk hit is promoted back into memory.  Writes
    go to both tiers (write-through), so every process sharing the disk
    root benefits from any worker's compute.  ``get_or_compute``
    delegates the miss path to the disk store's cross-process
    single-flight lock, which is what makes N process workers compute
    each artifact exactly once machine-wide.

    The stack is picklable when its disk tier is (``process_safe``):
    a process worker receives a *fresh, empty* memory tier plus the
    shared on-disk store — in-memory entries never cross the process
    boundary, the disk does the sharing.
    """

    def __init__(self, memory: ArtifactCache | None = None, disk=None) -> None:
        self.memory = memory if memory is not None else ArtifactCache()
        self.disk = disk

    @property
    def process_safe(self) -> bool:
        """Whether pickling into a process worker preserves sharing."""
        return self.disk is not None and getattr(self.disk, "process_safe", False)

    def __getstate__(self) -> dict:
        return {
            "memory_max_bytes": self.memory.max_bytes,
            "memory_spill_dir": self.memory.spill_dir,
            "disk": self.disk,
        }

    def __setstate__(self, state: dict) -> None:
        self.memory = ArtifactCache(
            max_bytes=state["memory_max_bytes"], spill_dir=state["memory_spill_dir"]
        )
        self.disk = state["disk"]

    # -- CacheBackend ----------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        value = self.memory.get(key, _MISS)
        if value is not _MISS:
            return value
        if self.disk is not None:
            value = self.disk.get(key, _MISS)
            if value is not _MISS:
                self.memory.put(key, value)
                return value
        return default

    def put(self, key: str, value: Any, nbytes: int | None = None) -> None:
        self.memory.put(key, value, nbytes=nbytes)
        if self.disk is not None:
            self.disk.put(key, value)

    def contains(self, key: str) -> bool:
        if self.memory.contains(key):
            return True
        return self.disk is not None and self.disk.contains(key)

    def get_or_compute(
        self, key: str, compute: Callable[[], Any], nbytes: int | None = None
    ) -> Any:
        value = self.memory.get(key, _MISS)
        if value is not _MISS:
            return value
        if self.disk is None:
            # Memory stats already counted the miss; insert directly to
            # avoid double-counting a second memory lookup.
            value = compute()
            self.memory.put(key, value, nbytes=nbytes)
            return value
        value = self.disk.get_or_compute(key, compute)
        self.memory.put(key, value, nbytes=nbytes)
        return value

    def clear(self) -> None:
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()

    @property
    def stats(self) -> StackStats:
        return StackStats(
            memory=self.memory.stats,
            disk=self.disk.stats if self.disk is not None else None,
        )

    def __len__(self) -> int:
        return len(self.memory)
