"""Backend-tiering scheduler — route jobs by predicted Step-2 cost.

The crossover the paper measures between CPU and GPU mosaic runs
(Table III: the GPU only pays off once the grid is large enough to fill
the device) shows up in the service as a routing decision: small jobs
finish faster on NumPy than they would after paying a device round-trip,
large jobs want the widest backend available.  A
:class:`BackendTieringPolicy` makes that call per job from the one
number that predicts Step-2 work — the count of metric evaluations
("pairs") the job will perform:

* dense jobs score ``S^2`` pairs for a grid of ``S`` tiles;
* shortlisted jobs score ``S * top_k`` pairs
  (:mod:`repro.cost.sparse` evaluates exactly the selected set).

Jobs below :attr:`~BackendTieringPolicy.threshold_pairs` route to the
small tier (NumPy); jobs at or above it to the large tier (``"auto"`` by
default, i.e. CuPy when a device is usable).  An explicit
``JobSpec.backend`` always wins — tiering only fills the gap the spec
left open — and a large-tier backend that fails to load falls back to
NumPy rather than failing the job, with the decision recorded so the
``/metrics`` counters show how often the fallback fires.

The default threshold is pinned by ``benchmarks/bench_batched_step2.py``
(committed envelope in ``benchmarks/BENCH_9.json``): it is the pair
count where the virtual GPU's modeled Step-2 time crosses below the
measured NumPy time on the reference Tesla K40 model — measured, not
guessed, and re-derivable on any machine by re-running the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accel.backend import BackendUnavailable, get_backend
from repro.exceptions import ValidationError
from repro.service.jobs import JobSpec

__all__ = ["DEFAULT_TIER_THRESHOLD", "BackendTieringPolicy", "TierDecision"]

#: Pair count where modeled accelerator time crosses below measured NumPy
#: time for the dense SAD kernel (see ``benchmarks/BENCH_9.json``,
#: ``crossover_pairs``: the S=256 grid, 65 536 pairs, is the first sweep
#: point where the K40 model beats the host — 2.85 ms modeled vs 4.80 ms
#: measured).  Grids below this finish faster on the host.
DEFAULT_TIER_THRESHOLD = 65_536


@dataclass(frozen=True)
class TierDecision:
    """One routing outcome: the backend to use and why it was chosen.

    ``reason`` is one of ``"override"`` (the spec pinned its own
    backend), ``"small"`` / ``"large"`` (threshold routing), or
    ``"fallback"`` (the large tier's backend failed to load and NumPy
    substituted).
    """

    backend: str
    reason: str
    predicted_pairs: int


class BackendTieringPolicy:
    """Threshold router over predicted Step-2 pair counts.

    Parameters
    ----------
    threshold_pairs:
        Jobs predicted to evaluate at least this many metric pairs route
        to ``large_backend``; smaller jobs to ``small_backend``.
    small_backend, large_backend:
        Backend names for the two tiers.  The large tier defaults to
        ``"auto"`` (best available); naming ``"cupy"`` outright makes
        the availability fallback observable in the decision.
    """

    def __init__(
        self,
        *,
        threshold_pairs: int = DEFAULT_TIER_THRESHOLD,
        small_backend: str = "numpy",
        large_backend: str = "auto",
    ) -> None:
        if threshold_pairs < 1:
            raise ValidationError(
                f"threshold_pairs must be >= 1, got {threshold_pairs}"
            )
        self.threshold_pairs = int(threshold_pairs)
        self.small_backend = small_backend
        self.large_backend = large_backend

    @staticmethod
    def predicted_pairs(spec: JobSpec) -> int:
        """Metric evaluations the job's Step 2 will perform.

        ``S = (size // tile_size)^2`` grid tiles; dense jobs score
        ``S^2`` pairs, shortlisted jobs ``S * k``.  Library jobs use
        their ``top_k`` knob the same way (candidate scoring against the
        shortlist is their rowwise hot path); the estimate is the router
        input, not an accounting claim.
        """
        grid = max(1, spec.size // spec.tile_size) ** 2
        if spec.kind == "library":
            return grid * max(1, spec.top_k)
        if spec.shortlist_top_k > 0:
            return grid * min(grid, spec.shortlist_top_k)
        return grid * grid

    def route(self, spec: JobSpec) -> TierDecision:
        """Pick the backend for one job; the spec's own choice wins."""
        pairs = self.predicted_pairs(spec)
        if spec.backend is not None:
            return TierDecision(spec.backend, "override", pairs)
        if pairs < self.threshold_pairs:
            return TierDecision(self.small_backend, "small", pairs)
        try:
            backend = get_backend(self.large_backend)
        except BackendUnavailable:
            return TierDecision("numpy", "fallback", pairs)
        return TierDecision(backend.name, "large", pairs)
