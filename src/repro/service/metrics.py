"""Counters, gauges and latency histograms for the job service.

A deliberately small, dependency-free metrics layer in the Prometheus
style: named :class:`Counter` / :class:`Gauge` / :class:`Histogram`
instruments owned by a :class:`MetricsRegistry`.  Everything is
thread-safe (workers record concurrently), serialises to a stable JSON
schema via :meth:`MetricsRegistry.as_dict`, and pretty-prints as an
aligned summary table for the CLI.

Histograms keep cumulative bucket counts (Prometheus ``le`` semantics)
plus exact observations up to a cap; quantiles are exact below the cap
and bucket-interpolated beyond it, which is plenty for a local service
report.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
from typing import Iterable, Mapping

from repro.utils.timing import TimingBreakdown

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Default histogram buckets (seconds): 1 ms .. 60 s, roughly 1-2-5 spaced.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0,
    30.0, 60.0,
)

_OBSERVATION_CAP = 4096

#: Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*
_NAME_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """Coerce an instrument name into a legal Prometheus metric name."""
    name = _NAME_INVALID.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _prometheus_value(value: float) -> str:
    """Render a sample value: integral floats without the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, active workers)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency histogram with cumulative buckets and exact small-n quantiles."""

    def __init__(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None
    ) -> None:
        self.name = name
        self.help = help
        bounds = tuple(sorted(buckets)) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._observations: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = bisect.bisect_left(self.bounds, value)
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)
            if len(self._observations) < _OBSERVATION_CAP:
                self._observations.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (exact while under the observation cap).

        An empty histogram has no quantiles: returns ``nan`` (it used to
        fall through to ``0.0``, which is indistinguishable from a real
        zero-latency observation).  Callers that want a printable value
        must check :attr:`count` first, exactly like Prometheus's
        ``histogram_quantile`` returning ``NaN`` on an empty series.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return math.nan
            if self._count <= len(self._observations):
                ordered = sorted(self._observations)
                return ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            # Bucket interpolation: find the first cumulative bucket
            # containing the target rank; report its upper bound.
            target = q * self._count
            running = 0
            for index, count in enumerate(self._bucket_counts):
                running += count
                if running >= target:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self._max
            return self._max

    def snapshot(self) -> tuple[tuple[float, ...], list[int], int, float]:
        """Consistent ``(bounds, cumulative_counts, count, sum)`` view.

        ``cumulative_counts`` has one entry per bound plus the final
        ``+Inf`` entry (== ``count``), Prometheus ``le`` semantics.
        """
        with self._lock:
            cumulative: list[int] = []
            running = 0
            for count in self._bucket_counts[:-1]:
                running += count
                cumulative.append(running)
            cumulative.append(self._count)
            return self.bounds, cumulative, self._count, self._sum

    def as_dict(self) -> dict:
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0}
            cumulative = []
            running = 0
            for bound, count in zip(self.bounds, self._bucket_counts):
                running += count
                cumulative.append({"le": bound, "count": running})
            cumulative.append({"le": "+Inf", "count": self._count})
            body = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count,
                "buckets": cumulative,
            }
        body["p50"] = self.quantile(0.50)
        body["p90"] = self.quantile(0.90)
        body["p99"] = self.quantile(0.99)
        return body


class MetricsRegistry:
    """Factory and container for named instruments.

    Re-requesting a name returns the existing instrument, so call sites
    don't need to coordinate creation.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, help)
            return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, help)
            return self._gauges[name]

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None
    ) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, help, buckets)
            return self._histograms[name]

    def record_timings(self, timings: TimingBreakdown, prefix: str = "step") -> None:
        """Observe every phase of a breakdown into per-phase histograms."""
        for phase, seconds in timings.as_dict().items():
            self.histogram(f"{prefix}_{phase}_seconds").observe(seconds)

    def merge_counts(self, values: Mapping[str, float]) -> None:
        """Bulk-increment counters from a ``{name: delta}`` mapping.

        This is how out-of-registry tallies get folded in: the worker
        pool merges per-job cache outcomes that travelled back from
        process workers, and the batch CLI merges a cache tier's final
        stats snapshot.  Zero deltas are skipped so merging a snapshot
        never creates empty counters.
        """
        for name, delta in values.items():
            if delta:
                self.counter(name).inc(float(delta))

    def as_dict(self, extra: Mapping | None = None) -> dict:
        """Stable JSON schema: counters, gauges, histograms (+ extra blocks)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: g.value for n, g in sorted(gauges.items())},
            "histograms": {n: h.as_dict() for n, h in sorted(histograms.items())},
        }
        if extra:
            out.update(extra)
        return out

    def to_json(self, extra: Mapping | None = None, indent: int = 2) -> str:
        return json.dumps(self.as_dict(extra), indent=indent, sort_keys=False)

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format version 0.0.4) of every
        instrument: ``# HELP``/``# TYPE`` preambles, plain samples for
        counters and gauges, and ``_bucket``/``_sum``/``_count`` series
        with cumulative ``le`` labels for histograms.  The JSON
        (:meth:`as_dict`) and summary-table outputs are unchanged; this
        is what ``GET /metrics`` on the HTTP front serves.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        lines: list[str] = []

        def preamble(name: str, help_text: str, kind: str) -> None:
            if help_text:
                escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {name} {escaped}")
            lines.append(f"# TYPE {name} {kind}")

        for raw_name, counter in sorted(counters.items()):
            name = _prometheus_name(raw_name)
            preamble(name, counter.help, "counter")
            lines.append(f"{name} {_prometheus_value(counter.value)}")
        for raw_name, gauge in sorted(gauges.items()):
            name = _prometheus_name(raw_name)
            preamble(name, gauge.help, "gauge")
            lines.append(f"{name} {_prometheus_value(gauge.value)}")
        for raw_name, histogram in sorted(histograms.items()):
            name = _prometheus_name(raw_name)
            preamble(name, histogram.help, "histogram")
            bounds, cumulative, count, total = histogram.snapshot()
            for bound, running in zip(bounds, cumulative[:-1]):
                lines.append(
                    f'{name}_bucket{{le="{_prometheus_value(bound)}"}} {running}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{name}_sum {_prometheus_value(total)}")
            lines.append(f"{name}_count {count}")
        return "\n".join(lines) + "\n" if lines else ""

    def summary_table(self) -> str:
        """Aligned plain-text summary (the CLI prints this after a batch)."""
        data = self.as_dict()
        lines: list[str] = []
        width = max(
            [len(n) for section in ("counters", "gauges") for n in data[section]]
            + [len(n) for n in data["histograms"]]
            + [12]
        )
        for name, value in data["counters"].items():
            lines.append(f"{name:<{width}}  {value:>12g}")
        for name, value in data["gauges"].items():
            lines.append(f"{name:<{width}}  {value:>12g}")
        for name, body in data["histograms"].items():
            if body["count"] == 0:
                lines.append(f"{name:<{width}}  {'(empty)':>12}")
                continue
            lines.append(
                f"{name:<{width}}  count {body['count']:>6d}  "
                f"mean {body['mean'] * 1000:9.2f}ms  "
                f"p50 {body['p50'] * 1000:9.2f}ms  "
                f"p99 {body['p99'] * 1000:9.2f}ms"
            )
        return "\n".join(lines)
