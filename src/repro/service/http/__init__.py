"""HTTP/WebSocket network front for the mosaic job service.

The subsystem that makes the streaming gateway reachable over a socket:

* :mod:`repro.service.http.protocol` — dependency-free HTTP/1.1 parsing
  and response/chunked-transfer writers;
* :mod:`repro.service.http.websocket` — the RFC 6455 subset (handshake
  digest, text/ping/pong/close frames);
* :mod:`repro.service.http.broker` — replayable per-job event logs with
  ``from_seq`` resume over any number of subscribers;
* :mod:`repro.service.http.server` — :class:`HttpFront`, the asyncio
  server itself (routes, auth, limits, metrics, graceful drain).

``photomosaic serve-http`` is the CLI entry point;
:mod:`repro.service.client` is the matching stdlib client library.  See
``docs/service.md`` ("HTTP API") for the endpoint reference.
"""

from __future__ import annotations

from repro.service.http.broker import EventLog, JobEventBroker
from repro.service.http.protocol import HttpError, HttpRequest
from repro.service.http.server import HttpFront, HttpFrontConfig

__all__ = [
    "EventLog",
    "JobEventBroker",
    "HttpError",
    "HttpRequest",
    "HttpFront",
    "HttpFrontConfig",
]
