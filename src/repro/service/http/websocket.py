"""Minimal RFC 6455 WebSocket framing (server side, plus test clients).

Only what the event-stream route needs: the opening handshake's
``Sec-WebSocket-Accept`` digest, frame encode/decode for text, ping,
pong and close, and payload-size enforcement.  No extensions, no
fragmentation reassembly beyond rejecting it explicitly, no
subprotocols.  Clients mask frames (the RFC mandates it); the server
never does.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct

__all__ = [
    "GUID",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "WebSocketError",
    "accept_key",
    "encode_frame",
    "encode_close",
    "parse_close",
    "read_frame",
]

#: The protocol GUID every handshake digests (RFC 6455 §4.2.2).
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = frozenset({OP_CLOSE, OP_PING, OP_PONG})


class WebSocketError(Exception):
    """A frame violated the subset of RFC 6455 this module speaks."""


def accept_key(sec_websocket_key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((sec_websocket_key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """One FIN frame.  ``mask=True`` applies a random client mask."""
    head = bytearray([0x80 | (opcode & 0x0F)])
    length = len(payload)
    mask_bit = 0x80 if mask else 0
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def encode_close(code: int = 1000, reason: str = "") -> bytes:
    """A close frame's *payload* (pass through :func:`encode_frame`)."""
    return struct.pack("!H", code) + reason.encode("utf-8")


def parse_close(payload: bytes) -> tuple[int, str]:
    """``(code, reason)`` from a close frame payload (1005 when empty)."""
    if len(payload) < 2:
        return 1005, ""
    (code,) = struct.unpack("!H", payload[:2])
    return code, payload[2:].decode("utf-8", errors="replace")


async def read_frame(
    reader, *, max_payload: int = 1 << 20
) -> tuple[int, bytes]:
    """Read one frame; returns ``(opcode, unmasked payload)``.

    Raises :class:`WebSocketError` on protocol violations and
    ``asyncio.IncompleteReadError`` when the peer vanishes mid-frame.
    """
    first, second = await reader.readexactly(2)
    if not first & 0x80:
        raise WebSocketError("fragmented frames are not supported")
    if first & 0x70:
        raise WebSocketError("reserved bits set without a negotiated extension")
    opcode = first & 0x0F
    masked = bool(second & 0x80)
    length = second & 0x7F
    if opcode in _CONTROL_OPS and length > 125:
        raise WebSocketError("control frame payload exceeds 125 bytes")
    if length == 126:
        (length,) = struct.unpack("!H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack("!Q", await reader.readexactly(8))
    if length > max_payload:
        raise WebSocketError(
            f"frame payload of {length} bytes exceeds the {max_payload}-byte limit"
        )
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
