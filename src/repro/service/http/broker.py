"""Replayable event logs over the streaming gateway.

A :class:`~repro.service.gateway.JobStream` is a one-shot consumer: each
event is delivered once, to whoever holds the stream.  A network front
needs more — several clients may watch the same job, a client may
disconnect mid-job and reconnect with ``?from_seq=N``, and a job's
events must stay fetchable after it finishes.  :class:`JobEventBroker`
provides that: it owns the gateway submission, pumps every stream into a
per-job :class:`EventLog` (an append-only list plus an ``asyncio``
condition), and hands out any number of :meth:`EventLog.subscribe`
iterators, each replaying history from an arbitrary sequence number
before following live appends.

Everything runs on one event loop (the gateway's), so the log needs no
locks — subscribers and the pump interleave only at ``await`` points.

Terminal logs are retained for late reads and listed by
:meth:`JobEventBroker.jobs`; a bounded LRU (``retain_terminal``) evicts
the oldest finished jobs so a long-lived server does not grow without
bound.  Reads of an evicted job 404 at the HTTP layer.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict

from repro.service.gateway import GatewayEvent, MosaicGateway
from repro.service.jobs import JobSpec

__all__ = ["EventLog", "JobEventBroker"]


class EventLog:
    """Append-only, replayable log of one job's gateway events."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self.events: list[GatewayEvent] = []
        self.closed = False
        self._changed = asyncio.Event()

    def append(self, event: GatewayEvent) -> None:
        self.events.append(event)
        if event.terminal:
            self.closed = True
        self._wake()

    def close(self) -> None:
        """Mark the log complete (no more appends will happen)."""
        self.closed = True
        self._wake()

    def _wake(self) -> None:
        self._changed.set()
        self._changed = asyncio.Event()

    async def subscribe(self, from_seq: int = 0):
        """Yield events with ``seq >= from_seq`` — history first, then
        live appends — until the log closes.  Multiple subscribers are
        independent; each sees the same per-job order the gateway
        committed.
        """
        cursor = 0
        while True:
            while cursor < len(self.events):
                event = self.events[cursor]
                cursor += 1
                if event.seq >= from_seq:
                    yield event
            if self.closed:
                return
            waiter = self._changed
            await waiter.wait()


class JobEventBroker:
    """Gateway front desk: submissions, fan-out logs, job registry."""

    def __init__(
        self, gateway: MosaicGateway, *, retain_terminal: int = 256
    ) -> None:
        if retain_terminal < 1:
            raise ValueError(
                f"retain_terminal must be >= 1, got {retain_terminal}"
            )
        self.gateway = gateway
        self.retain_terminal = retain_terminal
        self._logs: "OrderedDict[str, EventLog]" = OrderedDict()
        self._records: "OrderedDict[str, object]" = OrderedDict()
        self._pumps: dict[str, asyncio.Task] = {}

    async def submit(self, spec: JobSpec) -> str:
        """Admit one job; returns its id.

        Propagates :class:`~repro.exceptions.AdmissionRejected` untouched
        — the HTTP layer maps it to ``429 Retry-After``.
        """
        stream = await self.gateway.submit(spec)
        log = EventLog(stream.job_id)
        self._logs[stream.job_id] = log
        self._records[stream.job_id] = stream.record
        self._pumps[stream.job_id] = asyncio.create_task(
            self._pump(stream, log)
        )
        return stream.job_id

    async def _pump(self, stream, log: EventLog) -> None:
        try:
            async for event in stream:
                log.append(event)
        finally:
            log.close()  # defensive: a pump cancellation must not wedge readers
            self._pumps.pop(log.job_id, None)
            self._evict_terminal()

    def _evict_terminal(self) -> None:
        terminal = [jid for jid, log in self._logs.items() if log.closed]
        for jid in terminal[: max(0, len(terminal) - self.retain_terminal)]:
            del self._logs[jid]
            del self._records[jid]

    def log(self, job_id: str) -> EventLog | None:
        return self._logs.get(job_id)

    def record(self, job_id: str):
        return self._records.get(job_id)

    async def cancel(self, job_id: str) -> bool:
        """Cooperative cancel; ``False`` for unknown/terminal jobs."""
        return await self.gateway.cancel(job_id)

    def jobs(self) -> list[dict]:
        """JSON-ready summaries, oldest submission first."""
        return [record.summary() for record in self._records.values()]

    async def drain(self) -> None:
        """Wait for every pumped stream to reach its terminal event."""
        pumps = list(self._pumps.values())
        if pumps:
            await asyncio.gather(*pumps, return_exceptions=True)
