"""Minimal HTTP/1.1 wire protocol over asyncio streams.

The network front (:mod:`repro.service.http.server`) speaks plain
HTTP/1.1 with zero third-party dependencies, so the parser lives here:
request-line + header parsing with hard size limits, ``Content-Length``
body reads bounded by a byte budget, and response writers for both
fixed-length JSON replies and chunked transfer encoding (the NDJSON
event streams).

Scope is deliberate: no request pipelining guarantees beyond sequential
keep-alive, no request ``Transfer-Encoding: chunked`` (replied with
``411``/``501``), no multipart.  Everything a mosaic client needs — JSON
in, JSON/NDJSON/WebSocket out — fits in that subset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "REASONS",
    "read_request",
    "response_head",
    "send_json",
    "write_chunk",
    "end_chunks",
]

#: Reason phrases for every status the front emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_MAX_REQUEST_LINE = 8192


class HttpError(Exception):
    """A request that must be answered with an error status.

    ``headers`` ride along so handlers can attach semantics to the
    failure — e.g. ``Retry-After`` on a 429/503.  ``code`` is a stable
    machine-readable taxonomy tag (``"unknown_field"``,
    ``"unknown_kind"``, ``"invalid_spec"``, ``"malformed_body"``, ...)
    carried in the JSON error body so clients can branch on the *class*
    of failure without parsing prose.
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
        *,
        code: str | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.code = code

    def body(self) -> dict:
        """The JSON error body for this failure."""
        payload = {"error": self.message}
        if self.code is not None:
            payload["code"] = self.code
        return payload


@dataclass
class HttpRequest:
    """One parsed request: start line, lowered headers, raw body."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    version: str = "HTTP/1.1"
    peer: str = ""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    def json(self) -> dict:
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(
                400, "request body must be a JSON object", code="malformed_body"
            )
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(
                400, f"invalid JSON body: {exc}", code="malformed_body"
            ) from None
        if not isinstance(payload, dict):
            raise HttpError(
                400, "request body must be a JSON object", code="malformed_body"
            )
        return payload

    def int_query(self, name: str, default: int) -> int:
        """Parse an integer query parameter (400 on garbage)."""
        raw = self.query.get(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(
                400, f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None


async def read_request(
    reader,
    *,
    max_header_bytes: int = 32 * 1024,
    max_body_bytes: int = 1 << 20,
    peer: str = "",
):
    """Parse one request from ``reader``; ``None`` on clean EOF.

    Raises :class:`HttpError` for protocol violations (the caller turns
    it into an error response) and lets connection errors propagate.
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not request_line:
        return None  # peer closed between requests
    if len(request_line) > _MAX_REQUEST_LINE:
        raise HttpError(431, "request line too long")
    try:
        method, target, version = request_line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(501, f"unsupported protocol version {version}")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError:  # single header line beyond the stream limit
            raise HttpError(431, "request header line too long") from None
        header_bytes += len(line)
        if header_bytes > max_header_bytes:
            raise HttpError(431, "request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name or name != name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{max_body_bytes}-byte limit",
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:  # noqa: BLE001 - incomplete read == peer gone
                return None
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, "POST requires Content-Length")

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return HttpRequest(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
        peer=peer,
    )


def response_head(
    status: int, headers: dict[str, str] | None = None
) -> bytes:
    """Serialize a status line plus headers (terminated by CRLFCRLF)."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def send_json(
    writer,
    status: int,
    payload: dict | list,
    *,
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> None:
    """Write one complete JSON response (does not drain)."""
    body = (json.dumps(payload, default=str) + "\n").encode("utf-8")
    head = {
        "Content-Type": "application/json; charset=utf-8",
        "Content-Length": str(len(body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    head.update(headers or {})
    writer.write(response_head(status, head) + body)


def write_chunk(writer, data: bytes) -> None:
    """Write one chunk of a chunked-transfer response body."""
    if not data:
        return  # an empty chunk would terminate the stream
    writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")


def end_chunks(writer) -> None:
    """Terminate a chunked-transfer response body."""
    writer.write(b"0\r\n\r\n")
