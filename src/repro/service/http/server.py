"""The HTTP/WebSocket network front over :class:`MosaicGateway`.

:class:`HttpFront` exposes the streaming job service to remote clients
with zero third-party dependencies — plain ``asyncio.start_server``
underneath, the tiny HTTP/1.1 parser from
:mod:`repro.service.http.protocol`, and the RFC 6455 subset from
:mod:`repro.service.http.websocket`:

==========================  ===========================================
``POST /v1/jobs``           submit a JSON :class:`JobSpec`; ``202`` with
                            the job id, ``429`` + ``Retry-After`` when
                            admission is full (typed backpressure).
``GET /v1/jobs``            list job summaries.
``GET /v1/jobs/{id}``       one job summary.
``GET /v1/jobs/{id}/events``  the ordered event stream — NDJSON over
                            chunked transfer by default, or an RFC 6455
                            WebSocket upgrade on the same route; both
                            honour ``?from_seq=N`` resume.
``DELETE /v1/jobs/{id}``    cooperative cancellation.
``GET /healthz``            liveness + drain state (never authenticated).
``GET /metrics``            Prometheus text exposition of the shared
                            registry (scrapers go unauthenticated).
==========================  ===========================================

Operational behaviour:

* **auth** — optional static bearer token; every ``/v1/`` route then
  requires ``Authorization: Bearer <token>`` (constant-time compare) and
  replies ``401`` otherwise;
* **limits** — request bodies beyond ``max_body_bytes`` get ``413``,
  header blocks beyond ``max_header_bytes`` get ``431``, and at most
  ``max_concurrent_streams`` event streams run at once (``503`` +
  ``Retry-After`` beyond that);
* **metrics** — ``http_requests_total``, ``http_responses_total`` per
  status class, the ``http_in_flight`` / ``http_streams_active`` /
  ``http_connections_active`` gauges, and the
  ``http_request_latency_seconds`` histogram all land in the same
  :class:`MetricsRegistry` as the pool and gateway instruments;
* **graceful drain** — :meth:`HttpFront.begin_drain` stops accepting
  connections and answers new requests ``503 Connection: close`` while
  active event streams run to their terminal event; the ``serve-http``
  CLI wires it to SIGINT/SIGTERM.
"""

from __future__ import annotations

import asyncio
import hmac
import time

from repro.exceptions import AdmissionRejected, JobError
from repro.service.gateway import MosaicGateway
from repro.service.http import websocket as ws
from repro.service.http.broker import JobEventBroker
from repro.service.http.protocol import (
    HttpError,
    HttpRequest,
    end_chunks,
    read_request,
    response_head,
    send_json,
    write_chunk,
)
from repro.service.jobs import JOB_KINDS, JobSpec
from repro.service.metrics import MetricsRegistry

__all__ = [
    "HttpFront",
    "HttpFrontConfig",
    "REQUEST_LATENCY_BUCKETS",
    "spec_from_payload",
]


def spec_from_payload(payload: dict) -> JobSpec:
    """Validate a JSON job-submission body into a :class:`JobSpec`.

    Shared by every front that accepts submissions (the single-box HTTP
    front and the cluster coordinator), so both reject malformed specs
    with identical 400 taxonomy codes.
    """
    unknown = set(payload) - JobSpec.field_names()
    if unknown:
        raise HttpError(
            400,
            f"unknown job spec fields: {', '.join(sorted(unknown))}",
            code="unknown_field",
        )
    kind = payload.get("kind", "mosaic")
    if kind not in JOB_KINDS:
        raise HttpError(
            400,
            f"unknown job kind {kind!r} (use one of {JOB_KINDS})",
            code="unknown_kind",
        )
    try:
        return JobSpec(**payload)
    except (TypeError, JobError) as exc:
        raise HttpError(400, f"invalid job spec: {exc}", code="invalid_spec") from None

#: Request-latency buckets: sub-millisecond routing up to long streams.
REQUEST_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


class HttpFrontConfig:
    """Bind address, auth and limits for an :class:`HttpFront`."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        auth_token: str | None = None,
        max_body_bytes: int = 1 << 20,
        max_header_bytes: int = 32 * 1024,
        max_concurrent_streams: int = 64,
        retain_terminal: int = 256,
        retry_after: float = 1.0,
    ) -> None:
        if max_body_bytes < 1 or max_header_bytes < 1:
            raise ValueError("body/header limits must be positive")
        if max_concurrent_streams < 1:
            raise ValueError(
                f"max_concurrent_streams must be >= 1, got {max_concurrent_streams}"
            )
        self.host = host
        self.port = port
        self.auth_token = auth_token
        self.max_body_bytes = max_body_bytes
        self.max_header_bytes = max_header_bytes
        self.max_concurrent_streams = max_concurrent_streams
        self.retain_terminal = retain_terminal
        self.retry_after = retry_after


class HttpFront:
    """Asyncio HTTP/1.1 + WebSocket server over one gateway.

    Lifecycle: ``await front.start()`` binds the listener (``front.port``
    then holds the real port, also with ``port=0``); ``begin_drain()``
    flips to lame-duck mode; ``await front.aclose()`` waits for open
    connections to finish and releases the socket.  The gateway and its
    pool are owned by the caller.
    """

    def __init__(
        self,
        gateway: MosaicGateway,
        *,
        config: HttpFrontConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.gateway = gateway
        self.config = config if config is not None else HttpFrontConfig()
        self.metrics = metrics if metrics is not None else gateway.metrics
        self.broker = JobEventBroker(
            gateway, retain_terminal=self.config.retain_terminal
        )
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._streams_active = 0
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "HttpFront":
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """Lame-duck: stop accepting, 503 new requests, finish streams."""
        self._draining = True
        if self._server is not None:
            self._server.close()

    async def aclose(self) -> None:
        """Drain and release the listener; idempotent."""
        self.begin_drain()
        if self._server is not None:
            await self._server.wait_closed()
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def __aenter__(self) -> "HttpFront":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()

    # -- connection handling ---------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        # start_server runs this callback as its own task; track it so
        # aclose() can wait for in-flight connections.
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        await self._handle_connection(reader, writer)

    async def _handle_connection(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        self.metrics.gauge("http_connections_active").inc()
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes,
                        peer=peer,
                    )
                except HttpError as exc:
                    self._count_response(exc.status)
                    send_json(
                        writer,
                        exc.status,
                        exc.body(),
                        headers=exc.headers,
                        keep_alive=False,
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = await self._handle_request(request, reader, writer)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass  # peer vanished; nothing to answer
        finally:
            self.metrics.gauge("http_connections_active").dec()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    # -- request routing -------------------------------------------------

    async def _handle_request(self, request: HttpRequest, reader, writer) -> bool:
        started = time.perf_counter()
        self.metrics.counter("http_requests_total").inc()
        self.metrics.gauge("http_in_flight").inc()
        status = 500
        keep_alive = False
        try:
            status, keep_alive = await self._route(request, reader, writer)
        except HttpError as exc:
            status = exc.status
            keep_alive = (
                request.keep_alive
                and exc.headers.get("Connection", "").lower() != "close"
            )
            send_json(
                writer,
                exc.status,
                exc.body(),
                headers=exc.headers,
                keep_alive=keep_alive,
            )
            await writer.drain()
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
        ):
            keep_alive = False  # client went away mid-response
            status = 499
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.metrics.counter("http_internal_errors_total").inc()
            keep_alive = False
            try:
                send_json(
                    writer,
                    500,
                    {"error": f"internal error: {type(exc).__name__}: {exc}"},
                    keep_alive=False,
                )
                await writer.drain()
            except (ConnectionError, BrokenPipeError):
                pass
        finally:
            self.metrics.gauge("http_in_flight").dec()
            self.metrics.histogram(
                "http_request_latency_seconds", buckets=REQUEST_LATENCY_BUCKETS
            ).observe(time.perf_counter() - started)
            self._count_response(status)
        return keep_alive

    def _count_response(self, status: int) -> None:
        self.metrics.counter("http_responses_total").inc()
        self.metrics.counter(f"http_responses_{status // 100}xx_total").inc()

    async def _route(self, request: HttpRequest, reader, writer) -> tuple[int, bool]:
        """Dispatch one request; returns ``(status, keep_alive)``."""
        path, method = request.path, request.method
        if path == "/healthz":
            return self._get_healthz(request, writer), request.keep_alive
        if self._draining:
            raise HttpError(
                503,
                "server is draining",
                headers={
                    "Retry-After": f"{self.config.retry_after:g}",
                    "Connection": "close",
                },
            )
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return self._get_metrics(request, writer), request.keep_alive

        if path.startswith("/v1/"):
            self._authorize(request)
        if path == "/v1/jobs":
            if method == "POST":
                return await self._post_job(request, writer), request.keep_alive
            if method == "GET":
                return self._get_jobs(request, writer), request.keep_alive
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            if tail.endswith("/events") and method == "GET":
                job_id = tail[: -len("/events")].rstrip("/")
                return await self._get_events(request, reader, writer, job_id)
            if "/" not in tail:
                if method == "GET":
                    return self._get_job(request, writer, tail), request.keep_alive
                if method == "DELETE":
                    return (
                        await self._delete_job(request, writer, tail),
                        request.keep_alive,
                    )
                raise HttpError(405, f"{method} not allowed on {path}")
        raise HttpError(404, f"no route for {method} {path}")

    def _authorize(self, request: HttpRequest) -> None:
        token = self.config.auth_token
        if not token:
            return
        supplied = request.headers.get("authorization", "")
        scheme, _, value = supplied.partition(" ")
        if scheme.lower() == "bearer" and hmac.compare_digest(
            value.strip().encode("utf-8"), token.encode("utf-8")
        ):
            return
        self.metrics.counter("http_auth_failures_total").inc()
        raise HttpError(
            401,
            "missing or invalid bearer token",
            headers={"WWW-Authenticate": "Bearer"},
        )

    # -- plain handlers --------------------------------------------------

    def _get_healthz(self, request: HttpRequest, writer) -> int:
        send_json(
            writer,
            200,
            {
                "status": "draining" if self._draining else "ok",
                "pending_jobs": self.gateway.pending,
                "active_streams": self._streams_active,
            },
            keep_alive=request.keep_alive,
        )
        return 200

    def _get_metrics(self, request: HttpRequest, writer) -> int:
        body = self.metrics.render_prometheus().encode("utf-8")
        writer.write(
            response_head(
                200,
                {
                    "Content-Type": "text/plain; version=0.0.4; charset=utf-8",
                    "Content-Length": str(len(body)),
                    "Connection": "keep-alive" if request.keep_alive else "close",
                },
            )
            + body
        )
        return 200

    async def _post_job(self, request: HttpRequest, writer) -> int:
        spec = spec_from_payload(request.json())
        try:
            job_id = await self.broker.submit(spec)
        except AdmissionRejected as exc:
            self.metrics.counter("http_rejected_429_total").inc()
            raise HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            ) from None
        send_json(
            writer,
            202,
            {
                "job_id": job_id,
                "name": spec.name or job_id,
                "events": f"/v1/jobs/{job_id}/events",
            },
            keep_alive=request.keep_alive,
        )
        return 202

    def _get_jobs(self, request: HttpRequest, writer) -> int:
        send_json(
            writer, 200, {"jobs": self.broker.jobs()}, keep_alive=request.keep_alive
        )
        return 200

    def _get_job(self, request: HttpRequest, writer, job_id: str) -> int:
        record = self.broker.record(job_id)
        if record is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        send_json(writer, 200, record.summary(), keep_alive=request.keep_alive)
        return 200

    async def _delete_job(self, request: HttpRequest, writer, job_id: str) -> int:
        if self.broker.record(job_id) is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        cancelled = await self.broker.cancel(job_id)
        send_json(
            writer,
            202,
            {"job_id": job_id, "cancel_accepted": cancelled},
            keep_alive=request.keep_alive,
        )
        return 202

    # -- event streaming -------------------------------------------------

    async def _get_events(
        self, request: HttpRequest, reader, writer, job_id: str
    ) -> tuple[int, bool]:
        log = self.broker.log(job_id)
        if log is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        from_seq = request.int_query("from_seq", 0)
        if from_seq < 0:
            raise HttpError(400, "from_seq must be >= 0")
        if self._streams_active >= self.config.max_concurrent_streams:
            raise HttpError(
                503,
                f"stream limit of {self.config.max_concurrent_streams} reached",
                headers={"Retry-After": f"{self.config.retry_after:g}"},
            )
        upgrade = request.headers.get("upgrade", "").lower()
        self._streams_active += 1
        self.metrics.counter("http_streams_total").inc()
        self.metrics.gauge("http_streams_active").set(self._streams_active)
        try:
            if upgrade == "websocket":
                await self._stream_websocket(request, reader, writer, log, from_seq)
                return 101, False  # a closed websocket never reverts to HTTP
            status = await self._stream_ndjson(request, writer, log, from_seq)
            return status, request.keep_alive
        finally:
            self._streams_active -= 1
            self.metrics.gauge("http_streams_active").set(self._streams_active)

    async def _stream_ndjson(
        self, request: HttpRequest, writer, log, from_seq: int
    ) -> int:
        writer.write(
            response_head(
                200,
                {
                    "Content-Type": "application/x-ndjson; charset=utf-8",
                    "Transfer-Encoding": "chunked",
                    "Cache-Control": "no-store",
                    "Connection": "keep-alive" if request.keep_alive else "close",
                },
            )
        )
        async for event in log.subscribe(from_seq):
            write_chunk(writer, (event.to_json() + "\n").encode("utf-8"))
            self.metrics.counter("http_events_streamed_total").inc()
            await writer.drain()
        end_chunks(writer)
        await writer.drain()
        return 200

    async def _stream_websocket(
        self, request: HttpRequest, reader, writer, log, from_seq: int
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        version = request.headers.get("sec-websocket-version")
        if "upgrade" not in request.headers.get("connection", "").lower() or not key:
            raise HttpError(400, "malformed websocket upgrade request")
        if version != "13":
            raise HttpError(
                426,
                f"unsupported websocket version {version!r}",
                headers={"Sec-WebSocket-Version": "13"},
            )
        writer.write(
            response_head(
                101,
                {
                    "Upgrade": "websocket",
                    "Connection": "Upgrade",
                    "Sec-WebSocket-Accept": ws.accept_key(key),
                },
            )
        )
        await writer.drain()
        self.metrics.counter("http_ws_upgrades_total").inc()

        client_gone = asyncio.Event()

        async def read_client() -> None:
            # Serve pings and notice closes; data frames are ignored.
            try:
                while True:
                    opcode, payload = await ws.read_frame(
                        reader, max_payload=self.config.max_body_bytes
                    )
                    if opcode == ws.OP_PING:
                        writer.write(ws.encode_frame(ws.OP_PONG, payload))
                        await writer.drain()
                    elif opcode == ws.OP_CLOSE:
                        return
            except (
                ws.WebSocketError,
                asyncio.IncompleteReadError,
                ConnectionError,
            ):
                return
            finally:
                client_gone.set()

        reader_task = asyncio.create_task(read_client())
        try:
            async for event in log.subscribe(from_seq):
                if client_gone.is_set():
                    return
                writer.write(
                    ws.encode_frame(ws.OP_TEXT, event.to_json().encode("utf-8"))
                )
                self.metrics.counter("http_events_streamed_total").inc()
                await writer.drain()
            writer.write(ws.encode_frame(ws.OP_CLOSE, ws.encode_close(1000)))
            await writer.drain()
            # Give the close handshake a moment to complete; a stubborn
            # client just gets its TCP stream torn down.
            try:
                await asyncio.wait_for(asyncio.shield(reader_task), timeout=1.0)
            except asyncio.TimeoutError:
                pass
        finally:
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
