"""Batch manifest: a JSON file describing a set of mosaic jobs.

Schema::

    {
      "defaults": { <any JobSpec field>: value, ... },     # optional
      "jobs": [
        { "input": "portrait", "target": "sailboat",
          "output": "j0.png", "priority": 2, "timeout": 30.0, ... },
        ...
      ]
    }

Each job entry is merged over ``defaults`` and validated against the
:class:`~repro.service.jobs.JobSpec` fields — unknown keys are an error,
not silently ignored, so typos in a manifest fail fast.  Jobs without an
explicit ``seed`` get deterministic per-job seeds derived from the batch
seed via :func:`repro.utils.rng.spawn_seeds`, which keeps a whole batch
reproducible regardless of worker count or scheduling order.
"""

from __future__ import annotations

import json
import os

from repro.exceptions import JobError
from repro.service.jobs import JobSpec
from repro.utils.rng import spawn_seeds

__all__ = ["load_manifest", "parse_manifest"]


def load_manifest(path: str | os.PathLike, seed: int | None = 0) -> list[JobSpec]:
    """Read and parse a manifest file; see :func:`parse_manifest`."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise JobError(f"cannot read manifest {os.fspath(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise JobError(f"manifest {os.fspath(path)!r} is not valid JSON: {exc}") from exc
    return parse_manifest(data, seed=seed)


def parse_manifest(data: object, seed: int | None = 0) -> list[JobSpec]:
    """Validate manifest ``data`` and return its jobs as :class:`JobSpec`.

    ``seed`` is the batch seed used to derive per-job seeds for entries
    that don't set their own.
    """
    if not isinstance(data, dict):
        raise JobError(f"manifest must be a JSON object, got {type(data).__name__}")
    unknown_top = set(data) - {"defaults", "jobs"}
    if unknown_top:
        raise JobError(f"unknown manifest keys: {sorted(unknown_top)}")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise JobError("manifest 'defaults' must be an object")
    entries = data.get("jobs")
    if not isinstance(entries, list) or not entries:
        raise JobError("manifest needs a non-empty 'jobs' array")

    allowed = JobSpec.field_names()
    job_seeds = spawn_seeds(seed, len(entries))
    specs: list[JobSpec] = []
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise JobError(f"jobs[{position}] must be an object")
        merged = {**defaults, **entry}
        unknown = set(merged) - allowed
        if unknown:
            raise JobError(
                f"jobs[{position}] has unknown keys {sorted(unknown)} "
                f"(allowed: {sorted(allowed)})"
            )
        merged.setdefault("name", f"job{position}")
        if merged.get("seed") is None:
            merged["seed"] = job_seeds[position]
        try:
            specs.append(JobSpec(**merged))
        except (TypeError, JobError) as exc:
            raise JobError(f"jobs[{position}] is invalid: {exc}") from exc
    return specs
