"""Micro-batching rendezvous for cross-job Step-2 launches.

The worker pool runs one job per supervisor, so two concurrent jobs that
could share a Step-2 launch would normally never meet.  The
:class:`Step2BatchCoordinator` is the meeting point: job submission
*announces* a batch fingerprint (:func:`step2_fingerprint` — the
coalescing key of :mod:`repro.cost.batch`), and when a job's pipeline
reaches Step 2 it *joins* the rendezvous for that fingerprint.  The
first joiner becomes the leader and holds the batch open for a bounded
window; followers with the same fingerprint attach their work to it.
The window closes early the moment every announced peer has arrived (a
solo job never waits), or when the batch is full, or when the window
elapses — then the leader runs one
:class:`~repro.cost.batch.BatchedErrorMatrixBuilder` launch for the
whole group and every joiner gets its own slice back, bit-identical to
the solo path.

Design constraints this shape satisfies:

* **no pool restructuring** — supervisors still own one job end to end,
  so Step-3 concurrency, retries, timeouts and cancellation are
  untouched; only the Step-2 call site synchronises;
* **bounded added latency** — a joiner waits at most ``window_s`` beyond
  its own launch time, and only when peers were actually announced;
* **failure isolation** — a builder error fails every job in that one
  group (their supervisors retry independently); a *joiner* that never
  arrives (cache hit, earlier failure) costs at most one window, because
  announcements are withdrawn when jobs reach a terminal state.

Thread executors only: the live coordinator (locks + conditions) cannot
cross a process boundary, so :class:`~repro.service.workers.
MosaicJobRunner` drops it on pickling and process workers fall back to
solo launches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.cost.batch import BatchedErrorMatrixBuilder, BatchJob, batch_fingerprint
from repro.exceptions import ValidationError
from repro.service.jobs import JobSpec
from repro.service.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_BATCH_WINDOW",
    "DEFAULT_MAX_BATCH",
    "Step2BatchCoordinator",
    "step2_fingerprint",
]

#: How long a leader holds the batch open for announced peers (seconds).
DEFAULT_BATCH_WINDOW = 0.05

#: Jobs per batched launch before the window closes early.
DEFAULT_MAX_BATCH = 8


def step2_fingerprint(spec: JobSpec, default_backend: str | None = None) -> str | None:
    """The batch-coalescing key of one job spec, or ``None`` if the job
    cannot batch.

    Must equal the fingerprint the generator derives at Step-2 time from
    the actual tile stacks; both sides call
    :func:`repro.cost.batch.batch_fingerprint` with spec-derived
    numbers.  Library jobs (different Step-2 shape) and grids of zero
    tiles are not batchable.
    """
    if spec.kind != "mosaic":
        return None
    per_side = spec.size // spec.tile_size
    if per_side < 1:
        return None
    return batch_fingerprint(
        grid_tiles=per_side * per_side,
        tile_shape=(spec.tile_size, spec.tile_size),
        metric=spec.metric,
        backend=spec.resolve_backend(default_backend),
        top_k=spec.shortlist_top_k,
        sketch=spec.sketch,
    )


@dataclass
class _Group:
    """One rendezvous generation: the jobs that will share a launch."""

    jobs: list[BatchJob] = field(default_factory=list)
    metric: str = "sad"
    backend: str = "numpy"
    opened_at: float = 0.0
    sealed: bool = False
    results: list | None = None
    error: BaseException | None = None


class Step2BatchCoordinator:
    """Leader/follower rendezvous forming same-fingerprint Step-2 batches.

    Parameters
    ----------
    window_s:
        Upper bound on how long a leader waits for announced peers.
    max_batch:
        Jobs per launch; a full batch seals immediately.
    metrics:
        Optional :class:`MetricsRegistry` receiving the batch-size /
        window-wait / launch-latency instruments and batch counters.
    """

    def __init__(
        self,
        *,
        window_s: float = DEFAULT_BATCH_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window_s < 0:
            raise ValidationError(f"window_s must be >= 0, got {window_s}")
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self.metrics = metrics
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._groups: dict[str, _Group] = {}
        self._expected: dict[str, int] = {}

    # -- announcements (worker pool) ------------------------------------
    def announce(self, fingerprint: str) -> None:
        """Declare that one job with this fingerprint is in the system.

        The leader uses the announcement count to close its window early
        once every live peer has joined — a solo job never waits.
        """
        with self._lock:
            self._expected[fingerprint] = self._expected.get(fingerprint, 0) + 1
            self._cond.notify_all()

    def depart(self, fingerprint: str) -> None:
        """Withdraw one announcement (job reached a terminal state)."""
        with self._lock:
            count = self._expected.get(fingerprint, 0) - 1
            if count > 0:
                self._expected[fingerprint] = count
            else:
                self._expected.pop(fingerprint, None)
            self._cond.notify_all()

    # -- the rendezvous (generator Step-2 call site) --------------------
    def compute(
        self, fingerprint: str, job: BatchJob, *, metric: str, backend: str
    ):
        """Join the batch for ``fingerprint``; returns ``(result, size)``.

        Blocks until the group launches; ``result`` is the
        :class:`~repro.types.ErrorMatrix` (``job.top_k == 0``) or
        :class:`~repro.cost.sparse.SparseErrorMatrix` slice for ``job``,
        bit-identical to the solo builders, and ``size`` is how many jobs
        shared the launch.  Builder exceptions propagate to every member
        of the group.
        """
        with self._lock:
            group = self._groups.get(fingerprint)
            if group is None or group.sealed:
                group = _Group(
                    metric=metric, backend=backend, opened_at=time.perf_counter()
                )
                self._groups[fingerprint] = group
            index = len(group.jobs)
            group.jobs.append(job)
            leader = index == 0
            if not leader:
                self._cond.notify_all()  # wake the leader: a peer arrived
                while not group.sealed or (
                    group.results is None and group.error is None
                ):
                    self._cond.wait()
                return self._unpack(group, index)
            deadline = group.opened_at + self.window_s
            while (
                len(group.jobs) < self.max_batch
                and len(group.jobs) < self._expected.get(fingerprint, 1)
            ):
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            group.sealed = True
            if self._groups.get(fingerprint) is group:
                del self._groups[fingerprint]
            jobs = list(group.jobs)
            waited = time.perf_counter() - group.opened_at
        try:
            started = time.perf_counter()
            builder = BatchedErrorMatrixBuilder(
                group.metric, backend=group.backend
            )
            if jobs[0].top_k > 0:
                results = builder.compute_sparse(jobs)
            else:
                results = builder.compute_dense(jobs)
            launch_seconds = time.perf_counter() - started
        except BaseException as exc:
            with self._lock:
                group.error = exc
                self._cond.notify_all()
            raise
        self._observe(len(jobs), waited, launch_seconds)
        with self._lock:
            group.results = results
            self._cond.notify_all()
        return self._unpack(group, 0)

    @staticmethod
    def _unpack(group: _Group, index: int):
        if group.error is not None:
            raise group.error
        assert group.results is not None
        return group.results[index], len(group.jobs)

    def _observe(self, size: int, waited: float, launch_seconds: float) -> None:
        if self.metrics is None:
            return
        self.metrics.counter("step2_batches_total", "batched Step-2 launches").inc()
        self.metrics.counter(
            "step2_batched_jobs_total", "jobs served by batched launches"
        ).inc(size)
        self.metrics.histogram(
            "step2_batch_size",
            "jobs per batched Step-2 launch",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16),
        ).observe(float(size))
        self.metrics.histogram(
            "step2_batch_window_wait_seconds",
            "leader wait from batch open to seal",
        ).observe(waited)
        self.metrics.histogram(
            "step2_batch_launch_seconds",
            "batched Step-2 builder wall time",
        ).observe(launch_seconds)
