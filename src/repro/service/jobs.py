"""Job model for the mosaic job service.

A :class:`JobSpec` is an immutable description of one mosaic request —
what to render, with which pipeline knobs, and with which scheduling
parameters (priority, timeout, retries).  A :class:`JobRecord` is the
mutable execution-side twin: it tracks the state machine

    ``PENDING -> RUNNING -> DONE | FAILED | CANCELLED``

(with ``RUNNING -> PENDING`` on a retried attempt), timestamps for the
queue-wait/latency metrics, and the final :class:`~repro.mosaic.result.
MosaicResult` when the job succeeds.

Job IDs are deterministic: the same spec submitted at the same batch
position always yields the same ID, so re-running a manifest produces
stable artefact names and logs that diff cleanly.
"""

from __future__ import annotations

import enum
import hashlib
import json
import threading
import time
from dataclasses import asdict, dataclass, field, fields

from repro.exceptions import JobError, ValidationError
from repro.mosaic.config import MosaicConfig

__all__ = ["JOB_KINDS", "JobState", "JobSpec", "JobRecord"]

#: Workloads the service can run: the paper's rearrangement pipeline
#: (``"mosaic"``) and the many-to-one tile-library engine (``"library"``).
JOB_KINDS = ("mosaic", "library")


class JobState(str, enum.Enum):
    """Lifecycle states of a submitted job."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"


#: Legal state transitions (RUNNING -> PENDING happens on a retry).
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.PENDING: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.PENDING}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass(frozen=True)
class JobSpec:
    """One mosaic request plus its scheduling parameters.

    ``input`` and ``target`` are file paths or standard-image names,
    resolved lazily by the runner so specs stay cheap and picklable
    (process executors ship them to workers).  For ``kind="library"``,
    ``input`` is instead the tile library: a directory of candidate
    images or a saved ``.npz`` :class:`~repro.library.index.LibraryIndex`.

    Attributes
    ----------
    kind:
        One of :data:`JOB_KINDS` — which pipeline the runner executes.
    backend:
        Array backend for the job's hot paths (``"numpy"``, ``"cupy"``,
        ``"auto"``); ``None`` defers to the runner's default, so one
        ``--backend`` flag on the service CLI steers every job that
        doesn't pin its own.
    top_k, clusters, repetition_penalty, assigner, refine_iters,
    color_adjust, out_size, thumb_size:
        Library-pipeline knobs (see
        :class:`~repro.library.config.LibraryConfig`); ignored by
        ``kind="mosaic"`` jobs.
    shortlist_top_k, sketch:
        Sparse Step-2 knobs for ``kind="mosaic"`` jobs (see
        :class:`~repro.mosaic.config.MosaicConfig`): ``shortlist_top_k``
        candidate positions per input tile, shortlisted by ``sketch``
        features and exact-scored.  ``0`` keeps the dense path.  The
        job's ``seed`` doubles as the shortlister's k-means seed, so a
        seeded sparse job is bit-reproducible.  Ignored by
        ``kind="library"`` jobs (which have their own ``top_k``).
    priority:
        Higher runs first; ties are FIFO.
    timeout:
        Per-attempt wall-clock budget in seconds (``None`` = unlimited).
    max_retries:
        Extra attempts after the first failure/timeout (``None`` defers
        to the pool default).
    seed:
        Seed for any randomised pipeline component; batch submission
        derives per-job seeds from the manifest seed via
        :func:`repro.utils.rng.spawn_seeds` when unset.
    """

    input: str
    target: str
    name: str = ""
    output: str | None = None
    kind: str = "mosaic"
    size: int = 64
    tile_size: int = 16
    algorithm: str = "parallel"
    metric: str = "sad"
    solver: str = "scipy"
    histogram_match: bool = True
    backend: str | None = None
    top_k: int = 16
    clusters: int = 0
    repetition_penalty: float = 0.0
    assigner: str = "greedy"
    refine_iters: int = 0
    color_adjust: str = "none"
    out_size: int | None = None
    thumb_size: int = 32
    shortlist_top_k: int = 0
    sketch: str = "mean"
    priority: int = 0
    timeout: float | None = None
    max_retries: int | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        if not self.input or not self.target:
            raise JobError("job spec needs non-empty 'input' and 'target'")
        if self.kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {self.kind!r} (use one of {JOB_KINDS})"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise JobError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries is not None and self.max_retries < 0:
            raise JobError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backend is not None:
            from repro.accel.backend import backend_names

            if self.backend not in backend_names():
                raise JobError(
                    f"unknown backend {self.backend!r} "
                    f"(use one of {backend_names()})"
                )
        if self.kind == "mosaic":
            # Materialising the MosaicConfig runs its full validation
            # (shortlist/sketch combinations included), so bad pipeline
            # knobs surface at submit time as JobError.
            try:
                self.to_config()
            except ValidationError as exc:
                raise JobError(str(exc)) from exc
        if self.kind == "library":
            # Materialising the LibraryConfig runs its full validation;
            # bad library knobs surface at submit time as JobError, not
            # deep inside a worker attempt.
            try:
                self.to_library_config()
            except ValidationError as exc:
                raise JobError(str(exc)) from exc

    def job_id(self, index: int = 0) -> str:
        """Deterministic ID: content hash of the spec plus batch position."""
        payload = json.dumps(
            {**asdict(self), "index": index}, sort_keys=True, default=str
        )
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
        return f"job-{digest}"

    def resolve_backend(self, default_backend: str | None = None) -> str:
        """Array backend after falling back to the runner default."""
        backend = self.backend if self.backend is not None else default_backend
        return backend if backend is not None else "numpy"

    def to_config(self, default_backend: str | None = None) -> MosaicConfig:
        """The :class:`MosaicConfig` this spec describes."""
        return MosaicConfig(
            tile_size=self.tile_size,
            algorithm=self.algorithm,
            metric=self.metric,
            solver=self.solver,
            histogram_match=self.histogram_match,
            array_backend=self.resolve_backend(default_backend),
            shortlist_top_k=self.shortlist_top_k,
            sketch=self.sketch,
            shortlist_seed=self.seed,
        )

    def to_library_config(self, default_backend: str | None = None):
        """The :class:`~repro.library.config.LibraryConfig` this spec
        describes (``kind="library"`` jobs)."""
        from repro.library.config import LibraryConfig

        return LibraryConfig(
            tile_size=self.tile_size,
            thumb_size=self.thumb_size,
            metric=self.metric,
            top_k=self.top_k,
            clusters=self.clusters,
            repetition_penalty=self.repetition_penalty,
            assigner=self.assigner,
            refine_iters=self.refine_iters,
            color_adjust=self.color_adjust,
            out_size=self.out_size,
            array_backend=self.resolve_backend(default_backend),
        )

    @classmethod
    def field_names(cls) -> frozenset[str]:
        """Names accepted in a manifest job entry."""
        return frozenset(f.name for f in fields(cls))


@dataclass
class JobRecord:
    """Mutable execution state of one submitted job.

    All mutation goes through the helper methods, which enforce the state
    machine and are safe to call from worker threads.
    """

    spec: JobSpec
    job_id: str
    state: JobState = JobState.PENDING
    attempts: int = 0
    error: str | None = None
    result: object | None = None  # MosaicResult when DONE (kept opaque here)
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: float | None = None
    finished_at: float | None = None

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._observer = None
        self.cancel_event = threading.Event()

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        state.pop("_observer", None)
        state.pop("cancel_event", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._observer = None
        self.cancel_event = threading.Event()

    def set_observer(self, observer) -> None:
        """Attach ``observer(record, kind, payload)``, the event hook.

        The worker pool notifies it on every state transition
        (``kind="state"``) and retry (``kind="retry"``); context-aware
        runners stream progress through it (``"phase"``, ``"sweep"``).
        The streaming gateway is the intended consumer — it must be set
        *before* the record is queued so no transition is missed, which
        is why :meth:`WorkerPool.submit` takes it as a parameter.
        """
        self._observer = observer

    def notify(self, kind: str, payload: dict) -> None:
        """Forward one event to the attached observer (no-op without one)."""
        observer = self._observer
        if observer is not None:
            observer(self, kind, payload)

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the lifecycle graph."""
        with self._lock:
            if new_state not in _TRANSITIONS[self.state]:
                raise JobError(
                    f"job {self.job_id}: illegal transition "
                    f"{self.state.value} -> {new_state.value}"
                )
            self.state = new_state
            now = time.perf_counter()
            if new_state is JobState.RUNNING and self.started_at is None:
                self.started_at = now
            if new_state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
                self.finished_at = now
            # Notify while still holding the lock: concurrent transitions
            # (supervisor vs. a queue-side cancel) must deliver their
            # events in commit order, or a stream could see a terminal
            # state followed by RUNNING.
            payload = {"state": new_state.value, "attempts": self.attempts}
            if new_state is JobState.DONE:
                # Ship the bit-identity witness in the terminal event, so
                # any front (including a coordinator replicating another
                # node's log) can prove which artifact this run produced.
                digest = self.result_digest()
                if digest is not None:
                    payload["result_digest"] = digest
            self.notify("state", payload)

    @property
    def queue_wait(self) -> float | None:
        """Seconds between submission and first run (``None`` if never ran)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float | None:
        """Seconds between submission and terminal state."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def result_digest(self) -> str | None:
        """SHA-256 over the result's image and permutation bytes.

        The digest is the cross-node bit-identity witness: two runs of
        the same spec on different machines must produce the same value.
        Memoized — the result is immutable once the job is terminal.

        ``None`` when there is no result or it has no image (custom
        runner payloads).
        """
        cached = getattr(self, "_result_digest", None)
        if cached is not None:
            return cached
        result = self.result
        image = getattr(result, "image", None)
        if image is None or not hasattr(image, "tobytes"):
            return None
        hasher = hashlib.sha256()
        hasher.update(repr(getattr(image, "shape", None)).encode())
        hasher.update(image.tobytes())
        permutation = getattr(result, "permutation", None)
        if permutation is not None and hasattr(permutation, "tobytes"):
            hasher.update(permutation.tobytes())
        digest = hasher.hexdigest()
        self._result_digest = digest
        return digest

    def summary(self) -> dict:
        """JSON-ready snapshot for the metrics report."""
        out = {
            "job_id": self.job_id,
            "name": self.spec.name or self.job_id,
            "state": self.state.value,
            "attempts": self.attempts,
            "priority": self.spec.priority,
            "queue_wait_s": self.queue_wait,
            "latency_s": self.latency,
            "error": self.error,
        }
        result = self.result
        if result is not None and hasattr(result, "total_error"):
            # Custom runners may return any payload; only a MosaicResult
            # (or lookalike) contributes the mosaic fields.
            out["total_error"] = int(result.total_error)
            out["sweeps"] = result.sweeps
            out["timings"] = result.timings.as_dict()
            digest = self.result_digest()
            if digest is not None:
                out["result_digest"] = digest
            meta = result.meta if isinstance(result.meta, dict) else {}
            if isinstance(meta.get("cache"), dict):
                # Per-artifact hit/miss outcomes; recorded in the worker
                # process, so a report over process executors still shows
                # which steps were served from the shared disk store.
                out["cache"] = dict(meta["cache"])
            if isinstance(meta.get("library"), dict):
                # Library-pipeline stats (ingest hit-rate, shortlist and
                # reuse profile) — same worker-side provenance as above.
                out["library"] = dict(meta["library"])
            if isinstance(meta.get("shortlist"), dict):
                # Sparse Step-2 stats — emitted by both job kinds with
                # the same keys (``pairs_evaluated``, ``fallback``), so
                # reports aggregate shortlist work uniformly.
                out["shortlist"] = dict(meta["shortlist"])
            if isinstance(meta.get("batch"), dict):
                # Cross-job batched Step-2 participation (launch size and
                # coalescing fingerprint) — worker-side provenance, like
                # the cache/shortlist blocks above.
                out["batch"] = dict(meta["batch"])
        return out
