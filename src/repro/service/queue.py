"""Thread-safe in-process priority queue of job records.

Ordering is (priority descending, submission order ascending): a higher
``JobSpec.priority`` pops first, ties are FIFO.  Cancellation is lazy —
:meth:`JobQueue.cancel` flips the record to ``CANCELLED`` immediately and
consumers discard cancelled entries on pop, so cancel is O(1) and never
blocks the workers.

The queue supports a two-phase shutdown: :meth:`close` stops new pushes;
with ``drain=True`` (the default) blocked consumers keep receiving the
remaining records until the queue is empty, with ``drain=False`` pending
records are cancelled and consumers wake immediately.
"""

from __future__ import annotations

import heapq
import itertools
import threading

from repro.exceptions import JobError
from repro.service.jobs import JobRecord, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """Priority queue of :class:`JobRecord`, safe for many producers/consumers."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, JobRecord]] = []
        self._records: dict[str, JobRecord] = {}
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    def push(self, record: JobRecord) -> None:
        """Enqueue a PENDING record; raises :class:`JobError` when closed."""
        with self._not_empty:
            if self._closed:
                raise JobError("queue is closed")
            if record.job_id in self._records:
                raise JobError(f"duplicate job id {record.job_id!r}")
            heapq.heappush(
                self._heap, (-record.spec.priority, next(self._counter), record)
            )
            self._records[record.job_id] = record
            self._not_empty.notify()

    def pop(self, timeout: float | None = None) -> JobRecord | None:
        """Dequeue the next runnable record.

        Blocks until a record is available, the queue is closed and empty,
        or ``timeout`` elapses; returns ``None`` in the latter two cases.
        Cancelled records are skipped silently.
        """
        with self._not_empty:
            while True:
                while self._heap:
                    _, _, record = heapq.heappop(self._heap)
                    self._records.pop(record.job_id, None)
                    if record.state is JobState.CANCELLED:
                        continue
                    return record
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def cancel(self, job_id: str) -> bool:
        """Cancel a pending job; returns ``False`` if unknown or already popped."""
        with self._lock:
            record = self._records.pop(job_id, None)
            if record is None:
                return False
            # Transition while still holding the lock: pop() checks the
            # state under this same lock, so a record is either cancelled
            # before a consumer can claim it or already popped (and this
            # returns False, letting the pool fall back to cooperative
            # in-flight cancellation).
            record.transition(JobState.CANCELLED)
            return True

    def close(self, drain: bool = True) -> int:
        """Stop accepting pushes; with ``drain=False`` cancel everything
        still queued.  Returns the number of records cancelled."""
        with self._not_empty:
            self._closed = True
            cancelled = 0
            if not drain:
                for record in list(self._records.values()):
                    record.transition(JobState.CANCELLED)
                    cancelled += 1
                self._records.clear()
                self._heap.clear()
            self._not_empty.notify_all()
            return cancelled

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        """Number of queued (non-cancelled) records."""
        with self._lock:
            return len(self._records)
