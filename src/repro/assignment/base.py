"""Solver abstraction and registry for the assignment problem.

All solvers consume the library's canonical error matrix ``E[u, v]``
(input tile ``u`` at target position ``v``) and return an
:class:`AssignmentResult` whose ``permutation`` follows the library
convention ``p[v] = u``, so ``total = sum_v E[p[v], v]``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ValidationError
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.validation import check_error_matrix, check_permutation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cost.sparse import SparseErrorMatrix

__all__ = ["AssignmentResult", "AssignmentSolver", "register_solver", "get_solver"]


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of one assignment solve.

    Attributes
    ----------
    permutation:
        ``p[v] = u``: input tile placed at each target position.
    total:
        Objective value ``sum_v E[p[v], v]``.
    optimal:
        Whether the solver guarantees optimality (greedy sets ``False``).
    dual_row, dual_col:
        LP dual potentials when the solver produces them
        (``dual_row[u] + dual_col[v] <= E[u, v]`` with equality on matched
        edges); ``None`` otherwise.  See
        :func:`repro.assignment.validation.verify_optimality_certificate`.
    iterations:
        Solver-specific work counter (augmentations, auction rounds, ...).
    """

    permutation: PermutationArray
    total: int
    optimal: bool
    dual_row: np.ndarray | None = None
    dual_col: np.ndarray | None = None
    iterations: int = 0
    meta: dict = field(default_factory=dict)


class AssignmentSolver(ABC):
    """Base class: validates input, delegates to ``_solve``."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Whether the algorithm guarantees a minimum-weight perfect matching.
    exact: bool = True

    def solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        """Solve the assignment problem for ``matrix``.

        Validates the matrix, runs the concrete algorithm, then validates
        the returned permutation and recomputes the objective from scratch
        so a buggy solver can never report an inconsistent total.
        """
        matrix = check_error_matrix(matrix)
        result = self._solve(matrix)
        perm = check_permutation(result.permutation, matrix.shape[0])
        true_total = int(matrix[perm, np.arange(matrix.shape[0])].sum())
        if true_total != result.total:
            raise ValidationError(
                f"solver {self.name!r} reported total {result.total}, "
                f"actual {true_total}"
            )
        return result

    @abstractmethod
    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        """Concrete algorithm; ``matrix`` is a validated ``int64`` square."""

    def solve_sparse(self, sparse: "SparseErrorMatrix") -> AssignmentResult:
        """Solve over a shortlisted candidate set.

        The default implementation densifies with the sparse matrix's
        sentinel (a cost strictly worse than every shortlisted pair) and
        runs the ordinary dense algorithm: any solver prefers candidate
        edges wherever a perfect matching over them exists, and rows the
        shortlist cannot serve fall back to sentinel edges — the dense
        fallback the sparse pipeline requires for infeasible rows.
        Fallback edges are then re-scored with the metric's **exact**
        cost (via the features the builder retained), so the reported
        total is the true Eq. (2) value, never a sentinel sum; the
        count lands in ``meta["sparse"]["fallback"]``.

        A complete sparse matrix (``top_k == S``) densifies to the exact
        dense matrix, making this bit-identical to :meth:`solve`.
        ``optimal`` is ``True`` only in that complete case — on a
        restricted edge set even an exact solver only certifies the
        restriction, so duals are dropped and optimality is not claimed.
        """
        sparse_meta = {
            "top_k": sparse.top_k,
            "complete": sparse.complete,
            "pairs_evaluated": int(sparse.meta.get("pairs_evaluated", 0)),
        }
        if sparse.complete:
            result = self.solve(sparse.to_dense())
            return replace(
                result,
                meta={**result.meta, "sparse": {**sparse_meta, "fallback": 0}},
            )
        filled = sparse.to_dense()
        result = self.solve(filled)
        perm = result.permutation
        n = sparse.size
        cols = np.arange(n, dtype=np.intp)
        shortlisted = sparse.mask()[perm, cols]
        fallback = int(n - shortlisted.sum())
        total = int(filled[perm, cols][shortlisted].sum())
        exact_fallback = True
        if fallback:
            try:
                total += int(
                    sparse.score_pairs(perm[~shortlisted], cols[~shortlisted])
                    .sum(dtype=np.int64)
                )
            except ValidationError:
                # Feature-less sparse matrix (from_dense): the sentinel
                # sum is the best available bound; flagged in meta.
                total += int(filled[perm, cols][~shortlisted].sum())
                exact_fallback = False
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=False,
            iterations=result.iterations,
            meta={
                **result.meta,
                "sparse": {
                    **sparse_meta,
                    "fallback": fallback,
                    "exact_fallback": exact_fallback,
                },
            },
        )


_REGISTRY: dict[str, type[AssignmentSolver]] = {}


def register_solver(cls: type[AssignmentSolver]) -> type[AssignmentSolver]:
    """Class decorator: register a solver under its ``name``."""
    if not issubclass(cls, AssignmentSolver):
        raise ValidationError(f"{cls!r} is not an AssignmentSolver subclass")
    if cls.name in _REGISTRY:
        raise ValidationError(f"duplicate solver name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_solver(name: str | AssignmentSolver, **kwargs: object) -> AssignmentSolver:
    """Resolve a solver by registry name (or pass an instance through)."""
    if isinstance(name, AssignmentSolver):
        return name
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown solver {name!r} (available: {sorted(_REGISTRY)})"
        )
    return cls(**kwargs)  # type: ignore[call-arg]


def available_solvers() -> list[str]:
    """Names of all registered solvers."""
    return sorted(_REGISTRY)
