"""Solver abstraction and registry for the assignment problem.

All solvers consume the library's canonical error matrix ``E[u, v]``
(input tile ``u`` at target position ``v``) and return an
:class:`AssignmentResult` whose ``permutation`` follows the library
convention ``p[v] = u``, so ``total = sum_v E[p[v], v]``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["AssignmentResult", "AssignmentSolver", "register_solver", "get_solver"]


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of one assignment solve.

    Attributes
    ----------
    permutation:
        ``p[v] = u``: input tile placed at each target position.
    total:
        Objective value ``sum_v E[p[v], v]``.
    optimal:
        Whether the solver guarantees optimality (greedy sets ``False``).
    dual_row, dual_col:
        LP dual potentials when the solver produces them
        (``dual_row[u] + dual_col[v] <= E[u, v]`` with equality on matched
        edges); ``None`` otherwise.  See
        :func:`repro.assignment.validation.verify_optimality_certificate`.
    iterations:
        Solver-specific work counter (augmentations, auction rounds, ...).
    """

    permutation: PermutationArray
    total: int
    optimal: bool
    dual_row: np.ndarray | None = None
    dual_col: np.ndarray | None = None
    iterations: int = 0
    meta: dict = field(default_factory=dict)


class AssignmentSolver(ABC):
    """Base class: validates input, delegates to ``_solve``."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Whether the algorithm guarantees a minimum-weight perfect matching.
    exact: bool = True

    def solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        """Solve the assignment problem for ``matrix``.

        Validates the matrix, runs the concrete algorithm, then validates
        the returned permutation and recomputes the objective from scratch
        so a buggy solver can never report an inconsistent total.
        """
        matrix = check_error_matrix(matrix)
        result = self._solve(matrix)
        perm = check_permutation(result.permutation, matrix.shape[0])
        true_total = int(matrix[perm, np.arange(matrix.shape[0])].sum())
        if true_total != result.total:
            raise ValidationError(
                f"solver {self.name!r} reported total {result.total}, "
                f"actual {true_total}"
            )
        return result

    @abstractmethod
    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        """Concrete algorithm; ``matrix`` is a validated ``int64`` square."""


_REGISTRY: dict[str, type[AssignmentSolver]] = {}


def register_solver(cls: type[AssignmentSolver]) -> type[AssignmentSolver]:
    """Class decorator: register a solver under its ``name``."""
    if not issubclass(cls, AssignmentSolver):
        raise ValidationError(f"{cls!r} is not an AssignmentSolver subclass")
    if cls.name in _REGISTRY:
        raise ValidationError(f"duplicate solver name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_solver(name: str | AssignmentSolver, **kwargs: object) -> AssignmentSolver:
    """Resolve a solver by registry name (or pass an instance through)."""
    if isinstance(name, AssignmentSolver):
        return name
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown solver {name!r} (available: {sorted(_REGISTRY)})"
        )
    return cls(**kwargs)  # type: ignore[call-arg]


def available_solvers() -> list[str]:
    """Names of all registered solvers."""
    return sorted(_REGISTRY)
