"""Greedy assignment baseline.

Sort all ``S^2`` tile/position pairs by error and accept each pair whose
tile and position are both still free.  O(S^2 log S) and typically within a
few percent of optimal on natural images, but with no guarantee — it is the
"obvious baseline" the exact solvers are judged against in the ablation.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.types import ErrorMatrix

__all__ = ["GreedySolver"]


@register_solver
class GreedySolver(AssignmentSolver):
    """Globally-greedy matching (no optimality guarantee)."""

    name = "greedy"
    exact = False

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        n = matrix.shape[0]
        order = np.argsort(matrix, axis=None, kind="stable")
        rows_free = np.ones(n, dtype=bool)
        cols_free = np.ones(n, dtype=bool)
        perm = np.full(n, -1, dtype=np.intp)
        assigned = 0
        accepted_scans = 0
        for flat in order:
            u, v = divmod(int(flat), n)
            accepted_scans += 1
            if rows_free[u] and cols_free[v]:
                perm[v] = u
                rows_free[u] = False
                cols_free[v] = False
                assigned += 1
                if assigned == n:
                    break
        total = int(matrix[perm, np.arange(n)].sum())
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=False,
            iterations=accepted_scans,
        )
