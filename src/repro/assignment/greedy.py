"""Greedy assignment baseline.

Sort all ``S^2`` tile/position pairs by error and accept each pair whose
tile and position are both still free.  O(S^2 log S) and typically within a
few percent of optimal on natural images, but with no guarantee — it is the
"obvious baseline" the exact solvers are judged against in the ablation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.types import ErrorMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cost.sparse import SparseErrorMatrix

__all__ = ["GreedySolver"]


@register_solver
class GreedySolver(AssignmentSolver):
    """Globally-greedy matching (no optimality guarantee)."""

    name = "greedy"
    exact = False

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        n = matrix.shape[0]
        order = np.argsort(matrix, axis=None, kind="stable")
        rows_free = np.ones(n, dtype=bool)
        cols_free = np.ones(n, dtype=bool)
        perm = np.full(n, -1, dtype=np.intp)
        assigned = 0
        accepted_scans = 0
        for flat in order:
            u, v = divmod(int(flat), n)
            accepted_scans += 1
            if rows_free[u] and cols_free[v]:
                perm[v] = u
                rows_free[u] = False
                cols_free[v] = False
                assigned += 1
                if assigned == n:
                    break
        total = int(matrix[perm, np.arange(n)].sum())
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=False,
            iterations=accepted_scans,
        )

    def solve_sparse(self, sparse: "SparseErrorMatrix") -> AssignmentResult:
        """Native sparse greedy: scan only the ``S * k`` shortlisted pairs.

        The candidate pairs are visited in the same ``(cost, u, v)``
        order the dense argsort produces, so over the shortlisted subset
        the scan accepts exactly the pairs dense greedy would.  Rows and
        positions the shortlist leaves unmatched are resolved by an
        exact-scored greedy pass over the leftover block (the dense
        fallback), and the reported total is the true Eq. (2) value via
        the retained features.  The complete case delegates to the
        densified path for bit-identity with :meth:`solve`.
        """
        if sparse.complete or sparse.features_in is None:
            return super().solve_sparse(sparse)
        n, k = sparse.size, sparse.top_k
        u_flat = np.repeat(np.arange(n, dtype=np.int64), k)
        v_flat = sparse.indices.ravel()
        c_flat = sparse.costs.ravel()
        # lexsort's last key is primary: cost, then row, then position —
        # the dense flat-argsort order restricted to present pairs.
        order = np.lexsort((v_flat, u_flat, c_flat))
        rows_free = np.ones(n, dtype=bool)
        cols_free = np.ones(n, dtype=bool)
        perm = np.full(n, -1, dtype=np.intp)
        assigned = 0
        scans = 0
        for idx in order:
            u = int(u_flat[idx])
            v = int(v_flat[idx])
            scans += 1
            if rows_free[u] and cols_free[v]:
                perm[v] = u
                rows_free[u] = False
                cols_free[v] = False
                assigned += 1
                if assigned == n:
                    break
        fallback_rows = np.flatnonzero(rows_free)
        fallback = int(fallback_rows.size)
        if fallback:
            from repro.cost.base import get_metric

            cols_left = np.flatnonzero(cols_free)
            metric = get_metric(sparse.metric_name)
            block = metric.pairwise(
                sparse.features_in[fallback_rows],
                sparse.features_tg[cols_left],
            )
            m = fallback_rows.size
            for flat in np.argsort(block, axis=None, kind="stable"):
                i, j = divmod(int(flat), cols_left.size)
                scans += 1
                if rows_free[fallback_rows[i]] and cols_free[cols_left[j]]:
                    perm[cols_left[j]] = fallback_rows[i]
                    rows_free[fallback_rows[i]] = False
                    cols_free[cols_left[j]] = False
                    m -= 1
                    if m == 0:
                        break
        return AssignmentResult(
            permutation=perm,
            total=sparse.exact_total(perm),
            optimal=False,
            iterations=scans,
            meta={
                "sparse": {
                    "top_k": k,
                    "complete": False,
                    "pairs_evaluated": int(
                        sparse.meta.get("pairs_evaluated", 0)
                    ),
                    "fallback": fallback,
                    "exact_fallback": True,
                }
            },
        )
