"""Result validation and LP-duality optimality certificates.

For the exact solvers that expose dual potentials (Hungarian, JV), weak
duality gives a machine-checkable proof of optimality:

* feasibility: ``dual_row[u] + dual_col[v] <= E[u, v]`` for every pair;
* tightness:  equality on every matched edge.

Together these imply ``sum(dual_row) + sum(dual_col) = total`` is a lower
bound attained by the matching, i.e. the matching is optimal.  All checks
are exact integer arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentResult
from repro.exceptions import SolverError
from repro.types import ErrorMatrix
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["check_result", "verify_optimality_certificate"]


def check_result(result: AssignmentResult, matrix: ErrorMatrix) -> None:
    """Raise :class:`SolverError` unless ``result`` is internally consistent
    with ``matrix`` (valid permutation, correct total)."""
    matrix = check_error_matrix(matrix)
    perm = check_permutation(result.permutation, matrix.shape[0])
    actual = int(matrix[perm, np.arange(matrix.shape[0])].sum())
    if actual != result.total:
        raise SolverError(
            f"result total {result.total} does not match matrix total {actual}"
        )


def verify_optimality_certificate(result: AssignmentResult, matrix: ErrorMatrix) -> bool:
    """Check the LP-duality certificate carried by ``result``.

    Returns ``True`` when the certificate proves optimality; ``False`` when
    the result carries no duals.  Raises :class:`SolverError` if duals are
    present but infeasible or non-tight — that means the solver is broken,
    not merely uncertified.
    """
    check_result(result, matrix)
    if result.dual_row is None or result.dual_col is None:
        return False
    matrix = check_error_matrix(matrix)
    n = matrix.shape[0]
    dual_row = np.asarray(result.dual_row, dtype=np.int64)
    dual_col = np.asarray(result.dual_col, dtype=np.int64)
    if dual_row.shape != (n,) or dual_col.shape != (n,):
        raise SolverError("dual vectors have wrong shape")
    slack = matrix - dual_row[:, None] - dual_col[None, :]
    if (slack < 0).any():
        worst = int(slack.min())
        raise SolverError(f"dual infeasible: negative reduced cost {worst}")
    perm = result.permutation
    matched_slack = slack[perm, np.arange(n)]
    if (matched_slack != 0).any():
        raise SolverError("matched edges are not tight against the duals")
    bound = int(dual_row.sum() + dual_col.sum())
    if bound != result.total:
        raise SolverError(
            f"dual objective {bound} does not equal primal total {result.total}"
        )
    return True
