"""Reference solver wrapping :func:`scipy.optimize.linear_sum_assignment`.

SciPy's implementation (a C port of a shortest-augmenting-path LAP solver)
is the trusted oracle the from-scratch solvers are differentially tested
against, and the fastest exact option in this environment — it plays the
role Blossom V played for the paper's authors.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.types import ErrorMatrix

__all__ = ["ScipySolver"]


@register_solver
class ScipySolver(AssignmentSolver):
    """Exact solver backed by SciPy (the reproduction's Blossom V stand-in)."""

    name = "scipy"
    exact = True

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        rows, cols = linear_sum_assignment(matrix)
        n = matrix.shape[0]
        perm = np.empty(n, dtype=np.intp)
        perm[cols] = rows  # p[position] = tile
        total = int(matrix[rows, cols].sum())
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=True,
            iterations=n,
        )
