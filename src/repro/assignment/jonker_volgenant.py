"""Jonker-Volgenant (LAPJV) assignment solver.

The classic three-phase dense LAP algorithm (Jonker & Volgenant, 1987):

1. **Column reduction** — scan columns in reverse, set each column
   potential to its column minimum and greedily match unclaimed rows.
2. **Reduction transfer + augmenting row reduction** — two auction-like
   passes that re-match most of the remaining free rows while improving
   column potentials.
3. **Augmentation** — for each still-free row, a Dijkstra-style shortest
   alternating path in the reduced-cost graph, followed by a dual update
   over the scanned ("ready") columns.

Phases 1-2 typically leave only a small fraction of rows for the expensive
phase 3, which is why LAPJV beats plain Hungarian in practice — the
solver ablation bench shows exactly that.  Integer arithmetic throughout.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.types import ErrorMatrix

__all__ = ["JonkerVolgenantSolver"]

_INF = np.iinfo(np.int64).max // 4


@register_solver
class JonkerVolgenantSolver(AssignmentSolver):
    """From-scratch LAPJV with vectorised path relaxation."""

    name = "jv"
    exact = True

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        cost = matrix
        n = cost.shape[0]
        x = np.full(n, -1, dtype=np.intp)  # row -> column
        y = np.full(n, -1, dtype=np.intp)  # column -> row
        v = np.zeros(n, dtype=np.int64)  # column potentials

        free = self._column_reduction(cost, x, y, v)
        free = self._augmenting_row_reduction(cost, x, y, v, free)
        iterations = self._augmentation(cost, x, y, v, free)

        perm = np.empty(n, dtype=np.intp)
        perm[x] = np.arange(n, dtype=np.intp)  # p[column] = row
        total = int(cost[perm, np.arange(n)].sum())
        dual_row = cost[np.arange(n), x] - v[x]
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=True,
            dual_row=dual_row.astype(np.int64),
            dual_col=v.copy(),
            iterations=iterations,
        )

    @staticmethod
    def _column_reduction(
        cost: np.ndarray, x: np.ndarray, y: np.ndarray, v: np.ndarray
    ) -> list[int]:
        """Phase 1 + reduction transfer.  Returns the free-row list."""
        n = cost.shape[0]
        matches = np.zeros(n, dtype=np.int64)
        # Reverse order matters: ties then favour low-numbered columns,
        # reproducing the original algorithm's behaviour.
        for j in range(n - 1, -1, -1):
            i = int(np.argmin(cost[:, j]))
            v[j] = cost[i, j]
            matches[i] += 1
            if matches[i] == 1:
                x[i] = j
                y[j] = i
        free: list[int] = [int(i) for i in np.flatnonzero(matches == 0)]
        # Reduction transfer for rows matched exactly once: push slack from
        # the matched column so another row can afford it later.
        for i in np.flatnonzero(matches == 1):
            j1 = int(x[i])
            reduced = cost[i] - v
            reduced[j1] = _INF
            v[j1] -= int(reduced.min())
        return free

    @staticmethod
    def _augmenting_row_reduction(
        cost: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        v: np.ndarray,
        free: list[int],
    ) -> list[int]:
        """Phase 2: two auction-like passes over the free rows."""
        for _ in range(2):
            if not free:
                break
            pending = list(free)
            next_free: list[int] = []
            k = 0
            while k < len(pending):
                i = pending[k]
                k += 1
                reduced = cost[i] - v
                j1 = int(np.argmin(reduced))
                u1 = int(reduced[j1])
                reduced[j1] = _INF
                j2 = int(np.argmin(reduced))
                u2 = int(reduced[j2])
                i0 = int(y[j1])
                if u1 < u2:
                    v[j1] -= u2 - u1
                elif i0 != -1:
                    # Tie: take the second-best column to avoid thrashing.
                    j1 = j2
                    i0 = int(y[j1])
                x[i] = j1
                y[j1] = i
                if i0 != -1:
                    if u1 < u2:
                        # Displaced row is reconsidered immediately.
                        k -= 1
                        pending[k] = i0
                    else:
                        next_free.append(i0)
            free = next_free
        return free

    @staticmethod
    def _augmentation(
        cost: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        v: np.ndarray,
        free: list[int],
    ) -> int:
        """Phase 3: shortest augmenting paths for the remaining free rows."""
        n = cost.shape[0]
        scans = 0
        for f in free:
            d = (cost[f] - v).astype(np.int64)
            pred = np.full(n, f, dtype=np.intp)
            todo = np.ones(n, dtype=bool)
            ready = np.zeros(n, dtype=bool)
            scan: list[int] = []
            mu = 0
            end_j = -1
            while end_j == -1:
                if not scan:
                    todo_idx = np.flatnonzero(todo)
                    mu = int(d[todo_idx].min())
                    batch = todo_idx[d[todo_idx] == mu]
                    todo[batch] = False
                    unmatched = batch[y[batch] == -1]
                    if unmatched.size:
                        end_j = int(unmatched[0])
                        break
                    scan = [int(j) for j in batch]
                j0 = scan.pop()
                i = int(y[j0])
                ready[j0] = True
                scans += 1
                # Relax every still-unreached column through row i.
                todo_idx = np.flatnonzero(todo)
                if todo_idx.size:
                    slack = mu + (cost[i, todo_idx] - v[todo_idx]) - (
                        cost[i, j0] - v[j0]
                    )
                    better = slack < d[todo_idx]
                    upd = todo_idx[better]
                    d[upd] = slack[better]
                    pred[upd] = i
                    tight = upd[d[upd] == mu]
                    if tight.size:
                        unmatched = tight[y[tight] == -1]
                        if unmatched.size:
                            end_j = int(unmatched[0])
                            break
                        todo[tight] = False
                        scan.extend(int(j) for j in tight)
            # Dual update on the columns whose shortest distance is final.
            ready_idx = np.flatnonzero(ready)
            v[ready_idx] += d[ready_idx] - mu
            # Augment: flip the alternating path back to the free row.
            j = end_j
            while True:
                i = int(pred[j])
                y[j] = i
                j, x[i] = int(x[i]), j
                if i == f:
                    break
        return scans
