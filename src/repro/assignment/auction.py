"""Bertsekas auction algorithm with epsilon-scaling.

A price-based assignment solver: persons (input tiles) bid for objects
(target positions); each bid raises the object's price by the bidder's
margin between its best and second-best value plus ``epsilon``.  With
integer benefits scaled by ``n + 1`` and a final ``epsilon = 1``, the
terminal assignment is exactly optimal (epsilon-complementary slackness
with ``epsilon < 1/n`` in the unscaled problem).

The auction is the natural "parallel-minded" exact solver — bids within a
round are independent — which is why it is included alongside Hungarian/JV
in the solver ablation even though the paper itself ran Blossom V serially.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.exceptions import SolverError, ValidationError
from repro.types import ErrorMatrix

__all__ = ["AuctionSolver"]


@register_solver
class AuctionSolver(AssignmentSolver):
    """Forward auction with geometric epsilon-scaling (exact for int costs)."""

    name = "auction"
    exact = True

    def __init__(self, scaling_factor: int = 5, max_rounds: int = 100_000_000) -> None:
        if scaling_factor < 2:
            raise ValidationError(f"scaling_factor must be >= 2, got {scaling_factor}")
        self.scaling_factor = int(scaling_factor)
        self.max_rounds = int(max_rounds)

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        n = matrix.shape[0]
        # Maximisation form with benefits scaled so final epsilon=1 is exact.
        benefit = (-(matrix.astype(np.int64))) * (n + 1)
        span = int(benefit.max() - benefit.min()) if n > 1 else 1
        epsilon = max(1, span // 2)
        schedule = [epsilon]
        while schedule[-1] > 1:
            schedule.append(max(1, schedule[-1] // self.scaling_factor))
        prices = np.zeros(n, dtype=np.int64)
        person_of = np.full(n, -1, dtype=np.intp)  # object -> person
        object_of = np.full(n, -1, dtype=np.intp)  # person -> object
        rounds = 0
        for eps in schedule:
            # Each scaling phase restarts the assignment but keeps prices.
            person_of.fill(-1)
            object_of.fill(-1)
            unassigned = list(range(n))
            while unassigned:
                rounds += 1
                if rounds > self.max_rounds:
                    raise SolverError(
                        f"auction exceeded {self.max_rounds} bidding rounds"
                    )
                person = unassigned.pop()
                values = benefit[person] - prices
                best = int(np.argmax(values))
                best_value = int(values[best])
                values[best] = np.iinfo(np.int64).min
                second_value = int(values.max()) if n > 1 else best_value - eps
                bid = prices[best] + (best_value - second_value) + eps
                prices[best] = bid
                previous = int(person_of[best])
                person_of[best] = person
                object_of[person] = best
                if previous != -1:
                    object_of[previous] = -1
                    unassigned.append(previous)
        if (object_of == -1).any():
            raise SolverError("auction terminated without a perfect matching")
        perm = np.empty(n, dtype=np.intp)
        perm[object_of] = np.arange(n, dtype=np.intp)
        total = int(matrix[perm, np.arange(n)].sum())
        # Duals in the original (min, unscaled) problem: object prices map to
        # column potentials, person profits to row potentials.
        profits = (benefit[np.arange(n), object_of] - prices[object_of]).astype(np.int64)
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=True,
            dual_row=None,  # epsilon-CS duals are approximate; omit rather than mislead
            dual_col=None,
            iterations=rounds,
            meta={"epsilon_phases": len(schedule), "final_profit_sum": int(profits.sum())},
        )
