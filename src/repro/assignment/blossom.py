"""Blossom-algorithm solver — the paper's own solver family.

Section III: the authors solve the matching with **Blossom V**, a general
(non-bipartite) minimum-weight perfect-matching implementation.  This
module recreates that choice faithfully: it builds the complete bipartite
graph of the paper's Fig. 4 and solves it with NetworkX's blossom-based
``min_weight_matching`` (Galil's variant of Edmonds' algorithm — the same
algorithm family as Blossom V, in pure Python).

On bipartite instances the result coincides with the LAP solvers — which
the tests verify — so this solver exists for fidelity and cross-checking,
not speed: the general-graph machinery pays a heavy constant, exactly the
reason this repository defaults to the assignment solvers (DESIGN.md
substitutions).  Guarded to moderate ``S`` accordingly.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.exceptions import SolverError, ValidationError
from repro.types import ErrorMatrix

__all__ = ["BlossomSolver"]


@register_solver
class BlossomSolver(AssignmentSolver):
    """Min-weight perfect matching via Edmonds' blossom algorithm."""

    name = "blossom"
    exact = True

    def __init__(self, size_limit: int = 512) -> None:
        if size_limit < 1:
            raise ValidationError(f"size_limit must be >= 1, got {size_limit}")
        self.size_limit = int(size_limit)

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        n = matrix.shape[0]
        if n > self.size_limit:
            raise ValidationError(
                f"blossom solver limited to S <= {self.size_limit} (pure-"
                f"Python general matching), got {n}; use 'jv' or 'scipy'"
            )
        # The paper's Fig. 4 graph: left vertices 0..n-1 are input tiles,
        # right vertices n..2n-1 are target positions.
        graph = nx.Graph()
        graph.add_nodes_from(range(2 * n))
        for u in range(n):
            row = matrix[u]
            for v in range(n):
                graph.add_edge(u, n + v, weight=int(row[v]))
        matching = nx.min_weight_matching(graph)
        if len(matching) != n:
            raise SolverError(
                f"blossom matching has {len(matching)} edges, expected {n}"
            )
        perm = np.full(n, -1, dtype=np.intp)
        for a, b in matching:
            tile, pos = (a, b - n) if a < n else (b, a - n)
            if not (0 <= tile < n and 0 <= pos < n):
                raise SolverError(f"matching edge ({a}, {b}) crosses partitions")
            perm[pos] = tile
        total = int(matrix[perm, np.arange(n)].sum())
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=True,
            iterations=n,
        )
