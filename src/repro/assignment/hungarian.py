"""Kuhn-Munkres (Hungarian) algorithm, O(S^3).

This is the solver family the paper cites first (refs [11], [12]).  The
implementation is the modern potentials-plus-shortest-augmenting-path
formulation: rows are inserted one at a time and each insertion grows the
matching along a Dijkstra-style alternating path, maintaining dual
potentials ``u`` (rows) and ``v`` (columns) with the invariant
``u[i] + v[j] <= cost[i, j]`` (equality on tight/matched edges).  The
per-row relaxation step is vectorised over all columns, so the Python-level
loop count is O(S^2) while the arithmetic stays O(S^3) inside NumPy.

Integer arithmetic throughout: costs are ``int64``, so there is no float
drift and the dual certificate is exact.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.types import ErrorMatrix

__all__ = ["HungarianSolver"]

# Large sentinel that survives repeated subtraction without overflowing int64.
_INF = np.iinfo(np.int64).max // 4


@register_solver
class HungarianSolver(AssignmentSolver):
    """From-scratch Kuhn-Munkres with vectorised relaxation."""

    name = "hungarian"
    exact = True

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        cost = matrix
        n = cost.shape[0]
        # 1-indexed arrays with slot 0 as the virtual start column, matching
        # the classic formulation; p[j] = row currently matched to column j.
        u = np.zeros(n + 1, dtype=np.int64)
        v = np.zeros(n + 1, dtype=np.int64)
        p = np.zeros(n + 1, dtype=np.intp)
        way = np.zeros(n + 1, dtype=np.intp)
        augmentations = 0
        for i in range(1, n + 1):
            p[0] = i
            j0 = 0
            minv = np.full(n + 1, _INF, dtype=np.int64)
            used = np.zeros(n + 1, dtype=bool)
            while True:
                used[j0] = True
                i0 = p[j0]
                # Vectorised relaxation of all unused columns from row i0.
                free = ~used[1:]
                reduced = cost[i0 - 1] - u[i0] - v[1:]
                improve = free & (reduced < minv[1:])
                minv1 = minv[1:]
                way1 = way[1:]
                minv1[improve] = reduced[improve]
                way1[improve] = j0
                masked = np.where(free, minv1, _INF)
                j1 = int(np.argmin(masked)) + 1
                delta = int(masked[j1 - 1])
                # Dual update: tight set grows, reduced costs stay >= 0.
                used_cols = np.flatnonzero(used)
                u[p[used_cols]] += delta
                v[used_cols] -= delta
                minv1[free] -= delta
                j0 = j1
                if p[j0] == 0:
                    break
            # Walk the alternating path backwards, flipping matched edges.
            while j0 != 0:
                j1 = int(way[j0])
                p[j0] = p[j1]
                j0 = j1
            augmentations += 1
        perm = (p[1:] - 1).astype(np.intp)
        total = int(cost[perm, np.arange(n)].sum())
        # Re-index duals from the 1-indexed algorithm arrays: u is keyed by
        # row id, v by column id.
        dual_row = u[1:].copy()
        dual_col = v[1:].copy()
        return AssignmentResult(
            permutation=perm,
            total=total,
            optimal=True,
            dual_row=dual_row,
            dual_col=dual_col,
            iterations=augmentations,
        )
