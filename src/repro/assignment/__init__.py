"""Minimum-weight bipartite matching solvers (the optimization algorithm).

The paper reduces tile rearrangement to minimum-weight perfect matching on
a complete bipartite graph (Section III) and solves it with Blossom V.  On
bipartite instances that problem *is* the linear assignment problem, so
this package provides four interchangeable solvers — from-scratch
Hungarian, Jonker-Volgenant and auction implementations plus a SciPy
reference — and a greedy baseline, all behind one registry.
"""

from __future__ import annotations

from repro.assignment.auction import AuctionSolver
from repro.assignment.base import AssignmentResult, AssignmentSolver, get_solver, register_solver
from repro.assignment.blossom import BlossomSolver
from repro.assignment.bruteforce import BruteForceSolver
from repro.assignment.greedy import GreedySolver
from repro.assignment.hungarian import HungarianSolver
from repro.assignment.jonker_volgenant import JonkerVolgenantSolver
from repro.assignment.rectangular import solve_rectangular
from repro.assignment.scipy_solver import ScipySolver
from repro.assignment.validation import check_result, verify_optimality_certificate

__all__ = [
    "AssignmentResult",
    "AssignmentSolver",
    "get_solver",
    "register_solver",
    "HungarianSolver",
    "JonkerVolgenantSolver",
    "AuctionSolver",
    "BlossomSolver",
    "BruteForceSolver",
    "GreedySolver",
    "ScipySolver",
    "solve_rectangular",
    "check_result",
    "verify_optimality_certificate",
]
