"""Exhaustive assignment — the paper's "straightforward method".

Section II: "a straightforward method to find the best rearrangement is to
evaluate Error(R, T) for all possible S! rearranged images R."  That is
useless in practice (the paper's point) but invaluable as a *test oracle*:
for tiny S it enumerates every permutation and therefore certifies the
fast solvers' optimality without trusting any of them.

Guarded to ``S <= factorial_limit`` (default 9, i.e. <= 362880
permutations) so it cannot be misused at scale.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.assignment.base import AssignmentResult, AssignmentSolver, register_solver
from repro.exceptions import ValidationError
from repro.types import ErrorMatrix

__all__ = ["BruteForceSolver"]


@register_solver
class BruteForceSolver(AssignmentSolver):
    """Enumerate all S! assignments (tiny instances only)."""

    name = "bruteforce"
    exact = True

    def __init__(self, factorial_limit: int = 9) -> None:
        if factorial_limit < 1:
            raise ValidationError(
                f"factorial_limit must be >= 1, got {factorial_limit}"
            )
        self.factorial_limit = int(factorial_limit)

    def _solve(self, matrix: ErrorMatrix) -> AssignmentResult:
        n = matrix.shape[0]
        if n > self.factorial_limit:
            raise ValidationError(
                f"brute force limited to S <= {self.factorial_limit}, got {n} "
                "(that is the paper's point — use an exact solver instead)"
            )
        positions = np.arange(n)
        best_total = None
        best_perm: tuple[int, ...] | None = None
        evaluated = 0
        for perm in permutations(range(n)):
            total = int(matrix[np.array(perm), positions].sum())
            evaluated += 1
            if best_total is None or total < best_total:
                best_total = total
                best_perm = perm
        assert best_perm is not None and best_total is not None
        return AssignmentResult(
            permutation=np.array(best_perm, dtype=np.intp),
            total=best_total,
            optimal=True,
            iterations=evaluated,
        )
