"""Rectangular assignment: more candidates than positions.

The database-mosaic mode without tile reuse (paper Fig. 1 pipeline, "each
database image at most once") is a rectangular LAP: ``R`` candidate tiles,
``C <= R`` target positions, choose ``C`` distinct candidates minimising
total cost.  The classic reduction squares the matrix with zero-cost dummy
columns — dummies absorb the unused candidates without changing the
objective — after which any exact square solver applies.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentSolver, get_solver
from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE

__all__ = ["solve_rectangular"]


def solve_rectangular(
    costs: np.ndarray,
    solver: str | AssignmentSolver = "jv",
) -> tuple[np.ndarray, int]:
    """Min-cost injective assignment of columns to rows.

    Parameters
    ----------
    costs:
        ``(R, C)`` non-negative cost matrix with ``R >= C`` (rows =
        candidates, columns = positions).
    solver:
        Square-solver registry name or instance used on the padded matrix.

    Returns
    -------
    (choice, total):
        ``choice[c]`` is the row assigned to column ``c`` (all distinct);
        ``total`` is the exact objective value.
    """
    costs = np.asarray(costs)
    if costs.ndim != 2:
        raise ValidationError(f"costs must be 2-D, got shape {costs.shape}")
    rows, cols = costs.shape
    if rows < cols:
        raise ValidationError(
            f"need rows >= cols (candidates >= positions), got {rows} < {cols}"
        )
    if rows == 0 or cols == 0:
        raise ValidationError("costs must be non-empty")
    if not np.issubdtype(costs.dtype, np.integer):
        raise ValidationError(f"costs must be integer, got dtype {costs.dtype}")
    if (costs < 0).any():
        raise ValidationError("costs must be non-negative")
    # Pad with zero-cost dummy columns: every unused candidate matches a
    # dummy for free, so the real columns' assignment is unchanged.
    padded = np.zeros((rows, rows), dtype=ERROR_DTYPE)
    padded[:, :cols] = costs
    result = get_solver(solver).solve(padded)
    # result.permutation[v] = row at (padded) column v; keep real columns.
    choice = result.permutation[:cols].copy()
    total = int(costs[choice, np.arange(cols)].sum())
    return choice, total
