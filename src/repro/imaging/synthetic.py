"""Deterministic procedural stand-ins for the USC-SIPI test images.

The paper evaluates on Lena, Sailboat, Airplane, Peppers, Barbara, Baboon
and Tiffany.  Those photographs are not redistributable here, so this module
synthesises images with a similar *statistical character* — smooth shaded
regions, strong edges, fine oscillating texture, highlights — from seeded
procedural primitives.  The rearrangement algorithms only consume pixel
arrays, and every evaluation in the paper compares algorithms *on the same
image pair*, so a structure-rich deterministic stand-in preserves the
comparisons (see DESIGN.md, substitutions table).

All generators accept any side length ``n`` and are pixel-deterministic for
a fixed ``(name, n, seed)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import GrayImage
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int

__all__ = ["STANDARD_IMAGES", "standard_image", "synthetic_image"]


def _grid(n: int) -> tuple[np.ndarray, np.ndarray]:
    """Normalised coordinate grid in ``[0, 1]`` (y rows, x cols)."""
    axis = (np.arange(n) + 0.5) / n
    return np.meshgrid(axis, axis, indexing="ij")


def _value_noise(n: int, cells: int, rng: np.random.Generator) -> np.ndarray:
    """Smooth value noise in ``[0, 1]``: bilinear upsampling of a coarse grid."""
    coarse = rng.random((cells + 1, cells + 1))
    ys = np.linspace(0, cells, n, endpoint=False)
    xs = np.linspace(0, cells, n, endpoint=False)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    fy = (ys - y0).reshape(-1, 1)
    fx = (xs - x0).reshape(1, -1)
    # Smoothstep fade gives C1-continuous noise, avoiding grid artefacts.
    fy = fy * fy * (3 - 2 * fy)
    fx = fx * fx * (3 - 2 * fx)
    c00 = coarse[y0][:, x0]
    c01 = coarse[y0][:, x0 + 1]
    c10 = coarse[y0 + 1][:, x0]
    c11 = coarse[y0 + 1][:, x0 + 1]
    return c00 * (1 - fy) * (1 - fx) + c01 * (1 - fy) * fx + c10 * fy * (1 - fx) + c11 * fy * fx


def _fractal_noise(n: int, rng: np.random.Generator, octaves: int = 4) -> np.ndarray:
    """Sum of value-noise octaves, normalised to ``[0, 1]``."""
    total = np.zeros((n, n))
    amplitude = 1.0
    cells = 4
    norm = 0.0
    for _ in range(octaves):
        total += amplitude * _value_noise(n, min(cells, n), rng)
        norm += amplitude
        amplitude *= 0.5
        cells *= 2
    return total / norm


def _blob(y: np.ndarray, x: np.ndarray, cy: float, cx: float, sy: float, sx: float) -> np.ndarray:
    """Anisotropic Gaussian blob in ``[0, 1]``."""
    return np.exp(-(((y - cy) / sy) ** 2 + ((x - cx) / sx) ** 2))


def _to_uint8(field: np.ndarray) -> GrayImage:
    """Rescale an arbitrary float field to the full ``[0, 255]`` range."""
    lo = field.min()
    hi = field.max()
    if hi - lo < 1e-12:
        return np.full(field.shape, 128, dtype=np.uint8)
    scaled = (field - lo) / (hi - lo) * 255.0
    return np.clip(np.rint(scaled), 0, 255).astype(np.uint8)


def _portrait(n: int, rng: np.random.Generator) -> np.ndarray:
    """Lena stand-in: soft diagonal lighting, a dominant oval, hat-like band."""
    y, x = _grid(n)
    base = 0.55 + 0.3 * (x - y)  # diagonal illumination
    face = 0.35 * _blob(y, x, 0.52, 0.55, 0.22, 0.17)
    hat = -0.3 * _blob(y, x, 0.18, 0.45, 0.12, 0.35)
    shoulder = -0.2 * _blob(y, x, 0.95, 0.3, 0.25, 0.3)
    texture = 0.08 * _fractal_noise(n, rng)
    stripes = 0.05 * np.sin(34 * np.pi * (x + 0.35 * y))  # feathery hat texture
    return base + face + hat + shoulder + texture + stripes * _blob(y, x, 0.2, 0.5, 0.2, 0.45)


def _sailboat(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sailboat-on-lake stand-in: bright sky, dark shore, triangular sail."""
    y, x = _grid(n)
    sky = np.where(y < 0.45, 0.85 - 0.25 * y, 0.0)
    water = np.where(y >= 0.45, 0.35 - 0.15 * (y - 0.45), 0.0)
    ripples = 0.06 * np.sin(60 * np.pi * y) * (y >= 0.5)
    sail = 0.5 * ((x - 0.45 < 0.35 * (0.55 - y)) & (x > 0.42) & (y > 0.15) & (y < 0.55))
    mast = 0.4 * ((np.abs(x - 0.55) < 0.008) & (y > 0.1) & (y < 0.6))
    trees = -0.25 * _blob(y, x, 0.42, 0.15, 0.1, 0.2) - 0.25 * _blob(y, x, 0.4, 0.85, 0.08, 0.15)
    texture = 0.07 * _fractal_noise(n, rng)
    return sky + water + ripples + sail + mast + trees + texture


def _airplane(n: int, rng: np.random.Generator) -> np.ndarray:
    """F-16 stand-in: very bright fuselage on mid-gray terrain, sharp edges."""
    y, x = _grid(n)
    terrain = 0.45 + 0.12 * _fractal_noise(n, rng)
    body = 0.5 * _blob(y, x, 0.5, 0.5, 0.08, 0.32)
    wing = 0.45 * _blob(y, x, 0.55, 0.5, 0.22, 0.1)
    tail = 0.4 * _blob(y, x, 0.35, 0.24, 0.12, 0.05)
    canopy = -0.2 * _blob(y, x, 0.47, 0.68, 0.03, 0.05)
    stripes = 0.08 * np.sin(8 * np.pi * y) * (terrain < 0.5)
    return terrain + body + wing + tail + canopy + stripes


def _peppers(n: int, rng: np.random.Generator) -> np.ndarray:
    """Peppers stand-in: several large glossy rounded regions + highlights."""
    y, x = _grid(n)
    field = 0.35 + 0.1 * _fractal_noise(n, rng)
    centres = [(0.3, 0.3, 0.2, 0.18), (0.35, 0.72, 0.18, 0.15), (0.7, 0.45, 0.24, 0.2),
               (0.75, 0.82, 0.15, 0.12), (0.12, 0.55, 0.1, 0.12)]
    for i, (cy, cx, sy, sx) in enumerate(centres):
        sign = 1.0 if i % 2 == 0 else -0.7
        field += 0.35 * sign * _blob(y, x, cy, cx, sy, sx)
        field += 0.25 * _blob(y, x, cy - 0.4 * sy, cx - 0.4 * sx, sy * 0.2, sx * 0.2)
    return field


def _barbara(n: int, rng: np.random.Generator) -> np.ndarray:
    """Barbara stand-in: strong oriented high-frequency stripe texture."""
    y, x = _grid(n)
    base = 0.5 + 0.15 * (x - 0.5) + 0.1 * _fractal_noise(n, rng)
    cloth1 = 0.22 * np.sin(48 * np.pi * (x + 0.6 * y)) * _blob(y, x, 0.65, 0.3, 0.3, 0.25)
    cloth2 = 0.22 * np.sin(56 * np.pi * (y - 0.4 * x)) * _blob(y, x, 0.35, 0.75, 0.28, 0.22)
    table = 0.18 * np.sin(30 * np.pi * x) * (y > 0.8)
    face = 0.2 * _blob(y, x, 0.25, 0.4, 0.12, 0.1)
    return base + cloth1 + cloth2 + table + face


def _baboon(n: int, rng: np.random.Generator) -> np.ndarray:
    """Baboon stand-in: dominated by fine fur noise with a bright nose ridge."""
    y, x = _grid(n)
    fur = 0.5 * _fractal_noise(n, rng, octaves=6)
    whiskers = 0.15 * np.sin(80 * np.pi * (x + 0.2 * np.sin(6 * np.pi * y)))
    nose = 0.35 * _blob(y, x, 0.55, 0.5, 0.3, 0.07)
    eyes = -0.3 * (_blob(y, x, 0.3, 0.36, 0.04, 0.05) + _blob(y, x, 0.3, 0.64, 0.04, 0.05))
    return 0.3 + fur + 0.4 * whiskers * _blob(y, x, 0.6, 0.5, 0.35, 0.45) + nose + eyes


def _tiffany(n: int, rng: np.random.Generator) -> np.ndarray:
    """Tiffany stand-in: bright, low-contrast portrait (high-key lighting)."""
    y, x = _grid(n)
    base = 0.75 - 0.08 * y
    face = 0.12 * _blob(y, x, 0.45, 0.5, 0.25, 0.2)
    hair = -0.18 * _blob(y, x, 0.25, 0.2, 0.25, 0.12) - 0.18 * _blob(y, x, 0.3, 0.8, 0.25, 0.1)
    texture = 0.05 * _fractal_noise(n, rng)
    return base + face + hair + texture


_GENERATORS = {
    "portrait": _portrait,  # Lena stand-in
    "sailboat": _sailboat,
    "airplane": _airplane,
    "peppers": _peppers,
    "barbara": _barbara,
    "baboon": _baboon,
    "tiffany": _tiffany,
}

#: Names of the available standard-image stand-ins.
STANDARD_IMAGES: tuple[str, ...] = tuple(sorted(_GENERATORS))

# Fixed per-image seeds so every (name, n) pair is globally deterministic.
_NAME_SEEDS = {name: 1000 + idx for idx, name in enumerate(STANDARD_IMAGES)}


def standard_image(name: str, n: int = 512) -> GrayImage:
    """Return the deterministic ``n x n`` stand-in named ``name``.

    ``name`` is one of :data:`STANDARD_IMAGES`; ``portrait`` plays the role
    of Lena in the paper's figures.
    """
    n = check_positive_int(n, "n")
    generator = _GENERATORS.get(name)
    if generator is None:
        raise ValidationError(
            f"unknown standard image {name!r} (available: {', '.join(STANDARD_IMAGES)})"
        )
    rng = make_rng(_NAME_SEEDS[name])
    return _to_uint8(generator(n, rng))


def synthetic_image(
    n: int = 512,
    *,
    seed: int | np.random.Generator | None = 0,
    smoothness: float = 0.5,
    contrast: float = 1.0,
) -> GrayImage:
    """Generate a generic random test image.

    ``smoothness`` in ``[0, 1]`` blends fine fractal noise (0) against a
    large-scale blob composition (1); ``contrast`` scales the deviation from
    mid-gray before requantisation.  Used by property tests and workload
    generators that need many distinct images.
    """
    n = check_positive_int(n, "n")
    if not 0.0 <= smoothness <= 1.0:
        raise ValidationError(f"smoothness must be in [0, 1], got {smoothness}")
    if contrast <= 0:
        raise ValidationError(f"contrast must be positive, got {contrast}")
    rng = make_rng(seed)
    fine = _fractal_noise(n, rng, octaves=5)
    y, x = _grid(n)
    coarse = np.zeros((n, n))
    for _ in range(5):
        cy, cx = rng.random(2)
        sy, sx = 0.1 + 0.3 * rng.random(2)
        coarse += (rng.random() - 0.3) * _blob(y, x, cy, cx, sy, sx)
    field = (1 - smoothness) * fine + smoothness * coarse
    field = 0.5 + contrast * (field - field.mean())
    return _to_uint8(field)
