"""Resizing and shape-adjustment helpers.

The paper assumes square ``N x N`` images whose side is a multiple of the
tile size ``M``.  Real inputs rarely are, so the pipeline offers nearest and
bilinear resampling plus crop/pad adjustments to the nearest multiple.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import AnyImage
from repro.utils.validation import check_image, check_positive_int

__all__ = ["resize", "crop_to_multiple", "pad_to_multiple"]


def _sample_axis(new: int, old: int) -> np.ndarray:
    """Pixel-centre sample coordinates for resizing ``old`` -> ``new``."""
    return (np.arange(new) + 0.5) * (old / new) - 0.5


def resize(image: AnyImage, height: int, width: int, *, method: str = "bilinear") -> AnyImage:
    """Resample ``image`` to ``(height, width)``.

    ``method`` is ``"nearest"`` or ``"bilinear"``.  Bilinear is separable
    and fully vectorised; nearest uses pixel-centre alignment so an identity
    resize returns the input exactly.
    """
    image = check_image(image)
    height = check_positive_int(height, "height")
    width = check_positive_int(width, "width")
    old_h, old_w = image.shape[:2]
    if (old_h, old_w) == (height, width):
        return image.copy()
    if method == "nearest":
        rows = np.clip(np.rint(_sample_axis(height, old_h)), 0, old_h - 1).astype(np.intp)
        cols = np.clip(np.rint(_sample_axis(width, old_w)), 0, old_w - 1).astype(np.intp)
        return image[np.ix_(rows, cols)] if image.ndim == 2 else image[rows][:, cols]
    if method != "bilinear":
        raise ValidationError(f"unknown resize method {method!r} (use nearest|bilinear)")
    ys = np.clip(_sample_axis(height, old_h), 0, old_h - 1)
    xs = np.clip(_sample_axis(width, old_w), 0, old_w - 1)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, old_h - 1)
    x1 = np.minimum(x0 + 1, old_w - 1)
    wy = (ys - y0).reshape(-1, 1)
    wx = (xs - x0).reshape(1, -1)
    if image.ndim == 3:
        wy = wy[:, :, None]
        wx = wx[:, :, None]
    img = image.astype(np.float64)
    top = img[y0][:, x0] * (1 - wx) + img[y0][:, x1] * wx
    bottom = img[y1][:, x0] * (1 - wx) + img[y1][:, x1] * wx
    out = top * (1 - wy) + bottom * wy
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def crop_to_multiple(image: AnyImage, multiple: int) -> AnyImage:
    """Centre-crop so both sides become multiples of ``multiple``.

    Raises if either side is smaller than ``multiple``.
    """
    image = check_image(image)
    multiple = check_positive_int(multiple, "multiple")
    h, w = image.shape[:2]
    new_h = (h // multiple) * multiple
    new_w = (w // multiple) * multiple
    if new_h == 0 or new_w == 0:
        raise ValidationError(
            f"image {h}x{w} is smaller than the requested multiple {multiple}"
        )
    top = (h - new_h) // 2
    left = (w - new_w) // 2
    return image[top : top + new_h, left : left + new_w].copy()


def pad_to_multiple(image: AnyImage, multiple: int, *, mode: str = "edge") -> AnyImage:
    """Pad (bottom/right) so both sides become multiples of ``multiple``."""
    image = check_image(image)
    multiple = check_positive_int(multiple, "multiple")
    h, w = image.shape[:2]
    pad_h = (-h) % multiple
    pad_w = (-w) % multiple
    if pad_h == 0 and pad_w == 0:
        return image.copy()
    pad_spec: list[tuple[int, int]] = [(0, pad_h), (0, pad_w)]
    if image.ndim == 3:
        pad_spec.append((0, 0))
    return np.pad(image, pad_spec, mode=mode)
