"""BMP writer (uncompressed BITMAPINFOHEADER, 24-bit or 8-bit palette).

BMP is write-only in this library: the examples emit it as a dependency-free
viewable format next to PNG; nothing in the pipeline reads BMPs back.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from repro.types import AnyImage
from repro.utils.validation import check_image

__all__ = ["write_bmp"]


def write_bmp(path: str | os.PathLike[str], image: AnyImage) -> None:
    """Write ``image`` as a BMP file.

    Grayscale images are written as 8-bit palettised BMPs with an identity
    gray palette; colour images as 24-bit BGR.  Rows are bottom-up and padded
    to 4-byte boundaries per the format.
    """
    image = check_image(image)
    height, width = image.shape[:2]
    if image.ndim == 2:
        bits = 8
        palette = bytearray()
        for level in range(256):
            palette += bytes((level, level, level, 0))  # BGRA palette entry
        row_bytes = width
        raster_rows = image
    else:
        bits = 24
        palette = bytearray()
        row_bytes = width * 3
        raster_rows = image[:, :, ::-1]  # RGB -> BGR
    pad = (-row_bytes) % 4
    padded_stride = row_bytes + pad
    raster = bytearray()
    for row in range(height - 1, -1, -1):  # BMP stores rows bottom-up
        raster += np.ascontiguousarray(raster_rows[row]).tobytes()
        raster += b"\x00" * pad
    header_size = 14 + 40 + len(palette)
    file_size = header_size + len(raster)
    with open(path, "wb") as fh:
        fh.write(struct.pack("<2sIHHI", b"BM", file_size, 0, 0, header_size))
        fh.write(
            struct.pack(
                "<IiiHHIIiiII",
                40,
                width,
                height,
                1,
                bits,
                0,  # BI_RGB, uncompressed
                padded_stride * height,
                2835,  # ~72 DPI
                2835,
                256 if bits == 8 else 0,
                0,
            )
        )
        fh.write(bytes(palette))
        fh.write(bytes(raster))
