"""Colour variants of the standard-image stand-ins.

The paper treats colour as a drop-in change of the error function
(Section II).  To exercise that path end-to-end, each grayscale stand-in
gets a colour rendition: its intensity field is mapped through an
image-specific palette (piecewise-linear interpolation between anchor
colours chosen to echo the original photograph — Lena's skin tones,
Peppers' reds and greens, ...), plus a seeded low-frequency hue
perturbation so the channels are not perfectly correlated.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging.synthetic import STANDARD_IMAGES, _value_noise, standard_image
from repro.types import ColorImage
from repro.utils.rng import make_rng
from repro.utils.validation import check_positive_int

__all__ = ["standard_image_color"]

# Palette anchors per image: evenly spaced over intensity 0..255, RGB.
_PALETTES: dict[str, list[tuple[int, int, int]]] = {
    "portrait": [(40, 18, 38), (135, 68, 78), (214, 150, 122), (250, 224, 196)],
    "sailboat": [(20, 36, 28), (46, 90, 74), (120, 160, 190), (235, 244, 250)],
    "airplane": [(52, 62, 48), (110, 118, 96), (176, 184, 188), (250, 250, 252)],
    "peppers": [(30, 10, 8), (140, 30, 24), (70, 120, 30), (240, 210, 80)],
    "barbara": [(36, 26, 40), (110, 86, 92), (180, 150, 130), (240, 228, 208)],
    "baboon": [(30, 24, 60), (60, 90, 150), (190, 110, 60), (235, 220, 180)],
    "tiffany": [(90, 60, 70), (170, 120, 120), (230, 190, 170), (255, 240, 225)],
}

# Separate seed stream for the hue perturbation.
_HUE_SEEDS = {name: 5000 + idx for idx, name in enumerate(sorted(_PALETTES))}


def _apply_palette(gray: np.ndarray, anchors: list[tuple[int, int, int]]) -> np.ndarray:
    """Map intensities 0..255 through piecewise-linear palette anchors."""
    stops = np.linspace(0, 255, len(anchors))
    palette = np.array(anchors, dtype=np.float64)
    out = np.empty((*gray.shape, 3), dtype=np.float64)
    levels = gray.astype(np.float64)
    for channel in range(3):
        out[:, :, channel] = np.interp(levels, stops, palette[:, channel])
    return out


def standard_image_color(name: str, n: int = 512) -> ColorImage:
    """Colour rendition of the stand-in named ``name`` (``(n, n, 3)`` uint8)."""
    n = check_positive_int(n, "n")
    if name not in _PALETTES:
        raise ValidationError(
            f"unknown standard image {name!r} (available: {', '.join(STANDARD_IMAGES)})"
        )
    gray = standard_image(name, n)
    colored = _apply_palette(gray, _PALETTES[name])
    # Low-frequency hue perturbation: push R up / B down in smooth patches,
    # so channels carry independent information for the colour metric.
    rng = make_rng(_HUE_SEEDS[name])
    drift = (_value_noise(n, min(6, n), rng) - 0.5) * 36.0
    colored[:, :, 0] += drift
    colored[:, :, 2] -= drift
    return np.clip(np.rint(colored), 0, 255).astype(np.uint8)
