"""Histograms, equalization and histogram specification (matching).

Section II of the paper pre-adjusts the input image's intensity distribution
to the target's before tiling ("the distribution of an input image is
changed to that of a target image using the histogram equalization").  In
modern terminology that operation is **histogram specification / matching**:
equalize both CDFs and compose one transform with the inverse of the other.
:func:`match_histogram` implements exactly that; plain
:func:`histogram_equalize` is also provided.
"""

from __future__ import annotations

import numpy as np

from repro.types import GrayImage
from repro.utils.validation import check_gray_image

__all__ = [
    "histogram",
    "cumulative_histogram",
    "histogram_equalize",
    "match_histogram",
]


def histogram(image: GrayImage) -> np.ndarray:
    """256-bin intensity histogram (counts, ``int64``)."""
    image = check_gray_image(image)
    return np.bincount(image.ravel(), minlength=256).astype(np.int64)


def cumulative_histogram(image: GrayImage, *, normalized: bool = True) -> np.ndarray:
    """Cumulative histogram; normalised to ``[0, 1]`` by default."""
    cdf = np.cumsum(histogram(image)).astype(np.float64)
    if normalized:
        cdf /= cdf[-1]
    return cdf


def histogram_equalize(image: GrayImage) -> GrayImage:
    """Classic global histogram equalization.

    Uses the standard transform ``T(l) = round(255 * (cdf(l) - cdf_min) /
    (1 - cdf_min))`` so the darkest occupied level maps to 0.
    """
    image = check_gray_image(image)
    cdf = cumulative_histogram(image)
    occupied = cdf > 0
    cdf_min = cdf[occupied][0] if occupied.any() else 0.0
    if cdf_min >= 1.0:
        # Constant image: equalization is the identity.
        return image.copy()
    lut = np.rint(255.0 * (cdf - cdf_min) / (1.0 - cdf_min))
    lut = np.clip(lut, 0, 255).astype(np.uint8)
    return lut[image]


def match_histogram(image: GrayImage, reference: GrayImage) -> GrayImage:
    """Remap ``image`` so its intensity distribution matches ``reference``.

    Standard CDF-inversion specification: for each source level ``l`` find
    the smallest reference level whose CDF is >= the source CDF at ``l``.
    The mapping is monotone non-decreasing by construction, so image
    structure (ordering of intensities) is preserved — the property the
    rearrangement algorithms rely on.
    """
    image = check_gray_image(image, "image")
    reference = check_gray_image(reference, "reference")
    src_cdf = cumulative_histogram(image)
    ref_cdf = cumulative_histogram(reference)
    # For each source level, the first reference level with CDF >= src CDF.
    lut = np.searchsorted(ref_cdf, src_cdf, side="left")
    lut = np.clip(lut, 0, 255).astype(np.uint8)
    return lut[image]
