"""Image substrate: codecs, conversion, resizing, histograms, synthesis.

This package replaces PIL/USC-SIPI for the reproduction: it can read and
write Netpbm (PGM/PPM), PNG and BMP files, convert between grayscale and
colour, resize, match histograms (the paper's pre-processing step) and
synthesise deterministic stand-ins for the standard test images.
"""

from __future__ import annotations

from repro.imaging.convert import ensure_gray, gray_to_rgb, rgb_to_gray
from repro.imaging.draw import draw_tile_borders, montage, side_by_side
from repro.imaging.filters import (
    box_blur,
    gaussian_blur,
    gradient_magnitude,
    sobel_gradients,
)
from repro.imaging.histogram import (
    cumulative_histogram,
    histogram,
    histogram_equalize,
    match_histogram,
)
from repro.imaging.io_bmp import write_bmp
from repro.imaging.io_pgm import read_netpbm, write_pgm, write_ppm
from repro.imaging.io_png import read_png, write_png
from repro.imaging.iohub import load_image, save_image
from repro.imaging.metrics import mae, mse, psnr, ssim
from repro.imaging.resize import crop_to_multiple, pad_to_multiple, resize
from repro.imaging.synthetic import STANDARD_IMAGES, standard_image, synthetic_image
from repro.imaging.synthetic_color import standard_image_color

__all__ = [
    "ensure_gray",
    "gray_to_rgb",
    "rgb_to_gray",
    "draw_tile_borders",
    "montage",
    "side_by_side",
    "box_blur",
    "gaussian_blur",
    "gradient_magnitude",
    "sobel_gradients",
    "histogram",
    "cumulative_histogram",
    "histogram_equalize",
    "match_histogram",
    "read_netpbm",
    "write_pgm",
    "write_ppm",
    "read_png",
    "write_png",
    "write_bmp",
    "load_image",
    "save_image",
    "mae",
    "mse",
    "psnr",
    "ssim",
    "resize",
    "crop_to_multiple",
    "pad_to_multiple",
    "STANDARD_IMAGES",
    "standard_image",
    "standard_image_color",
    "synthetic_image",
]
