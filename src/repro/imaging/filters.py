"""Spatial filters: box/Gaussian smoothing and Sobel gradients.

Substrate for the gradient-aware cost metric (:mod:`repro.cost.gradient`)
and generally useful pre-processing.  All filters are separable and
vectorised; borders use edge replication (the conventional choice for
photographic content — no artificial dark frame).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import GrayImage
from repro.utils.validation import check_gray_image, check_positive_int

__all__ = ["box_blur", "gaussian_blur", "sobel_gradients", "gradient_magnitude"]


def _convolve_axis(img: np.ndarray, kernel: np.ndarray, axis: int) -> np.ndarray:
    """1-D correlation along ``axis`` with edge replication."""
    radius = kernel.shape[0] // 2
    pad = [(0, 0), (0, 0)]
    pad[axis] = (radius, radius)
    padded = np.pad(img, pad, mode="edge")
    out = np.zeros_like(img, dtype=np.float64)
    for offset, weight in enumerate(kernel):
        if axis == 0:
            out += weight * padded[offset : offset + img.shape[0], :]
        else:
            out += weight * padded[:, offset : offset + img.shape[1]]
    return out


def box_blur(image: GrayImage, radius: int = 1) -> GrayImage:
    """Mean filter with a ``(2*radius+1)`` square box."""
    image = check_gray_image(image)
    radius = check_positive_int(radius, "radius")
    size = 2 * radius + 1
    kernel = np.full(size, 1.0 / size)
    out = _convolve_axis(_convolve_axis(image.astype(np.float64), kernel, 0), kernel, 1)
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def gaussian_blur(image: GrayImage, sigma: float = 1.0) -> GrayImage:
    """Separable Gaussian blur; kernel truncated at 3 sigma."""
    image = check_gray_image(image)
    if sigma <= 0:
        raise ValidationError(f"sigma must be positive, got {sigma}")
    radius = max(1, int(np.ceil(3.0 * sigma)))
    xs = np.arange(-radius, radius + 1, dtype=np.float64)
    kernel = np.exp(-0.5 * (xs / sigma) ** 2)
    kernel /= kernel.sum()
    out = _convolve_axis(_convolve_axis(image.astype(np.float64), kernel, 0), kernel, 1)
    return np.clip(np.rint(out), 0, 255).astype(np.uint8)


def sobel_gradients(image: GrayImage) -> tuple[np.ndarray, np.ndarray]:
    """Sobel derivative images ``(gy, gx)`` as ``float64``.

    Each operator is applied separably (smooth [1,2,1] x derivative
    [-1,0,1]); ranges are ``[-1020, 1020]`` for uint8 input.
    """
    image = check_gray_image(image)
    img = image.astype(np.float64)
    smooth = np.array([1.0, 2.0, 1.0])
    deriv = np.array([-1.0, 0.0, 1.0])
    gy = _convolve_axis(_convolve_axis(img, deriv, 0), smooth, 1)
    gx = _convolve_axis(_convolve_axis(img, smooth, 0), deriv, 1)
    return gy, gx


def gradient_magnitude(image: GrayImage, *, normalize: bool = True) -> GrayImage:
    """Sobel gradient magnitude, optionally rescaled to ``[0, 255]``.

    Without ``normalize`` the magnitude is clipped at 255 (absolute edge
    strength, comparable across images) — the form the gradient cost
    metric consumes.
    """
    gy, gx = sobel_gradients(image)
    magnitude = np.hypot(gy, gx)
    if normalize:
        peak = magnitude.max()
        if peak > 0:
            magnitude = magnitude * (255.0 / peak)
    return np.clip(np.rint(magnitude), 0, 255).astype(np.uint8)
