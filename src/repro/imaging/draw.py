"""Figure-composition helpers: montages, tile borders, labels-free sheets.

Used by the examples to build Fig.-7-style comparison sheets (several
images side by side) and to visualise tile boundaries the way the paper's
small-S outputs expose them.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.types import AnyImage
from repro.utils.validation import check_image, check_positive_int

__all__ = ["montage", "draw_tile_borders", "side_by_side"]


def draw_tile_borders(
    image: AnyImage, tile_size: int, *, intensity: int = 0
) -> AnyImage:
    """Overlay 1-px grid lines on every tile boundary.

    Returns a copy; the input is untouched.  ``intensity`` is the border
    gray level (or applied to all channels for colour images).
    """
    image = check_image(image)
    tile_size = check_positive_int(tile_size, "tile_size")
    if not 0 <= intensity <= 255:
        raise ValidationError(f"intensity must be in [0, 255], got {intensity}")
    h, w = image.shape[:2]
    if h % tile_size or w % tile_size:
        raise ValidationError(
            f"tile size {tile_size} does not divide image {h}x{w}"
        )
    out = image.copy()
    out[::tile_size, :] = intensity
    out[:, ::tile_size] = intensity
    # Close the bottom/right edges so every tile is fully framed.
    out[h - 1, :] = intensity
    out[:, w - 1] = intensity
    return out


def montage(
    images: Sequence[AnyImage],
    *,
    cols: int | None = None,
    pad: int = 4,
    background: int = 255,
) -> AnyImage:
    """Arrange equally-sized images into a padded grid (row-major).

    All images must share shape and gray/colour kind.  Missing cells in the
    last row are filled with the background level.
    """
    if not images:
        raise ValidationError("montage needs at least one image")
    images = [check_image(img) for img in images]
    first = images[0]
    for img in images[1:]:
        if img.shape != first.shape:
            raise ValidationError(
                f"montage images must share shape: {img.shape} vs {first.shape}"
            )
    if pad < 0:
        raise ValidationError(f"pad must be >= 0, got {pad}")
    if not 0 <= background <= 255:
        raise ValidationError(f"background must be in [0, 255], got {background}")
    count = len(images)
    if cols is None:
        cols = int(np.ceil(np.sqrt(count)))
    cols = check_positive_int(cols, "cols")
    rows = (count + cols - 1) // cols
    h, w = first.shape[:2]
    out_shape: tuple[int, ...] = (
        rows * h + (rows + 1) * pad,
        cols * w + (cols + 1) * pad,
    )
    if first.ndim == 3:
        out_shape = (*out_shape, 3)
    out = np.full(out_shape, background, dtype=np.uint8)
    for index, img in enumerate(images):
        r, c = divmod(index, cols)
        top = pad + r * (h + pad)
        left = pad + c * (w + pad)
        out[top : top + h, left : left + w] = img
    return out


def side_by_side(*images: AnyImage, pad: int = 4, background: int = 255) -> AnyImage:
    """One-row montage convenience wrapper."""
    return montage(list(images), cols=max(1, len(images)), pad=pad, background=background)
