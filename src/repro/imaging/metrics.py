"""Image quality metrics: MAE, MSE, PSNR and a windowed SSIM.

The paper judges quality visually (Fig. 7) and by the total SAD error
(Table I).  These metrics let the reproduction put numbers on the visual
claims — e.g. "for S=64 the photomosaic is very similar to the target".
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.types import AnyImage
from repro.utils.validation import check_image

__all__ = ["mae", "mse", "psnr", "ssim"]


def _pair(a: AnyImage, b: AnyImage) -> tuple[np.ndarray, np.ndarray]:
    a = check_image(a, "a")
    b = check_image(b, "b")
    if a.shape != b.shape:
        raise ValidationError(f"image shapes differ: {a.shape} vs {b.shape}")
    return a.astype(np.float64), b.astype(np.float64)


def mae(a: AnyImage, b: AnyImage) -> float:
    """Mean absolute error per pixel (the normalised form of paper Eq. 2)."""
    fa, fb = _pair(a, b)
    return float(np.mean(np.abs(fa - fb)))


def mse(a: AnyImage, b: AnyImage) -> float:
    """Mean squared error per pixel."""
    fa, fb = _pair(a, b)
    return float(np.mean((fa - fb) ** 2))


def psnr(a: AnyImage, b: AnyImage) -> float:
    """Peak signal-to-noise ratio in dB; ``inf`` for identical images."""
    err = mse(a, b)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10(255.0**2 / err)


def _box_filter(img: np.ndarray, win: int) -> np.ndarray:
    """Mean filter with a ``win x win`` box via a 2-D summed-area table."""
    integral = np.zeros((img.shape[0] + 1, img.shape[1] + 1), dtype=np.float64)
    np.cumsum(np.cumsum(img, axis=0), axis=1, out=integral[1:, 1:])
    h = img.shape[0] - win + 1
    w = img.shape[1] - win + 1
    sums = (
        integral[win : win + h, win : win + w]
        - integral[:h, win : win + w]
        - integral[win : win + h, :w]
        + integral[:h, :w]
    )
    return sums / (win * win)


def ssim(a: AnyImage, b: AnyImage, *, window: int = 8) -> float:
    """Mean structural similarity over sliding ``window``-pixel boxes.

    Uses the standard SSIM constants ``C1=(0.01*255)^2``, ``C2=(0.03*255)^2``
    with a uniform (box) window, which is the common fast variant.  Colour
    images are compared channel-wise and averaged.
    """
    fa, fb = _pair(a, b)
    if window < 2:
        raise ValidationError(f"window must be >= 2, got {window}")
    if min(fa.shape[0], fa.shape[1]) < window:
        raise ValidationError(
            f"images {fa.shape[:2]} are smaller than the SSIM window {window}"
        )
    if fa.ndim == 3:
        return float(
            np.mean([ssim(a[:, :, c], b[:, :, c], window=window) for c in range(3)])
        )
    c1 = (0.01 * 255) ** 2
    c2 = (0.03 * 255) ** 2
    mu_a = _box_filter(fa, window)
    mu_b = _box_filter(fb, window)
    var_a = _box_filter(fa * fa, window) - mu_a**2
    var_b = _box_filter(fb * fb, window) - mu_b**2
    cov = _box_filter(fa * fb, window) - mu_a * mu_b
    num = (2 * mu_a * mu_b + c1) * (2 * cov + c2)
    den = (mu_a**2 + mu_b**2 + c1) * (var_a + var_b + c2)
    return float(np.mean(num / den))
