"""Netpbm (PGM ``P5`` / PPM ``P6`` and their ASCII forms) codec.

Binary 8-bit Netpbm is the simplest lossless container for the library's
``uint8`` images; it is also what most academic imaging pipelines of the
paper's era consumed.  The reader accepts both binary (``P5``/``P6``) and
ASCII (``P2``/``P3``) variants with arbitrary whitespace and ``#`` comments;
the writers always emit the binary variants.
"""

from __future__ import annotations

import io
import os
import re

import numpy as np

from repro.exceptions import ImageFormatError
from repro.types import AnyImage
from repro.utils.validation import check_gray_image, check_image

__all__ = ["read_netpbm", "write_pgm", "write_ppm"]

_TOKEN_RE = re.compile(rb"\S+")


def _read_tokens(stream: io.BufferedIOBase, count: int) -> list[bytes]:
    """Read ``count`` whitespace-separated tokens, skipping ``#`` comments.

    Consumes exactly one whitespace byte after the final token (the Netpbm
    spec's single-separator rule before binary raster data).
    """
    tokens: list[bytes] = []
    current = b""
    in_comment = False
    while len(tokens) < count:
        byte = stream.read(1)
        if not byte:
            raise ImageFormatError("unexpected end of Netpbm header")
        if in_comment:
            if byte in b"\r\n":
                in_comment = False
            continue
        if byte == b"#":
            in_comment = True
            continue
        if byte.isspace():
            if current:
                tokens.append(current)
                current = b""
        else:
            current += byte
    return tokens


def read_netpbm(source: str | os.PathLike[str] | bytes) -> AnyImage:
    """Read a PGM/PPM file (binary or ASCII) into a ``uint8`` array.

    ``source`` may be a filesystem path or raw bytes.  Returns ``(H, W)``
    for PGM and ``(H, W, 3)`` for PPM.  Only ``maxval <= 255`` is supported
    (the library's pixel model is 8-bit).
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as fh:
            data = fh.read()
    else:
        data = source
    stream = io.BytesIO(data)
    magic = stream.read(2)
    if magic not in (b"P2", b"P3", b"P5", b"P6"):
        raise ImageFormatError(f"not a supported Netpbm file (magic {magic!r})")
    ascii_form = magic in (b"P2", b"P3")
    color = magic in (b"P3", b"P6")
    width_tok, height_tok, maxval_tok = _read_tokens(stream, 3)
    try:
        width, height, maxval = int(width_tok), int(height_tok), int(maxval_tok)
    except ValueError as exc:
        raise ImageFormatError("malformed Netpbm header") from exc
    if width <= 0 or height <= 0:
        raise ImageFormatError(f"invalid Netpbm dimensions {width}x{height}")
    if not (0 < maxval <= 255):
        raise ImageFormatError(f"unsupported Netpbm maxval {maxval} (need 1..255)")
    channels = 3 if color else 1
    count = width * height * channels
    if ascii_form:
        raster = stream.read()
        values = _TOKEN_RE.findall(raster)
        if len(values) < count:
            raise ImageFormatError(
                f"Netpbm raster truncated: expected {count} samples, got {len(values)}"
            )
        flat = np.array([int(v) for v in values[:count]], dtype=np.int64)
    else:
        raster = stream.read(count)
        if len(raster) < count:
            raise ImageFormatError(
                f"Netpbm raster truncated: expected {count} bytes, got {len(raster)}"
            )
        flat = np.frombuffer(raster, dtype=np.uint8, count=count).astype(np.int64)
    if flat.max(initial=0) > maxval:
        raise ImageFormatError("Netpbm sample exceeds declared maxval")
    if maxval != 255:
        # Rescale to the full 8-bit range, rounding half-up like most readers.
        flat = (flat * 255 + maxval // 2) // maxval
    image = flat.astype(np.uint8)
    if color:
        return image.reshape(height, width, 3)
    return image.reshape(height, width)


def write_pgm(path: str | os.PathLike[str], image: AnyImage) -> None:
    """Write a grayscale image as binary PGM (``P5``, maxval 255)."""
    image = check_gray_image(image)
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(np.ascontiguousarray(image).tobytes())


def write_ppm(path: str | os.PathLike[str], image: AnyImage) -> None:
    """Write a colour image as binary PPM (``P6``, maxval 255)."""
    image = check_image(image)
    if image.ndim != 3:
        raise ImageFormatError("write_ppm requires a (H, W, 3) colour image")
    header = f"P6\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(np.ascontiguousarray(image).tobytes())
