"""Grayscale/colour conversions.

The paper works on grayscale images; the colour extension it mentions in
Section II ("only by changing the error function") is supported throughout
the library, so conversions both ways live here.
"""

from __future__ import annotations

import numpy as np

from repro.types import ColorImage, GrayImage
from repro.utils.validation import check_image

__all__ = ["rgb_to_gray", "gray_to_rgb", "ensure_gray"]

# ITU-R BT.601 luma weights, the classic "television" grayscale used by the
# standard test-image sets the paper draws from.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_gray(image: ColorImage) -> GrayImage:
    """Convert an RGB image to grayscale using BT.601 luma weights."""
    image = check_image(image)
    if image.ndim == 2:
        return image
    gray = image.astype(np.float64) @ _LUMA_WEIGHTS
    return np.clip(np.rint(gray), 0, 255).astype(np.uint8)


def gray_to_rgb(image: GrayImage) -> ColorImage:
    """Replicate a grayscale image into three identical channels."""
    image = check_image(image)
    if image.ndim == 3:
        return image
    return np.repeat(image[:, :, None], 3, axis=2)


def ensure_gray(image: np.ndarray) -> GrayImage:
    """Return ``image`` as grayscale, converting from RGB if needed."""
    image = check_image(image)
    if image.ndim == 3:
        return rgb_to_gray(image)
    return image
