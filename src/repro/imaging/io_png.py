"""Minimal PNG codec (8-bit grayscale and truecolour, no interlacing).

Implements just enough of RFC 2083 for the library's needs: the writer emits
valid single-IDAT PNGs with filter type 0 on every scanline; the reader
handles 8-bit grayscale (colour type 0) and RGB (colour type 2) images with
all five scanline filters, multiple IDAT chunks, and verifies CRCs.

The codec exists so outputs of the examples and benchmarks open in any
viewer without PIL being installed.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np

from repro.exceptions import ImageFormatError
from repro.types import AnyImage
from repro.utils.validation import check_image

__all__ = ["read_png", "write_png"]

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _chunk(tag: bytes, payload: bytes) -> bytes:
    """Serialise one PNG chunk (length, tag, payload, CRC32)."""
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def write_png(path: str | os.PathLike[str], image: AnyImage, *, compress_level: int = 6) -> None:
    """Write ``image`` as an 8-bit PNG (grayscale or RGB).

    Every scanline uses filter type 0 (None): photomosaic outputs are noisy
    at tile boundaries, so fancier filters rarely help, and filter 0 keeps
    the encoder trivially correct.
    """
    image = check_image(image)
    height, width = image.shape[:2]
    color_type = 2 if image.ndim == 3 else 0
    ihdr = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    raw = np.ascontiguousarray(image).reshape(height, -1)
    # Prepend the per-scanline filter byte (0 = None).
    filtered = np.empty((height, raw.shape[1] + 1), dtype=np.uint8)
    filtered[:, 0] = 0
    filtered[:, 1:] = raw
    idat = zlib.compress(filtered.tobytes(), compress_level)
    with open(path, "wb") as fh:
        fh.write(_PNG_SIGNATURE)
        fh.write(_chunk(b"IHDR", ihdr))
        fh.write(_chunk(b"IDAT", idat))
        fh.write(_chunk(b"IEND", b""))


def _unfilter(filtered: np.ndarray, height: int, stride: int, bpp: int) -> np.ndarray:
    """Undo PNG scanline filtering; returns raw bytes of shape (H, stride)."""
    out = np.zeros((height, stride), dtype=np.uint8)
    for row in range(height):
        ftype = int(filtered[row, 0])
        line = filtered[row, 1:].astype(np.int32)
        prev = out[row - 1].astype(np.int32) if row > 0 else np.zeros(stride, dtype=np.int32)
        if ftype == 0:  # None
            recon = line
        elif ftype == 1:  # Sub
            recon = line.copy()
            for i in range(bpp, stride):
                recon[i] = (recon[i] + recon[i - bpp]) & 0xFF
        elif ftype == 2:  # Up
            recon = (line + prev) & 0xFF
        elif ftype == 3:  # Average
            recon = line.copy()
            for i in range(stride):
                left = recon[i - bpp] if i >= bpp else 0
                recon[i] = (recon[i] + (left + prev[i]) // 2) & 0xFF
        elif ftype == 4:  # Paeth
            recon = line.copy()
            for i in range(stride):
                left = int(recon[i - bpp]) if i >= bpp else 0
                up = int(prev[i])
                upleft = int(prev[i - bpp]) if i >= bpp else 0
                p = left + up - upleft
                pa, pb, pc = abs(p - left), abs(p - up), abs(p - upleft)
                if pa <= pb and pa <= pc:
                    pred = left
                elif pb <= pc:
                    pred = up
                else:
                    pred = upleft
                recon[i] = (recon[i] + pred) & 0xFF
        else:
            raise ImageFormatError(f"unsupported PNG filter type {ftype}")
        out[row] = recon.astype(np.uint8)
    return out


def read_png(source: str | os.PathLike[str] | bytes) -> AnyImage:
    """Read an 8-bit grayscale or RGB PNG into a ``uint8`` array."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "rb") as fh:
            data = fh.read()
    else:
        data = source
    if data[:8] != _PNG_SIGNATURE:
        raise ImageFormatError("not a PNG file (bad signature)")
    pos = 8
    width = height = None
    color_type = bit_depth = None
    idat_parts: list[bytes] = []
    while pos + 8 <= len(data):
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        if len(payload) != length:
            raise ImageFormatError("truncated PNG chunk")
        (crc,) = struct.unpack(">I", data[pos + 8 + length : pos + 12 + length])
        if crc != (zlib.crc32(tag + payload) & 0xFFFFFFFF):
            raise ImageFormatError(f"CRC mismatch in PNG chunk {tag!r}")
        pos += 12 + length
        if tag == b"IHDR":
            width, height, bit_depth, color_type, comp, filt, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if bit_depth != 8:
                raise ImageFormatError(f"unsupported PNG bit depth {bit_depth} (need 8)")
            if color_type not in (0, 2):
                raise ImageFormatError(
                    f"unsupported PNG colour type {color_type} (need 0 or 2)"
                )
            if comp != 0 or filt != 0:
                raise ImageFormatError("unsupported PNG compression/filter method")
            if interlace != 0:
                raise ImageFormatError("interlaced PNG not supported")
        elif tag == b"IDAT":
            idat_parts.append(payload)
        elif tag == b"IEND":
            break
    if width is None or height is None:
        raise ImageFormatError("PNG missing IHDR chunk")
    if not idat_parts:
        raise ImageFormatError("PNG missing IDAT data")
    channels = 3 if color_type == 2 else 1
    stride = width * channels
    raw = zlib.decompress(b"".join(idat_parts))
    expected = height * (stride + 1)
    if len(raw) != expected:
        raise ImageFormatError(
            f"PNG raster has {len(raw)} bytes, expected {expected}"
        )
    filtered = np.frombuffer(raw, dtype=np.uint8).reshape(height, stride + 1)
    image = _unfilter(filtered, height, stride, channels)
    if channels == 3:
        return image.reshape(height, width, 3)
    return image.reshape(height, width)
