"""Extension-dispatched image load/save helpers."""

from __future__ import annotations

import os

from repro.exceptions import ImageFormatError
from repro.imaging.io_bmp import write_bmp
from repro.imaging.io_pgm import read_netpbm, write_pgm, write_ppm
from repro.imaging.io_png import read_png, write_png
from repro.types import AnyImage

__all__ = ["load_image", "save_image"]

_READERS = {
    ".pgm": read_netpbm,
    ".ppm": read_netpbm,
    ".pnm": read_netpbm,
    ".png": read_png,
}


def load_image(path: str | os.PathLike[str]) -> AnyImage:
    """Load an image, dispatching the codec on the file extension.

    Supported: ``.pgm``/``.ppm``/``.pnm`` (Netpbm) and ``.png``.
    """
    ext = os.path.splitext(os.fspath(path))[1].lower()
    reader = _READERS.get(ext)
    if reader is None:
        raise ImageFormatError(
            f"cannot read {ext!r} files (supported: {sorted(_READERS)})"
        )
    return reader(path)


def save_image(path: str | os.PathLike[str], image: AnyImage) -> None:
    """Save an image, dispatching the codec on the file extension.

    Supported: ``.pgm`` (gray), ``.ppm`` (colour), ``.png`` and ``.bmp``.
    """
    ext = os.path.splitext(os.fspath(path))[1].lower()
    if ext == ".png":
        write_png(path, image)
    elif ext == ".bmp":
        write_bmp(path, image)
    elif ext == ".pgm":
        write_pgm(path, image)
    elif ext == ".ppm":
        write_ppm(path, image)
    else:
        raise ImageFormatError(
            f"cannot write {ext!r} files (supported: .png .bmp .pgm .ppm)"
        )
