"""Command-line interface.

Subcommands
-----------
``generate``
    Produce one photomosaic from two images (paths or standard-image
    names) and write the output plus, optionally, the adjusted input.
``bench``
    Regenerate one or all of the paper's tables at the chosen profile.
``demo``
    Write a gallery of example outputs (the Figs. 2/7/8 analogues).
``batch``
    Run a JSON manifest of jobs through the service worker pool with the
    shared artifact cache, then write results and a metrics report
    (see docs/service.md).
``serve``
    Streaming mode: read JSON job lines from stdin (or a manifest),
    stream NDJSON progress events — state transitions, retries,
    per-phase timings, 2-opt sweeps — to stdout as they happen, with
    bounded admission and mid-job cancellation
    (see docs/service.md, "Streaming gateway").
``serve-http``
    Network mode: the same streaming gateway behind a dependency-free
    HTTP/1.1 + WebSocket server — submit jobs with ``POST /v1/jobs``,
    follow them via NDJSON or WebSocket event streams with
    ``?from_seq`` resume, scrape ``/metrics`` in Prometheus text format
    (see docs/service.md, "HTTP API").

Examples::

    photomosaic generate --input portrait --target sailboat \
        --size 512 --tile-size 16 --algorithm parallel --output mosaic.png
    photomosaic bench --table 2
    photomosaic demo --outdir gallery/
    photomosaic batch --manifest jobs.json --outdir results/ --workers 4
    printf '%s\\n' '{"input": "portrait", "target": "sailboat"}' \
        | photomosaic serve --workers 2 --max-pending 8
    photomosaic serve-http --port 8765 --workers 2 --max-pending 8
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.benchharness import report
from repro.imaging import (
    STANDARD_IMAGES,
    ensure_gray,
    load_image,
    save_image,
    standard_image,
)
from repro.mosaic import MosaicConfig, PhotomosaicGenerator

__all__ = ["main", "build_parser"]


def _resolve_image(spec: str, size: int):
    """Interpret ``spec`` as a standard-image name or a file path."""
    if spec in STANDARD_IMAGES:
        return standard_image(spec, size)
    if not os.path.exists(spec):
        raise SystemExit(
            f"error: {spec!r} is neither a file nor a standard image "
            f"({', '.join(STANDARD_IMAGES)})"
        )
    return ensure_gray(load_image(spec))


def _cmd_generate(args: argparse.Namespace) -> int:
    input_image = _resolve_image(args.input, args.size)
    target_image = _resolve_image(args.target, args.size)
    if input_image.shape != target_image.shape:
        raise SystemExit(
            f"error: input {input_image.shape} and target {target_image.shape} "
            "must have identical shapes (resize beforehand)"
        )
    config = MosaicConfig(
        tile_size=args.tile_size,
        algorithm=args.algorithm,
        metric=args.metric,
        solver=args.solver,
        histogram_match=not args.no_histogram_match,
        array_backend=args.backend,
        prune_sweeps=not args.no_prune,
        shortlist_top_k=args.shortlist_top_k,
        sketch=args.sketch,
        shortlist_seed=args.shortlist_seed,
    )
    result = PhotomosaicGenerator(config).generate(input_image, target_image)
    save_image(args.output, result.image)
    print(f"wrote {args.output}")
    print(f"algorithm       : {args.algorithm}")
    if "array_backend" in result.meta:
        print(f"array backend   : {result.meta['array_backend']}")
    print(f"tiles           : {result.permutation.shape[0]}")
    print(f"total error     : {result.total_error}")
    if result.sweeps is not None:
        print(f"sweeps (k)      : {result.sweeps}")
    if "pairs_skipped" in result.meta:
        evaluated = result.meta["pairs_evaluated"]
        skipped = result.meta["pairs_skipped"]
        print(f"pairs evaluated : {evaluated} ({skipped} pruned)")
    if "shortlist" in result.meta:
        shortlist = result.meta["shortlist"]
        frac = shortlist["pairs_evaluated"] / max(shortlist["pairs_total"], 1)
        print(
            f"shortlist       : top_k={shortlist['top_k']} "
            f"({frac:.1%} of pairs scored, "
            f"{shortlist['fallback']} fallback)"
        )
    for phase, seconds in result.timings.phases.items():
        print(f"{phase:<16}: {seconds:.4f}s")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    profile = args.profile
    tables = {
        "1": report.table1,
        "2": report.table2,
        "3": report.table3,
        "4": report.table4,
        "all": report.all_tables,
    }
    print(tables[args.table](profile))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Deferred import keeps CLI startup fast for the other subcommands.
    from repro.benchharness.workloads import PAPER_PAIRS

    os.makedirs(args.outdir, exist_ok=True)
    config = MosaicConfig(tile_size=args.size // 32, algorithm="parallel")
    generator = PhotomosaicGenerator(config)
    for input_name, target_name in PAPER_PAIRS:
        inp = standard_image(input_name, args.size)
        tgt = standard_image(target_name, args.size)
        result = generator.generate(inp, tgt)
        base = os.path.join(args.outdir, f"{input_name}_to_{target_name}")
        save_image(base + "_input.png", inp)
        save_image(base + "_target.png", tgt)
        save_image(base + "_mosaic.png", result.image)
        print(f"{input_name} -> {target_name}: error {result.total_error}, "
              f"k={result.sweeps}  ({base}_mosaic.png)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.benchharness.export import generate_report

    report = generate_report(args.profile)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(report)
    print(f"wrote {args.out}")
    return 0


def _cmd_video(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.mosaic.video import VideoMosaicSession

    input_image = _resolve_image(args.input, args.size)
    base_target = _resolve_image(args.target, args.size)
    session = VideoMosaicSession(input_image, args.tile_size)
    if args.outdir:
        os.makedirs(args.outdir, exist_ok=True)
    for index in range(args.frames):
        # Simple synthetic motion: drifting brightness over the target.
        shift = int(20 * np.sin(2 * np.pi * index / max(1, args.frames)))
        frame = np.clip(base_target.astype(int) + shift, 0, 255).astype(np.uint8)
        result = session.process_frame(frame)
        line = (
            f"frame {index:3d}: error {result.total_error:>10}  "
            f"k={result.sweeps}  "
            f"step3 {result.timings.get('step3_rearrangement') * 1000:6.1f} ms"
        )
        if args.outdir:
            path = os.path.join(args.outdir, f"frame_{index:03d}.png")
            save_image(path, result.image)
            line += f"  -> {path}"
        print(line)
    return 0


def _build_cache(args: argparse.Namespace, metrics):
    """Artifact cache per the CLI cache flags (shared by batch and serve)."""
    from repro.service import ArtifactCache, CacheStack, DiskCacheStore

    memory_cache = ArtifactCache(
        max_bytes=args.cache_mb * 2**20,
        spill_dir=getattr(args, "spill_dir", None),
    )
    if args.cache_dir:
        # Two-tier stack: this process's LRU in front, one shared
        # disk store behind — process workers pickle the stack and
        # share artifacts through the store (see docs/service.md).
        return CacheStack(
            memory=memory_cache,
            disk=DiskCacheStore(
                args.cache_dir,
                max_bytes=args.cache_budget * 2**20,
                metrics=metrics,
            ),
        )
    return memory_cache


def _scheduler_kwargs(args: argparse.Namespace) -> dict:
    """WorkerPool scheduling kwargs from the shared CLI flags.

    ``--tier-threshold 0`` (the default) disables cost-based routing and
    ``--batch-window 0`` disables Step-2 micro-batching, so existing
    invocations behave exactly as before.
    """
    tiering = None
    if args.tier_threshold > 0:
        from repro.service import BackendTieringPolicy

        tiering = BackendTieringPolicy(
            threshold_pairs=args.tier_threshold,
            large_backend=args.tier_large_backend,
        )
    return {
        "tiering": tiering,
        "batch_window": args.batch_window,
        "batch_max": args.batch_max,
    }


def _cmd_batch(args: argparse.Namespace) -> int:
    # Deferred import keeps CLI startup fast for the other subcommands.
    import json

    from repro.service import (
        JobState,
        MetricsRegistry,
        MosaicJobRunner,
        WorkerPool,
        load_manifest,
    )

    specs = load_manifest(args.manifest, seed=args.seed)
    os.makedirs(args.outdir, exist_ok=True)
    metrics = MetricsRegistry()
    cache = _build_cache(args, metrics)
    pool = WorkerPool(
        workers=args.workers,
        kind=args.executor,
        runner=MosaicJobRunner(
            cache=cache, outdir=args.outdir, default_backend=args.backend
        ),
        cache=cache,
        metrics=metrics,
        max_retries=args.retries,
        default_timeout=args.timeout,
        seed=args.seed,
        **_scheduler_kwargs(args),
    )
    records = pool.run(specs)
    pool.shutdown()

    for record in records:
        line = (
            f"{record.spec.name:<16} {record.state.value:<9} "
            f"attempts={record.attempts}"
        )
        if record.state is JobState.DONE:
            line += (
                f"  error={record.result.total_error}"
                f"  latency={record.latency:.3f}s"
            )
        elif record.error:
            line += f"  ({record.error})"
        print(line)

    cache_stats = cache.stats
    if args.cache_dir:
        # Fold the (parent-process) memory-tier tallies into counters so
        # the JSON report carries them; the disk tier already ticks its
        # counters live through the registry.
        metrics.merge_counts(
            {
                "cache_mem_hits_total": cache_stats.memory.hits,
                "cache_mem_misses_total": cache_stats.memory.misses,
                "cache_mem_evictions_total": cache_stats.memory.evictions,
            }
        )
    report = metrics.as_dict(
        extra={
            "cache": cache_stats.as_dict(),
            "pool": {
                "workers": args.workers,
                "executor": args.executor,
                "seed": args.seed,
                "timings": pool.timings.as_dict(),
            },
            "jobs": [record.summary() for record in records],
        }
    )
    metrics_path = args.metrics or os.path.join(args.outdir, "metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print()
    print(metrics.summary_table())
    print(f"cache hit rate  : {cache_stats.hit_rate:.3f}")
    # Artifact outcomes travel back with each job result, so this rate is
    # accurate even when lookups happened inside process workers (where
    # the parent's cache object never saw them).
    artifact_hits = report["counters"].get("cache_artifact_hits", 0)
    artifact_misses = report["counters"].get("cache_artifact_misses", 0)
    if artifact_hits + artifact_misses:
        rate = artifact_hits / (artifact_hits + artifact_misses)
        print(f"artifact hit rate: {rate:.3f} (all workers)")
    if args.cache_dir and cache_stats.disk is not None:
        print(
            f"disk cache      : {cache_stats.disk.entries} entries, "
            f"{cache_stats.disk.current_bytes / 2**20:.1f} MiB "
            f"(budget {args.cache_budget} MiB) at {args.cache_dir}"
        )
    print(f"wrote {metrics_path}")
    failed = sum(1 for record in records if record.state is JobState.FAILED)
    return 1 if failed else 0


def _install_drain_handlers(loop, on_first, on_second) -> None:
    """SIGINT/SIGTERM → graceful drain (twice → cooperative cancel).

    ``on_first`` runs on the first signal (stop intake, let running jobs
    finish so every stream still ends with its terminal event);
    ``on_second`` on any further signal (cancel in-flight jobs, which
    terminates streams with ``CANCELLED`` instead of tearing down the
    loop mid-event).  On platforms without ``add_signal_handler`` this
    is a no-op and Ctrl-C keeps its default behaviour.
    """
    import signal

    fired = {"count": 0}

    def handler() -> None:
        fired["count"] += 1
        if fired["count"] == 1:
            on_first()
        else:
            on_second()

    for signame in ("SIGINT", "SIGTERM"):
        signum = getattr(signal, signame, None)
        if signum is None:
            continue
        try:
            loop.add_signal_handler(signum, handler)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            return


def _cmd_serve(args: argparse.Namespace) -> int:
    # Deferred imports: asyncio + service only when actually serving.
    import asyncio
    import json
    import threading

    from repro.exceptions import JobError
    from repro.service import (
        AdmissionRejected,
        JobSpec,
        JobState,
        MetricsRegistry,
        MosaicGateway,
        MosaicJobRunner,
        WorkerPool,
        load_manifest,
    )

    def emit_line(payload: dict) -> None:
        sys.stdout.write(json.dumps(payload, default=str) + "\n")
        sys.stdout.flush()

    async def pump(stream) -> None:
        async for event in stream:
            emit_line(event.to_dict())

    async def serve() -> int:
        os.makedirs(args.outdir, exist_ok=True)
        metrics = MetricsRegistry()
        cache = _build_cache(args, metrics)
        pool = WorkerPool(
            workers=args.workers,
            kind=args.executor,
            runner=MosaicJobRunner(
                cache=cache, outdir=args.outdir, default_backend=args.backend
            ),
            cache=cache,
            metrics=metrics,
            max_retries=args.retries,
            default_timeout=args.timeout,
            seed=args.seed,
            **_scheduler_kwargs(args),
        )
        gateway = MosaicGateway(
            pool,
            max_pending=args.max_pending,
            metrics=metrics,
            event_log=args.event_log,
        )
        pumps: list[asyncio.Task] = []
        streams = []
        by_name: dict[str, str] = {}  # job name -> job_id, for cancel lines
        loop = asyncio.get_running_loop()
        stop_intake = asyncio.Event()

        async def cancel_in_flight() -> None:
            for stream in list(streams):
                await gateway.cancel(stream.job_id)

        def on_first_signal() -> None:
            emit_line(
                {
                    "job_id": None,
                    "seq": None,
                    "kind": "draining",
                    "terminal": False,
                    "payload": {"pending": gateway.pending},
                }
            )
            stop_intake.set()

        def on_second_signal() -> None:
            loop.create_task(cancel_in_flight())

        _install_drain_handlers(loop, on_first_signal, on_second_signal)

        async def admit(spec: JobSpec, wait: bool) -> None:
            try:
                if wait:
                    stream = await gateway.submit_when_admitted(spec)
                else:
                    stream = await gateway.submit(spec)
            except AdmissionRejected as exc:
                # Typed backpressure, surfaced as its own NDJSON line so a
                # client can tell "shed" from "accepted" per job.
                emit_line(
                    {
                        "job_id": None,
                        "seq": None,
                        "kind": "rejected",
                        "terminal": True,
                        "payload": {"name": spec.name, "error": str(exc)},
                    }
                )
                return
            if spec.name:
                by_name[spec.name] = stream.job_id
            streams.append(stream)
            pumps.append(asyncio.create_task(pump(stream)))

        def read_stdin_into(queue: asyncio.Queue) -> None:
            # Daemon thread: a blocked readline must never hold up a
            # drain-triggered exit (executor threads are joined at
            # interpreter shutdown, a daemon thread is not).
            for raw_line in sys.stdin:
                loop.call_soon_threadsafe(queue.put_nowait, raw_line)
            loop.call_soon_threadsafe(queue.put_nowait, None)

        try:
            if args.manifest:
                # Manifest intake blocks on admission instead of shedding:
                # the bound then acts as a streaming window over the file.
                for spec in load_manifest(args.manifest, seed=args.seed):
                    if stop_intake.is_set():
                        break
                    await admit(spec, wait=True)
            else:
                lines: asyncio.Queue = asyncio.Queue()
                threading.Thread(
                    target=read_stdin_into, args=(lines,), daemon=True
                ).start()
                while not stop_intake.is_set():
                    get_line = asyncio.ensure_future(lines.get())
                    stopped = asyncio.ensure_future(stop_intake.wait())
                    done, pending = await asyncio.wait(
                        {get_line, stopped}, return_when=asyncio.FIRST_COMPLETED
                    )
                    for task in pending:
                        task.cancel()
                    if get_line not in done:
                        break  # drain signal won the race
                    line = get_line.result()
                    if line is None:  # EOF
                        break
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        if not isinstance(entry, dict):
                            raise JobError("job line must be a JSON object")
                        if "cancel" in entry:
                            target = str(entry["cancel"])
                            ok = await gateway.cancel(by_name.get(target, target))
                            emit_line(
                                {
                                    "job_id": by_name.get(target, target),
                                    "seq": None,
                                    "kind": "cancel_request",
                                    "terminal": False,
                                    "payload": {"accepted": ok},
                                }
                            )
                            continue
                        spec = JobSpec(**entry)
                    except (TypeError, ValueError, JobError) as exc:
                        emit_line(
                            {
                                "job_id": None,
                                "seq": None,
                                "kind": "invalid",
                                "terminal": True,
                                "payload": {"line": line, "error": str(exc)},
                            }
                        )
                        continue
                    await admit(spec, wait=False)
            # Graceful end (EOF or drain signal): every admitted stream
            # still runs to its terminal event before the loop exits.
            await gateway.aclose(drain=True)
        finally:
            pool.shutdown()
            for task in pumps:
                await task
        if args.metrics:
            report = metrics.as_dict(
                extra={"jobs": [s.record.summary() for s in streams]}
            )
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
        failed = sum(1 for s in streams if s.record.state is JobState.FAILED)
        return 1 if failed else 0

    return asyncio.run(serve())


def _cmd_serve_http(args: argparse.Namespace) -> int:
    # Deferred imports: asyncio + the http front only when serving.
    import asyncio
    import json

    from repro.service import (
        JobState,
        MetricsRegistry,
        MosaicGateway,
        MosaicJobRunner,
        WorkerPool,
    )
    from repro.service.http import HttpFront, HttpFrontConfig

    token = args.auth_token or os.environ.get("PHOTOMOSAIC_TOKEN") or None

    async def serve() -> int:
        os.makedirs(args.outdir, exist_ok=True)
        metrics = MetricsRegistry()
        cache = _build_cache(args, metrics)
        pool = WorkerPool(
            workers=args.workers,
            kind=args.executor,
            runner=MosaicJobRunner(
                cache=cache, outdir=args.outdir, default_backend=args.backend
            ),
            cache=cache,
            metrics=metrics,
            max_retries=args.retries,
            default_timeout=args.timeout,
            seed=args.seed,
            **_scheduler_kwargs(args),
        )
        gateway = MosaicGateway(
            pool,
            max_pending=args.max_pending,
            metrics=metrics,
            event_log=args.event_log,
        )
        front = HttpFront(
            gateway,
            config=HttpFrontConfig(
                host=args.host,
                port=args.port,
                auth_token=token,
                max_body_bytes=args.max_body_kb * 1024,
                max_concurrent_streams=args.max_streams,
                retry_after=args.retry_after,
            ),
            metrics=metrics,
        )
        await front.start()
        # First stdout line: where we actually bound (--port 0 picks a
        # free port); scripts parse this to find the server.
        print(
            json.dumps(
                {
                    "kind": "listening",
                    "host": args.host,
                    "port": front.port,
                    "auth": bool(token),
                    "workers": args.workers,
                    "max_pending": args.max_pending,
                }
            ),
            flush=True,
        )

        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()

        async def cancel_in_flight() -> None:
            for job in front.broker.jobs():
                if job["state"] in (JobState.PENDING.value, JobState.RUNNING.value):
                    await gateway.cancel(job["job_id"])

        def on_first_signal() -> None:
            front.begin_drain()
            stopping.set()

        def on_second_signal() -> None:
            loop.create_task(cancel_in_flight())

        _install_drain_handlers(loop, on_first_signal, on_second_signal)
        await stopping.wait()
        # Drain order matters: finish (or cancel) the jobs first so event
        # streams reach their terminal events, then let the open HTTP
        # connections flush and close, then stop the workers.
        await gateway.aclose(drain=True)
        await front.broker.drain()
        await front.aclose()
        pool.shutdown()
        if args.metrics:
            report = metrics.as_dict(extra={"jobs": front.broker.jobs()})
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
        print(json.dumps({"kind": "drained", "jobs": len(front.broker.jobs())}),
              flush=True)
        return 0

    return asyncio.run(serve())


def _cmd_serve_node(args: argparse.Namespace) -> int:
    """One cluster worker node: a serve-http stack that joins a coordinator."""
    import asyncio
    import json

    from repro.service import (
        ArtifactCache,
        CacheStack,
        DiskCacheStore,
        JobState,
        MetricsRegistry,
        MosaicGateway,
        MosaicJobRunner,
        WorkerPool,
    )
    from repro.service.cluster import (
        CacheLeaseTable,
        ClusterCacheStore,
        ClusterNodeApp,
        NodeFront,
        PacedRunner,
        PeerDirectory,
    )
    from repro.service.http import HttpFrontConfig

    token = args.auth_token or os.environ.get("PHOTOMOSAIC_TOKEN") or None
    node_id = args.node_id or f"node-{os.getpid()}"
    coordinator_host, _, coordinator_port = args.coordinator.rpartition(":")
    if not coordinator_host or not coordinator_port.isdigit():
        print(
            f"--coordinator must be host:port, got {args.coordinator!r}",
            file=sys.stderr,
        )
        return 2

    async def serve() -> int:
        os.makedirs(args.outdir, exist_ok=True)
        metrics = MetricsRegistry()
        directory = PeerDirectory(node_id)
        memory = ArtifactCache(max_bytes=args.cache_mb * 2**20)
        cluster_cache = None
        if args.cache_dir:
            cluster_cache = ClusterCacheStore(
                DiskCacheStore(
                    args.cache_dir,
                    max_bytes=args.cache_budget * 2**20,
                    metrics=metrics,
                ),
                directory,
                token=token,
                metrics=metrics,
            )
            cache = CacheStack(memory=memory, disk=cluster_cache)
        else:
            cache = memory  # no shared tier: purely node-local caching
        runner = MosaicJobRunner(
            cache=cache, outdir=args.outdir, default_backend=args.backend
        )
        if args.job_floor_seconds > 0:
            # Capacity-bench pacing; the floor is disclosed in BENCH JSON.
            runner = PacedRunner(runner, args.job_floor_seconds)
        pool = WorkerPool(
            workers=args.workers,
            kind=args.executor,
            runner=runner,
            cache=cache,
            metrics=metrics,
            max_retries=args.retries,
            default_timeout=args.timeout,
            seed=args.seed,
            **_scheduler_kwargs(args),
        )
        gateway = MosaicGateway(pool, max_pending=args.max_pending, metrics=metrics)
        front = NodeFront(
            gateway,
            node_id=node_id,
            directory=directory,
            cluster_cache=cluster_cache,
            leases=CacheLeaseTable(ttl=args.lease_ttl),
            config=HttpFrontConfig(
                host=args.host,
                port=args.port,
                auth_token=token,
                max_body_bytes=args.max_body_kb * 1024,
                max_concurrent_streams=args.max_streams,
                retry_after=args.retry_after,
            ),
            metrics=metrics,
        )
        await front.start()
        app = ClusterNodeApp(
            front,
            coordinator_host=coordinator_host,
            coordinator_port=int(coordinator_port),
            advertise_host=args.advertise_host,
            token=token,
            heartbeat_interval=args.heartbeat_interval,
        )
        print(
            json.dumps(
                {
                    "kind": "listening",
                    "role": "node",
                    "node_id": node_id,
                    "host": args.host,
                    "port": front.port,
                    "coordinator": args.coordinator,
                    "auth": bool(token),
                    "workers": args.workers,
                }
            ),
            flush=True,
        )
        await app.start()

        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()

        async def cancel_in_flight() -> None:
            for job in front.broker.jobs():
                if job["state"] in (JobState.PENDING.value, JobState.RUNNING.value):
                    await gateway.cancel(job["job_id"])

        _install_drain_handlers(
            loop,
            lambda: (front.begin_drain(), stopping.set()),
            lambda: loop.create_task(cancel_in_flight()),
        )
        await stopping.wait()
        await app.stop()  # deregister first: no re-dispatch churn on drain
        await gateway.aclose(drain=True)
        await front.broker.drain()
        await front.aclose()
        pool.shutdown()
        print(json.dumps({"kind": "drained", "node_id": node_id}), flush=True)
        return 0

    return asyncio.run(serve())


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    """The cluster coordinator front (see docs/service.md, multi-node)."""
    import asyncio
    import json

    from repro.service import MetricsRegistry
    from repro.service.cluster import ClusterCoordinator, CoordinatorConfig

    token = args.auth_token or os.environ.get("PHOTOMOSAIC_TOKEN") or None

    async def serve() -> int:
        metrics = MetricsRegistry()
        coordinator = ClusterCoordinator(
            config=CoordinatorConfig(
                host=args.host,
                port=args.port,
                auth_token=token,
                heartbeat_deadline=args.heartbeat_deadline,
                max_pending=args.max_pending,
                retry_after=args.retry_after,
            ),
            metrics=metrics,
        )
        await coordinator.start()
        print(
            json.dumps(
                {
                    "kind": "listening",
                    "role": "coordinator",
                    "host": args.host,
                    "port": coordinator.port,
                    "auth": bool(token),
                    "heartbeat_deadline": args.heartbeat_deadline,
                }
            ),
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        _install_drain_handlers(
            loop,
            lambda: (coordinator.begin_drain(), stopping.set()),
            lambda: stopping.set(),
        )
        await stopping.wait()
        await coordinator.aclose()
        if args.metrics:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                json.dump(metrics.as_dict(), fh, indent=2)
                fh.write("\n")
        print(json.dumps({"kind": "drained", "role": "coordinator"}), flush=True)
        return 0

    return asyncio.run(serve())


def _library_cache(args):
    """Optional disk cache for library ingestion (``--cache-dir``)."""
    if not getattr(args, "cache_dir", None):
        return None
    from repro.service import DiskCacheStore

    return DiskCacheStore(args.cache_dir, max_bytes=args.cache_budget * 2**20)


def _cmd_library_build(args: argparse.Namespace) -> int:
    from repro.library import LibraryIndex

    index, stats = LibraryIndex.from_directory(
        args.source,
        tile_size=args.tile_size,
        thumb_size=args.thumb_size,
        sketch_grid=args.sketch_grid,
        cache=_library_cache(args),
    )
    index.save(args.output)
    print(f"library index   : {args.output}")
    print(f"images          : {index.size}")
    print(f"match tile      : {index.tile_size}x{index.tile_size}")
    print(f"render tile     : {index.thumb_size}x{index.thumb_size}")
    print(f"ingest hit rate : {stats.hit_rate:.3f} "
          f"({stats.hits} hits / {stats.misses} misses)")
    print(f"fingerprint     : {index.content_fingerprint()}")
    return 0


def _cmd_mosaic(args: argparse.Namespace) -> int:
    from repro.imaging import save_image
    from repro.library import LibraryConfig, LibraryIndex, LibraryMosaicEngine
    from repro.service.workers import resolve_image

    source = args.library
    tile_size = args.tile_size
    sketch_grid = args.sketch_grid
    thumb_size = args.thumb_size
    if source.endswith(".npz"):
        # Geometry lives in the index; deriving it here means a prebuilt
        # index "just works" without repeating the build-time flags.
        source = LibraryIndex.load(source)
        tile_size = source.tile_size
        thumb_size = source.thumb_size
        sketch_grid = source.sketch_grid
    config = LibraryConfig(
        tile_size=tile_size,
        thumb_size=thumb_size,
        sketch_grid=sketch_grid,
        metric=args.metric,
        top_k=args.top_k,
        clusters=args.clusters,
        repetition_penalty=args.penalty,
        assigner=args.assigner,
        refine_iters=args.refine_iters,
        color_adjust=args.color_adjust,
        out_size=args.out_size,
        array_backend=args.backend,
    )
    engine = LibraryMosaicEngine(config, cache=_library_cache(args))
    target = resolve_image(args.target, args.size)

    def observer(kind: str, payload: dict) -> None:
        if kind == "phase":
            extras = {
                k: v
                for k, v in payload.items()
                if k not in ("phase", "seconds") and not isinstance(v, float)
            }
            detail = " ".join(f"{k}={v}" for k, v in sorted(extras.items()))
            print(f"  {payload['phase']:<10} {payload['seconds']:.3f}s  {detail}")

    result = engine.generate(source, target, seed=args.seed, observer=observer)
    save_image(args.output, result.image)
    lib = result.meta["library"]
    print(f"wrote {args.output} ({result.image.shape[0]}x{result.image.shape[1]})")
    print(f"total match cost: {result.total_error}")
    print(f"tiles used      : {lib['unique_tiles']} unique of "
          f"{lib['library_size']} (max reuse {lib['max_reuse']})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="photomosaic",
        description="Photomosaic generation by rearranging subimages "
        "(reproduction of Yang, Ito & Nakano 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate one photomosaic")
    gen.add_argument("--input", required=True, help="input image path or standard name")
    gen.add_argument("--target", required=True, help="target image path or standard name")
    gen.add_argument("--output", default="mosaic.png", help="output file (.png/.bmp/.pgm)")
    gen.add_argument("--size", type=int, default=512, help="side for standard images")
    gen.add_argument("--tile-size", type=int, default=16, help="tile side M")
    gen.add_argument(
        "--algorithm",
        choices=("optimization", "approximation", "parallel"),
        default="parallel",
    )
    gen.add_argument("--metric", default="sad", help="cost metric name")
    gen.add_argument("--solver", default="scipy", help="assignment solver name")
    gen.add_argument(
        "--no-histogram-match",
        action="store_true",
        help="skip the Section II intensity adjustment",
    )
    gen.add_argument(
        "--backend",
        choices=("numpy", "cupy", "auto"),
        default="numpy",
        help="array backend for the Step-2/Step-3 hot paths: numpy, cupy "
        "(GPU, when installed), or auto (best available) — see "
        "docs/performance.md",
    )
    gen.add_argument(
        "--no-prune",
        action="store_true",
        help="disable active-pair sweep pruning (results are bit-identical "
        "either way; only useful for measuring the unpruned baseline)",
    )
    gen.add_argument(
        "--shortlist-top-k",
        type=int,
        default=0,
        help="sparse Step 2: exact-score only this many sketch-shortlisted "
        "candidate positions per tile (0 = full dense matrix; values >= "
        "the tile count reproduce the dense result bit for bit — see "
        "docs/performance.md)",
    )
    gen.add_argument(
        "--sketch",
        choices=("mean", "pyramid", "pca"),
        default="mean",
        help="sketch kind for shortlisting (never affects final costs, "
        "only which pairs get exact-scored)",
    )
    gen.add_argument(
        "--shortlist-seed",
        type=int,
        default=None,
        help="seed for the shortlister's k-means (fixed seed = "
        "bit-reproducible sparse runs)",
    )
    gen.set_defaults(func=_cmd_generate)

    bench = sub.add_parser("bench", help="regenerate the paper's tables")
    bench.add_argument("--table", choices=("1", "2", "3", "4", "all"), default="all")
    bench.add_argument("--profile", choices=("default", "full"), default=None)
    bench.set_defaults(func=_cmd_bench)

    demo = sub.add_parser("demo", help="write the example gallery")
    demo.add_argument("--outdir", default="gallery")
    demo.add_argument("--size", type=int, default=512)
    demo.set_defaults(func=_cmd_demo)

    export = sub.add_parser(
        "export", help="run all experiments and write EXPERIMENTS.md"
    )
    export.add_argument("--profile", choices=("default", "full"), default="default")
    export.add_argument("--out", default="EXPERIMENTS.md")
    export.set_defaults(func=_cmd_export)

    video = sub.add_parser(
        "video", help="run the real-time video-mosaic scenario"
    )
    video.add_argument("--input", default="portrait")
    video.add_argument("--target", default="sailboat")
    video.add_argument("--frames", type=int, default=8)
    video.add_argument("--size", type=int, default=256)
    video.add_argument("--tile-size", type=int, default=16)
    video.add_argument("--outdir", default=None, help="write frames here (optional)")
    video.set_defaults(func=_cmd_video)

    library = sub.add_parser(
        "library", help="manage tile libraries for many-to-one mosaics"
    )
    library_sub = library.add_subparsers(dest="library_command", required=True)
    build = library_sub.add_parser(
        "build", help="ingest a directory of images into a .npz library index"
    )
    build.add_argument("--source", required=True, help="directory of candidate images")
    build.add_argument("--output", default="library.npz", help="index output path")
    build.add_argument("--tile-size", type=int, default=8, help="match resolution M")
    build.add_argument(
        "--thumb-size", type=int, default=32,
        help="render resolution stored per image",
    )
    build.add_argument(
        "--sketch-grid", type=int, default=2,
        help="block-mean sketch side (must divide tile size)",
    )
    build.add_argument(
        "--cache-dir", default=None,
        help="disk cache root: per-image features are content-addressed "
        "here, so re-ingesting unchanged files is a pure cache read",
    )
    build.add_argument(
        "--cache-budget", type=int, default=2048,
        help="disk cache byte budget in MiB",
    )
    build.set_defaults(func=_cmd_library_build)

    mosaic = sub.add_parser(
        "mosaic",
        help="compose a target from a tile library (many-to-one; "
        "see docs/library.md)",
    )
    mosaic.add_argument(
        "--library", required=True,
        help="tile library: a directory of images or a .npz index from "
        "'library build' (the index carries its own geometry)",
    )
    mosaic.add_argument("--target", required=True, help="target image path or standard name")
    mosaic.add_argument("--output", default="mosaic.png", help="output file (.png/.bmp/.pgm)")
    mosaic.add_argument("--size", type=int, default=256, help="side for standard targets")
    mosaic.add_argument("--tile-size", type=int, default=8, help="match resolution M")
    mosaic.add_argument(
        "--thumb-size", type=int, default=32,
        help="render resolution (directory libraries only)",
    )
    mosaic.add_argument(
        "--sketch-grid", type=int, default=2,
        help="block-mean sketch side (directory libraries only)",
    )
    mosaic.add_argument("--metric", default="sad", help="cost metric name")
    mosaic.add_argument(
        "--top-k", type=int, default=16,
        help="exact-scored candidates kept per cell",
    )
    mosaic.add_argument(
        "--clusters", type=int, default=0,
        help="k-means clusters over the library (0 = ~sqrt(L))",
    )
    mosaic.add_argument(
        "--penalty", type=float, default=0.0,
        help="repetition penalty weight (0 = pure nearest tile)",
    )
    mosaic.add_argument(
        "--assigner", default="greedy",
        help="assignment solver: greedy or ep",
    )
    mosaic.add_argument(
        "--refine-iters", type=int, default=0,
        help="EP refinement budget (assigner=ep)",
    )
    mosaic.add_argument(
        "--color-adjust", choices=("none", "gain_offset", "histogram"),
        default="none", help="per-cell tile colour adjustment",
    )
    mosaic.add_argument(
        "--out-size", type=int, default=None,
        help="output side in pixels (rendered from the stored thumbs; "
        "default keeps the match resolution)",
    )
    mosaic.add_argument(
        "--backend", choices=("numpy", "cupy", "auto"), default="numpy",
        help="array backend for the exact-scoring hot path",
    )
    mosaic.add_argument("--seed", type=int, default=0, help="pipeline seed")
    mosaic.add_argument(
        "--cache-dir", default=None,
        help="disk cache root for content-addressed ingestion features",
    )
    mosaic.add_argument(
        "--cache-budget", type=int, default=2048,
        help="disk cache byte budget in MiB",
    )
    mosaic.set_defaults(func=_cmd_mosaic)

    def add_scheduler_flags(command: argparse.ArgumentParser) -> None:
        """Step-2 batching + backend-tiering flags shared by the pool
        subcommands (batch / serve / serve-http); both features default
        off (see docs/performance.md, "Batched Step 2")."""
        command.add_argument(
            "--batch-window", type=float, default=0.0,
            help="micro-batching window in seconds: concurrent jobs with "
            "matching Step-2 fingerprints share one batched launch, "
            "waiting at most this long for peers (0 = off; thread "
            "executors only)",
        )
        command.add_argument(
            "--batch-max", type=int, default=8,
            help="jobs per batched Step-2 launch before the window "
            "closes early",
        )
        command.add_argument(
            "--tier-threshold", type=int, default=0,
            help="backend tiering: jobs predicted to score at least this "
            "many Step-2 pairs route to the large-tier backend, smaller "
            "ones to numpy (0 = off; an explicit per-job backend always "
            "wins; see benchmarks/BENCH_9.json for the measured "
            "crossover)",
        )
        command.add_argument(
            "--tier-large-backend",
            choices=("numpy", "cupy", "auto"), default="auto",
            help="backend for above-threshold jobs (falls back to numpy "
            "when unavailable)",
        )

    batch = sub.add_parser(
        "batch", help="run a manifest of mosaic jobs through the worker pool"
    )
    batch.add_argument("--manifest", required=True, help="JSON job manifest")
    batch.add_argument("--outdir", default="batch_out", help="job outputs + report")
    batch.add_argument("--workers", type=int, default=4)
    batch.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="attempt executor (thread shares the artifact cache)",
    )
    batch.add_argument(
        "--retries", type=int, default=1,
        help="default extra attempts per job (manifest can override per job)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None,
        help="default per-attempt budget in seconds",
    )
    batch.add_argument(
        "--metrics", default=None,
        help="metrics JSON path (default: <outdir>/metrics.json)",
    )
    batch.add_argument(
        "--cache-mb", type=int, default=256, help="in-memory cache budget (MiB)"
    )
    batch.add_argument(
        "--spill-dir", default=None, help="spill evicted cache entries here"
    )
    batch.add_argument(
        "--cache-dir", default=None,
        help="shared disk cache root: artifacts persist across runs and are "
        "shared by process workers (see docs/service.md)",
    )
    batch.add_argument(
        "--cache-budget", type=int, default=2048,
        help="disk cache byte budget in MiB (LRU-evicted past this)",
    )
    batch.add_argument(
        "--seed", type=int, default=0,
        help="batch seed: derives per-job seeds and the pool's backoff "
        "jitter via repro.utils.rng, so a re-run replays exactly",
    )
    batch.add_argument(
        "--backend", choices=("numpy", "cupy", "auto"), default=None,
        help="default array backend for every job that doesn't set its "
        "own 'backend' field",
    )
    add_scheduler_flags(batch)
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve",
        help="stream jobs from stdin (or a manifest) through the async "
        "gateway, emitting NDJSON progress events",
    )
    serve.add_argument(
        "--manifest", default=None,
        help="JSON job manifest; omit to read JSON job lines from stdin",
    )
    serve.add_argument("--outdir", default="serve_out", help="job outputs")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="attempt executor (thread streams per-sweep progress; process "
        "workers emit state/retry events only)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=16,
        help="admission bound: jobs in flight before submissions are "
        "rejected (stdin) or intake blocks (manifest)",
    )
    serve.add_argument(
        "--retries", type=int, default=1,
        help="default extra attempts per job",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-attempt budget in seconds",
    )
    serve.add_argument(
        "--metrics", default=None,
        help="write a metrics JSON report here on exit",
    )
    serve.add_argument(
        "--event-log", default=None,
        help="append every streamed event to this NDJSON file",
    )
    serve.add_argument(
        "--cache-mb", type=int, default=256, help="in-memory cache budget (MiB)"
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="shared disk cache root (see docs/service.md)",
    )
    serve.add_argument(
        "--cache-budget", type=int, default=2048,
        help="disk cache byte budget in MiB",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seeds the pool's backoff jitter streams",
    )
    serve.add_argument(
        "--backend", choices=("numpy", "cupy", "auto"), default=None,
        help="default array backend for every job that doesn't set its "
        "own 'backend' field",
    )
    add_scheduler_flags(serve)
    serve.set_defaults(func=_cmd_serve)

    serve_http = sub.add_parser(
        "serve-http",
        help="serve the job gateway over HTTP/WebSocket "
        "(see docs/service.md, 'HTTP API')",
    )
    serve_http.add_argument("--host", default="127.0.0.1")
    serve_http.add_argument(
        "--port", type=int, default=8765,
        help="TCP port; 0 picks a free port (printed on the first "
        "stdout line as a JSON 'listening' record)",
    )
    serve_http.add_argument(
        "--auth-token", default=None,
        help="static bearer token required on /v1/ routes "
        "(default: the PHOTOMOSAIC_TOKEN environment variable; "
        "unset = no auth)",
    )
    serve_http.add_argument("--outdir", default="serve_out", help="job outputs")
    serve_http.add_argument("--workers", type=int, default=2)
    serve_http.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="attempt executor (thread streams per-sweep progress)",
    )
    serve_http.add_argument(
        "--max-pending", type=int, default=16,
        help="admission bound: jobs in flight before POST /v1/jobs "
        "answers 429 with Retry-After",
    )
    serve_http.add_argument(
        "--max-streams", type=int, default=64,
        help="concurrent event streams before the route answers 503",
    )
    serve_http.add_argument(
        "--max-body-kb", type=int, default=1024,
        help="request body limit in KiB (413 beyond it)",
    )
    serve_http.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint (seconds) on 429/503 responses",
    )
    serve_http.add_argument(
        "--retries", type=int, default=1, help="default extra attempts per job"
    )
    serve_http.add_argument(
        "--timeout", type=float, default=None,
        help="default per-attempt budget in seconds",
    )
    serve_http.add_argument(
        "--metrics", default=None,
        help="write a metrics JSON report here on drained exit",
    )
    serve_http.add_argument(
        "--event-log", default=None,
        help="append every streamed event to this NDJSON file",
    )
    serve_http.add_argument(
        "--cache-mb", type=int, default=256, help="in-memory cache budget (MiB)"
    )
    serve_http.add_argument(
        "--cache-dir", default=None,
        help="shared disk cache root (see docs/service.md)",
    )
    serve_http.add_argument(
        "--cache-budget", type=int, default=2048,
        help="disk cache byte budget in MiB",
    )
    serve_http.add_argument(
        "--seed", type=int, default=0,
        help="seeds the pool's backoff jitter streams",
    )
    serve_http.add_argument(
        "--backend", choices=("numpy", "cupy", "auto"), default=None,
        help="default array backend for every job that doesn't set its "
        "own 'backend' field",
    )
    add_scheduler_flags(serve_http)
    serve_http.set_defaults(func=_cmd_serve_http)

    serve_node = sub.add_parser(
        "serve-node",
        help="serve one cluster worker node joined to a coordinator "
        "(see docs/service.md, 'Multi-node deployment')",
    )
    serve_node.add_argument(
        "--coordinator", required=True,
        help="coordinator address as host:port (from serve-cluster's "
        "'listening' line)",
    )
    serve_node.add_argument(
        "--node-id", default=None,
        help="stable node identity used for sharding and metrics "
        "(default: node-<pid>)",
    )
    serve_node.add_argument(
        "--advertise-host", default=None,
        help="host peers should dial (default: the --host bind address)",
    )
    serve_node.add_argument("--host", default="127.0.0.1")
    serve_node.add_argument(
        "--port", type=int, default=0,
        help="TCP port; 0 (default) picks a free port, printed on the "
        "first stdout line",
    )
    serve_node.add_argument(
        "--auth-token", default=None,
        help="cluster-wide bearer token (default: PHOTOMOSAIC_TOKEN; "
        "must match the coordinator's)",
    )
    serve_node.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        help="seconds between heartbeats to the coordinator",
    )
    serve_node.add_argument(
        "--lease-ttl", type=float, default=60.0,
        help="cross-node compute-lease TTL in seconds (a lease whose "
        "holder died is reclaimed after this long)",
    )
    serve_node.add_argument(
        "--job-floor-seconds", type=float, default=0.0,
        help="minimum wall-clock seconds per job (emulated duration for "
        "capacity benchmarking on small hosts; 0 = off)",
    )
    serve_node.add_argument("--outdir", default="serve_out", help="job outputs")
    serve_node.add_argument("--workers", type=int, default=2)
    serve_node.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="attempt executor (thread streams per-sweep progress)",
    )
    serve_node.add_argument(
        "--max-pending", type=int, default=16,
        help="admission bound before POST /v1/jobs answers 429 (the "
        "coordinator then spills to the next-ranked node)",
    )
    serve_node.add_argument(
        "--max-streams", type=int, default=64,
        help="concurrent event streams before the route answers 503",
    )
    serve_node.add_argument(
        "--max-body-kb", type=int, default=262144,
        help="request body limit in KiB — node default is large because "
        "internal cache replication PUTs carry full error matrices",
    )
    serve_node.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint (seconds) on 429/503 responses",
    )
    serve_node.add_argument(
        "--retries", type=int, default=1, help="default extra attempts per job"
    )
    serve_node.add_argument(
        "--timeout", type=float, default=None,
        help="default per-attempt budget in seconds",
    )
    serve_node.add_argument(
        "--cache-mb", type=int, default=256, help="in-memory cache budget (MiB)"
    )
    serve_node.add_argument(
        "--cache-dir", default=None,
        help="node-local disk cache root; required for the cluster's "
        "consistent-hashed shared cache tier (unset = local-only cache)",
    )
    serve_node.add_argument(
        "--cache-budget", type=int, default=2048,
        help="disk cache byte budget in MiB",
    )
    serve_node.add_argument(
        "--seed", type=int, default=0,
        help="seeds the pool's backoff jitter streams",
    )
    serve_node.add_argument(
        "--backend", choices=("numpy", "cupy", "auto"), default=None,
        help="default array backend for jobs without a 'backend' field",
    )
    add_scheduler_flags(serve_node)
    serve_node.set_defaults(func=_cmd_serve_node)

    serve_cluster = sub.add_parser(
        "serve-cluster",
        help="serve the cluster coordinator (admission, sharding, "
        "replicated event logs; see docs/service.md)",
    )
    serve_cluster.add_argument("--host", default="127.0.0.1")
    serve_cluster.add_argument(
        "--port", type=int, default=8700,
        help="TCP port; 0 picks a free port, printed on the first "
        "stdout line",
    )
    serve_cluster.add_argument(
        "--auth-token", default=None,
        help="cluster-wide bearer token (default: PHOTOMOSAIC_TOKEN)",
    )
    serve_cluster.add_argument(
        "--heartbeat-deadline", type=float, default=3.0,
        help="seconds without a heartbeat before a node is declared "
        "dead and its jobs re-dispatch",
    )
    serve_cluster.add_argument(
        "--max-pending", type=int, default=256,
        help="cluster-wide admission bound (429 beyond it)",
    )
    serve_cluster.add_argument(
        "--retry-after", type=float, default=1.0,
        help="Retry-After hint (seconds) on 429/503 responses",
    )
    serve_cluster.add_argument(
        "--metrics", default=None,
        help="write a metrics JSON report here on drained exit",
    )
    serve_cluster.set_defaults(func=_cmd_serve_cluster)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
