"""Validity checks for complete-graph edge colourings.

The parallel approximation algorithm (Algorithm 2) is only correct if every
colour class is a matching (no shared tile between concurrent swaps) and if
together the classes cover every pair exactly once.  These checks are the
runtime guard and the test oracle for :mod:`repro.coloring.round_robin`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ValidationError

__all__ = ["verify_color_classes", "is_valid_complete_coloring"]

ColorClasses = Sequence[Sequence[tuple[int, int]]]


def verify_color_classes(classes: ColorClasses, n: int) -> None:
    """Raise :class:`ValidationError` unless ``classes`` is a proper
    edge colouring of ``K_n``: classes are matchings, pairs are normalised
    ``u < v`` within range, every edge appears exactly once, and the number
    of classes respects Theorem 1 (``<= n``).
    """
    if len(classes) > max(n, 1):
        raise ValidationError(
            f"{len(classes)} colour classes exceed Theorem 1 bound {n}"
        )
    seen: set[tuple[int, int]] = set()
    for index, pairs in enumerate(classes):
        used: set[int] = set()
        for u, v in pairs:
            if not (0 <= u < v < n):
                raise ValidationError(
                    f"class {index} has out-of-range or unnormalised pair ({u}, {v})"
                )
            if u in used or v in used:
                raise ValidationError(
                    f"class {index} is not a matching: vertex reused by ({u}, {v})"
                )
            used.add(u)
            used.add(v)
            if (u, v) in seen:
                raise ValidationError(f"edge ({u}, {v}) coloured twice")
            seen.add((u, v))
    expected = n * (n - 1) // 2
    if len(seen) != expected:
        raise ValidationError(
            f"colouring covers {len(seen)} edges of K_{n}, expected {expected}"
        )


def is_valid_complete_coloring(classes: ColorClasses, n: int) -> bool:
    """Boolean form of :func:`verify_color_classes`."""
    try:
        verify_color_classes(classes, n)
    except ValidationError:
        return False
    return True
