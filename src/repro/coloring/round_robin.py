"""Circle-method edge colouring of the complete graph ``K_n``.

Theorem 1 of the paper: ``K_n`` is ``(n-1)``-edge-colourable for even ``n``
and ``n``-edge-colourable for odd ``n``.  The constructive proof is the
round-robin tournament schedule ("circle method"): fix one vertex, place
the remaining ``n-1`` on a circle, and rotate; each rotation is a perfect
matching (a colour class).

For even ``n`` the classes can be emitted in the paper's published order
(Section IV-B lists ``P_1 .. P_16`` for ``K_16``): class ``P_i`` consists
of the pairs whose 1-indexed endpoint sum is congruent to ``2i + 1``
modulo ``n - 1`` (with the fixed vertex ``n`` standing in for its circle
twin).  ``order="round"`` keeps plain rotation order instead.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["edge_coloring_complete"]


def _circle_rounds(n_even: int) -> list[list[tuple[int, int]]]:
    """Rotation rounds of the circle method for even ``n_even`` (0-indexed).

    Round ``r`` pairs the fixed vertex ``n-1`` with circle vertex ``r`` and
    pairs ``(r+k) mod (n-1)`` with ``(r-k) mod (n-1)`` for each chord ``k``.
    """
    m = n_even - 1  # circle size
    rounds: list[list[tuple[int, int]]] = []
    for r in range(m):
        pairs = [(min(r, n_even - 1), max(r, n_even - 1))]
        for k in range(1, m // 2 + 1):
            a = (r + k) % m
            b = (r - k) % m
            pairs.append((min(a, b), max(a, b)))
        rounds.append(sorted(pairs))
    return rounds


def edge_coloring_complete(n: int, *, order: str = "paper") -> list[list[tuple[int, int]]]:
    """Partition the edges of ``K_n`` into at most ``n`` matchings.

    Returns a list of colour classes; each class is a sorted list of
    0-indexed pairs ``(u, v)`` with ``u < v``, and no two pairs within a
    class share a vertex.  For even ``n`` there are ``n`` classes, the last
    one empty (the paper's ``P_S = emptyset`` convention); for odd ``n``
    there are exactly ``n`` (non-empty) classes, each leaving one vertex
    idle.

    ``order="paper"`` (default) reproduces the class numbering of the
    paper's ``K_16`` example; ``order="round"`` is plain rotation order.
    """
    n = check_positive_int(n, "n")
    if order not in ("paper", "round"):
        raise ValidationError(f"unknown order {order!r} (use paper|round)")
    if n == 1:
        return [[]]
    if n % 2 == 0:
        rounds = _circle_rounds(n)
        if order == "paper":
            m = n - 1
            inv2 = pow(2, -1, m)  # m is odd, so 2 is invertible
            ordered: list[list[tuple[int, int]]] = [[] for _ in range(m)]
            for r, pairs in enumerate(rounds):
                # 1-indexed chord sums in round r are congruent to 2r + 2
                # (mod m); the paper's P_i holds sums congruent to 2i + 1.
                signature = (2 * r + 2) % m
                i = ((signature - 1) * inv2) % m  # solves 2i + 1 = signature
                index = m - 1 if i == 0 else i - 1  # 1-indexed i in 1..m
                ordered[index] = pairs
            rounds = ordered
        rounds.append([])  # P_S = empty set for even S
        return rounds
    # Odd n: run the even construction on n+1 vertices and drop the pairs
    # that touch the dummy vertex n (each class then has one bye vertex).
    rounds = _circle_rounds(n + 1)
    return [[(u, v) for (u, v) in pairs if v != n] for pairs in rounds]
