"""Packed edge groups ``P_1 .. P_S`` for the parallel swap kernel.

Section IV-B: the groups depend only on the tile count ``S``, so they are
computed once, stored as packed index arrays, and reused across images
("they are not independent from input images and their size" — i.e. they
*are* independent of them).  :class:`EdgeGroups` is that precomputed,
cached artefact: each class is a pair of aligned ``(u_array, v_array)``
columns ready for vectorised gather/scatter in the swap kernel.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.coloring.round_robin import edge_coloring_complete
from repro.coloring.verify import verify_color_classes
from repro.types import INDEX_DTYPE
from repro.utils.validation import check_positive_int

__all__ = ["EdgeGroups", "build_edge_groups"]


@dataclass(frozen=True)
class EdgeGroups:
    """Colour classes of ``K_S`` packed as index-array pairs.

    ``classes[i]`` is ``(us, vs)``: two equal-length ``intp`` arrays such
    that the ``j``-th concurrent swap candidate of class ``i`` is the tile
    pair ``(us[j], vs[j])``.  All tiles within one class are distinct, so
    the class's swaps may commit simultaneously.
    """

    size: int
    classes: tuple[tuple[np.ndarray, np.ndarray], ...]

    @property
    def class_count(self) -> int:
        return len(self.classes)

    @property
    def edge_count(self) -> int:
        return sum(us.shape[0] for us, _ in self.classes)

    def as_pair_lists(self) -> list[list[tuple[int, int]]]:
        """Back-conversion to plain pair lists (for inspection/tests)."""
        return [
            [(int(u), int(v)) for u, v in zip(us, vs)] for us, vs in self.classes
        ]


@functools.lru_cache(maxsize=32)
def build_edge_groups(size: int, *, order: str = "paper") -> EdgeGroups:
    """Build (and cache) the edge groups for ``S = size`` tiles.

    The construction is verified by :func:`verify_color_classes` before
    caching — an invalid schedule would silently corrupt the parallel
    algorithm, so the check is unconditional.
    """
    size = check_positive_int(size, "size")
    raw = edge_coloring_complete(size, order=order)
    verify_color_classes(raw, size)
    packed = tuple(
        (
            np.array([u for u, _ in pairs], dtype=INDEX_DTYPE),
            np.array([v for _, v in pairs], dtype=INDEX_DTYPE),
        )
        for pairs in raw
    )
    return EdgeGroups(size=size, classes=packed)
