"""Edge colouring of complete graphs (paper Theorem 1, Section IV-B)."""

from __future__ import annotations

from repro.coloring.groups import EdgeGroups, build_edge_groups
from repro.coloring.round_robin import edge_coloring_complete
from repro.coloring.verify import is_valid_complete_coloring, verify_color_classes

__all__ = [
    "edge_coloring_complete",
    "EdgeGroups",
    "build_edge_groups",
    "is_valid_complete_coloring",
    "verify_color_classes",
]
