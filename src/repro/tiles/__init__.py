"""Tiling: grid decomposition, reassembly and tile permutations."""

from __future__ import annotations

from repro.tiles.features import mean_luminance, tile_features
from repro.tiles.grid import TileGrid
from repro.tiles.permutation import (
    apply_permutation,
    compose,
    identity_permutation,
    invert,
    permutation_from_pairs,
    random_permutation,
)

__all__ = [
    "TileGrid",
    "apply_permutation",
    "compose",
    "identity_permutation",
    "invert",
    "permutation_from_pairs",
    "random_permutation",
    "tile_features",
    "mean_luminance",
]
