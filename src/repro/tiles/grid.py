"""Tile-grid decomposition and reassembly (Step 1 of the paper's method).

A :class:`TileGrid` describes how an ``N x N`` (or more generally
``H x W``) image divides into ``S = (H/M) * (W/M)`` square ``M x M`` tiles.
Tiles are indexed in row-major order, matching the paper's
``I_1 .. I_S`` / ``T_1 .. T_S`` numbering (zero-based here).

Splitting and assembling are pure reshape/transpose operations — no pixel
copies beyond the final ``ascontiguousarray`` — so they are O(N^2) memory
traffic and never the bottleneck (the guides' "views, not copies" rule).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import TilingError
from repro.types import AnyImage, TileStack
from repro.utils.validation import check_image, check_permutation, check_positive_int

__all__ = ["TileGrid"]


@dataclass(frozen=True)
class TileGrid:
    """Geometry of a tile decomposition.

    Attributes
    ----------
    height, width:
        Image dimensions in pixels.
    tile_size:
        Side length ``M`` of each square tile.
    """

    height: int
    width: int
    tile_size: int

    def __post_init__(self) -> None:
        check_positive_int(self.height, "height")
        check_positive_int(self.width, "width")
        check_positive_int(self.tile_size, "tile_size")
        if self.height % self.tile_size or self.width % self.tile_size:
            raise TilingError(
                f"tile size {self.tile_size} does not divide image "
                f"{self.height}x{self.width}"
            )

    @classmethod
    def for_image(cls, image: AnyImage, tile_size: int) -> "TileGrid":
        """Build the grid matching ``image``'s shape."""
        image = check_image(image)
        return cls(image.shape[0], image.shape[1], tile_size)

    @classmethod
    def from_tile_count(cls, side: int, tiles_per_side: int) -> "TileGrid":
        """Grid for a square ``side x side`` image with ``tiles_per_side^2`` tiles."""
        check_positive_int(side, "side")
        check_positive_int(tiles_per_side, "tiles_per_side")
        if side % tiles_per_side:
            raise TilingError(
                f"{tiles_per_side} tiles per side does not divide image side {side}"
            )
        return cls(side, side, side // tiles_per_side)

    @property
    def rows(self) -> int:
        """Number of tile rows."""
        return self.height // self.tile_size

    @property
    def cols(self) -> int:
        """Number of tile columns."""
        return self.width // self.tile_size

    @property
    def tile_count(self) -> int:
        """Total number of tiles ``S``."""
        return self.rows * self.cols

    @property
    def pixels_per_tile(self) -> int:
        """``M * M``."""
        return self.tile_size * self.tile_size

    def tile_index(self, row: int, col: int) -> int:
        """Row-major linear index of tile ``(row, col)``."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise TilingError(
                f"tile ({row}, {col}) outside grid {self.rows}x{self.cols}"
            )
        return row * self.cols + col

    def tile_position(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`tile_index`."""
        if not 0 <= index < self.tile_count:
            raise TilingError(f"tile index {index} outside 0..{self.tile_count - 1}")
        return divmod(index, self.cols)

    def tile_slice(self, index: int) -> tuple[slice, slice]:
        """Pixel slices of tile ``index`` within the image."""
        row, col = self.tile_position(index)
        m = self.tile_size
        return (slice(row * m, (row + 1) * m), slice(col * m, (col + 1) * m))

    def _check_shape(self, image: AnyImage) -> AnyImage:
        image = check_image(image)
        if image.shape[:2] != (self.height, self.width):
            raise TilingError(
                f"image shape {image.shape[:2]} does not match grid "
                f"{self.height}x{self.width}"
            )
        return image

    def split(self, image: AnyImage) -> TileStack:
        """Split ``image`` into a ``(S, M, M[, 3])`` stack of tiles."""
        image = self._check_shape(image)
        m = self.tile_size
        if image.ndim == 2:
            stack = image.reshape(self.rows, m, self.cols, m).transpose(0, 2, 1, 3)
            return np.ascontiguousarray(stack.reshape(self.tile_count, m, m))
        stack = image.reshape(self.rows, m, self.cols, m, 3).transpose(0, 2, 1, 3, 4)
        return np.ascontiguousarray(stack.reshape(self.tile_count, m, m, 3))

    def assemble(self, tiles: TileStack) -> AnyImage:
        """Inverse of :meth:`split`: rebuild the image from a tile stack."""
        tiles = np.asarray(tiles)
        m = self.tile_size
        if tiles.ndim == 3:
            expected = (self.tile_count, m, m)
        elif tiles.ndim == 4:
            expected = (self.tile_count, m, m, 3)
        else:
            raise TilingError(f"tile stack must be 3-D or 4-D, got shape {tiles.shape}")
        if tiles.shape != expected:
            raise TilingError(f"tile stack shape {tiles.shape}, expected {expected}")
        if tiles.ndim == 3:
            grid = tiles.reshape(self.rows, self.cols, m, m).transpose(0, 2, 1, 3)
            return np.ascontiguousarray(grid.reshape(self.height, self.width))
        grid = tiles.reshape(self.rows, self.cols, m, m, 3).transpose(0, 2, 1, 3, 4)
        return np.ascontiguousarray(grid.reshape(self.height, self.width, 3))

    def rearrange(self, image: AnyImage, permutation: np.ndarray) -> AnyImage:
        """Apply a tile rearrangement to ``image``.

        ``permutation[v] = u`` places input tile ``u`` at target position
        ``v`` (the library-wide convention; see :mod:`repro.types`).
        """
        perm = check_permutation(permutation, self.tile_count)
        tiles = self.split(image)
        return self.assemble(tiles[perm])
