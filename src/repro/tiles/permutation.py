"""Permutation algebra for tile rearrangements.

A rearrangement is a permutation array ``p`` with ``p[v] = u``: input tile
``u`` goes to target position ``v``.  These helpers keep the algebra (apply,
compose, invert) in one place so the solvers, local search and pipeline all
agree on orientation.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import ValidationError
from repro.types import INDEX_DTYPE, PermutationArray
from repro.utils.rng import make_rng
from repro.utils.validation import check_permutation, check_positive_int

__all__ = [
    "identity_permutation",
    "random_permutation",
    "invert",
    "compose",
    "apply_permutation",
    "permutation_from_pairs",
]


def identity_permutation(size: int) -> PermutationArray:
    """The identity rearrangement (every tile stays in place)."""
    size = check_positive_int(size, "size")
    return np.arange(size, dtype=INDEX_DTYPE)


def random_permutation(size: int, seed: int | np.random.Generator | None = 0) -> PermutationArray:
    """A uniformly random permutation, deterministic for a given ``seed``."""
    size = check_positive_int(size, "size")
    rng = make_rng(seed)
    return rng.permutation(size).astype(INDEX_DTYPE)


def invert(perm: PermutationArray) -> PermutationArray:
    """Inverse permutation: if ``p[v] = u`` then ``invert(p)[u] = v``."""
    perm = check_permutation(perm)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.shape[0], dtype=INDEX_DTYPE)
    return inverse


def compose(outer: PermutationArray, inner: PermutationArray) -> PermutationArray:
    """Composition ``(outer . inner)[v] = outer[inner[v]]``.

    Applying ``compose(outer, inner)`` equals applying ``inner`` first and
    then ``outer`` when both are position->tile maps.
    """
    outer = check_permutation(outer, name="outer")
    inner = check_permutation(inner, size=outer.shape[0], name="inner")
    return outer[inner]


def apply_permutation(items: np.ndarray, perm: PermutationArray) -> np.ndarray:
    """Reorder ``items`` so slot ``v`` holds ``items[perm[v]]``."""
    perm = check_permutation(perm)
    items = np.asarray(items)
    if items.shape[0] != perm.shape[0]:
        raise ValidationError(
            f"items length {items.shape[0]} does not match permutation {perm.shape[0]}"
        )
    return items[perm]


def permutation_from_pairs(pairs: Iterable[tuple[int, int]], size: int) -> PermutationArray:
    """Build a permutation from explicit ``(input_tile, target_position)`` pairs.

    Every tile and every position must appear exactly once — this is the
    matching-to-permutation bridge used by the assignment solvers.
    """
    size = check_positive_int(size, "size")
    perm = np.full(size, -1, dtype=INDEX_DTYPE)
    seen_inputs = np.zeros(size, dtype=bool)
    for input_tile, target_pos in pairs:
        if not (0 <= input_tile < size and 0 <= target_pos < size):
            raise ValidationError(
                f"pair ({input_tile}, {target_pos}) outside 0..{size - 1}"
            )
        if perm[target_pos] != -1:
            raise ValidationError(f"target position {target_pos} assigned twice")
        if seen_inputs[input_tile]:
            raise ValidationError(f"input tile {input_tile} assigned twice")
        perm[target_pos] = input_tile
        seen_inputs[input_tile] = True
    if (perm == -1).any():
        missing = int(np.flatnonzero(perm == -1)[0])
        raise ValidationError(f"target position {missing} never assigned")
    return perm
