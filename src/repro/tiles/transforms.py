"""Dihedral tile transforms (rotations and flips).

A natural strengthening of the paper's rearrangement: allow each tile to
be placed in any of the 8 orientations of the dihedral group D4 (identity,
three rotations, and four mirror images).  The assignment structure is
unchanged — the error of pairing input tile ``u`` with position ``v``
simply becomes the *minimum over orientations*, and the chosen orientation
is stored alongside the permutation for reassembly.

Orientation encoding (``k`` in ``0..7``): ``k & 3`` counts 90-degree
counter-clockwise rotations, ``k & 4`` applies a horizontal flip *first*.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import TileStack

__all__ = [
    "TRANSFORM_COUNT",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "all_orientations",
    "apply_transforms_to_stack",
]

#: Size of the dihedral group D4.
TRANSFORM_COUNT = 8


def _check_code(code: int) -> int:
    if not isinstance(code, (int, np.integer)) or not 0 <= int(code) < TRANSFORM_COUNT:
        raise ValidationError(f"transform code must be in 0..7, got {code!r}")
    return int(code)


def apply_transform(tile: np.ndarray, code: int) -> np.ndarray:
    """Apply orientation ``code`` to one tile (gray or colour)."""
    code = _check_code(code)
    tile = np.asarray(tile)
    if tile.ndim not in (2, 3):
        raise ValidationError(f"tile must be 2-D or 3-D, got shape {tile.shape}")
    out = tile
    if code & 4:
        out = out[:, ::-1]
    rotations = code & 3
    if rotations:
        out = np.rot90(out, k=rotations)
    return np.ascontiguousarray(out)


# The composition and inverse tables are derived once by brute force on a
# marker tile — D4 is small enough that computing beats hand-deriving, and
# the result is verified structurally by the tests.
def _derive_tables() -> tuple[np.ndarray, np.ndarray]:
    marker = np.arange(16, dtype=np.uint8).reshape(4, 4)
    images = [apply_transform(marker, k).tobytes() for k in range(TRANSFORM_COUNT)]
    compose = np.zeros((TRANSFORM_COUNT, TRANSFORM_COUNT), dtype=np.intp)
    inverse = np.zeros(TRANSFORM_COUNT, dtype=np.intp)
    for a in range(TRANSFORM_COUNT):
        for b in range(TRANSFORM_COUNT):
            combined = apply_transform(apply_transform(marker, a), b).tobytes()
            compose[a, b] = images.index(combined)
        inverse[a] = int(compose[a].tolist().index(0))
    return compose, inverse


_COMPOSE_TABLE, _INVERSE_TABLE = _derive_tables()


def compose_transforms(first: int, then: int) -> int:
    """Code of applying ``first`` and then ``then``."""
    return int(_COMPOSE_TABLE[_check_code(first), _check_code(then)])


def invert_transform(code: int) -> int:
    """Code that undoes ``code``."""
    return int(_INVERSE_TABLE[_check_code(code)])


def all_orientations(tiles: TileStack) -> np.ndarray:
    """All 8 orientations of every tile: shape ``(8, S, M, M[, 3])``.

    Index ``[k, u]`` is input tile ``u`` under orientation ``k``.  Square
    tiles only (rotations must preserve shape).
    """
    tiles = np.asarray(tiles)
    if tiles.ndim not in (3, 4):
        raise ValidationError(f"tile stack must be 3-D or 4-D, got {tiles.shape}")
    if tiles.shape[1] != tiles.shape[2]:
        raise ValidationError(
            f"tiles must be square for rotations, got {tiles.shape[1]}x{tiles.shape[2]}"
        )
    variants = []
    for code in range(TRANSFORM_COUNT):
        current = tiles
        if code & 4:
            current = current[:, :, ::-1]
        rotations = code & 3
        if rotations:
            current = np.rot90(current, k=rotations, axes=(1, 2))
        variants.append(np.ascontiguousarray(current))
    return np.stack(variants)


def apply_transforms_to_stack(tiles: TileStack, codes: np.ndarray) -> TileStack:
    """Apply per-tile orientation codes: ``out[u] = transform(tiles[u], codes[u])``."""
    tiles = np.asarray(tiles)
    codes = np.asarray(codes)
    if codes.shape != (tiles.shape[0],):
        raise ValidationError(
            f"codes must have shape ({tiles.shape[0]},), got {codes.shape}"
        )
    out = np.empty_like(tiles)
    for u in range(tiles.shape[0]):
        out[u] = apply_transform(tiles[u], int(codes[u]))
    return out
