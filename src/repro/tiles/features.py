"""Tile feature extraction.

Used by the classic database-driven mosaic mode (paper Fig. 1) and by the
luminance cost metric: cheap per-tile summaries that stand in for full
pixel-by-pixel comparison.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import TileStack

__all__ = ["mean_luminance", "tile_features"]


def _check_stack(tiles: TileStack) -> np.ndarray:
    tiles = np.asarray(tiles)
    if tiles.ndim not in (3, 4):
        raise ValidationError(f"tile stack must be 3-D or 4-D, got shape {tiles.shape}")
    if tiles.ndim == 4 and tiles.shape[3] != 3:
        raise ValidationError(f"colour tiles need 3 channels, got {tiles.shape[3]}")
    return tiles


def mean_luminance(tiles: TileStack) -> np.ndarray:
    """Per-tile mean intensity, shape ``(S,)`` float64.

    Colour tiles are reduced with BT.601 luma weights first.
    """
    tiles = _check_stack(tiles)
    if tiles.ndim == 4:
        luma = tiles.astype(np.float64) @ np.array([0.299, 0.587, 0.114])
        return luma.reshape(tiles.shape[0], -1).mean(axis=1)
    return tiles.reshape(tiles.shape[0], -1).mean(axis=1, dtype=np.float64)


def tile_features(tiles: TileStack, grid: int = 2) -> np.ndarray:
    """Downsampled block-mean features, shape ``(S, grid*grid[*3])``.

    Each tile is reduced to a ``grid x grid`` grid of block means — the
    standard cheap descriptor database-mosaic systems match on before (or
    instead of) exact pixel comparison.
    """
    tiles = _check_stack(tiles)
    if grid < 1:
        raise ValidationError(f"grid must be >= 1, got {grid}")
    m = tiles.shape[1]
    if m % grid:
        raise ValidationError(f"feature grid {grid} does not divide tile size {m}")
    block = m // grid
    if tiles.ndim == 3:
        view = tiles.reshape(tiles.shape[0], grid, block, grid, block)
        means = view.mean(axis=(2, 4), dtype=np.float64)
        return means.reshape(tiles.shape[0], grid * grid)
    view = tiles.reshape(tiles.shape[0], grid, block, grid, block, 3)
    means = view.mean(axis=(2, 4), dtype=np.float64)
    return means.reshape(tiles.shape[0], grid * grid * 3)
