"""Zero-copy fan-out of large arrays to process workers.

The process-executor paths used to pickle the Step-2 feature matrices
(hundreds of MB at paper scale) into every worker.  Here the parent
*publishes* each array into a named :class:`multiprocessing.shared_memory`
segment once, and ships workers a :class:`SharedArrayHandle` — a few
hundred bytes of name/shape/dtype — which they rehydrate into a NumPy
view over the same physical pages.  No per-worker copy, no pickle of the
payload.

Lifecycle rules (segments are kernel objects; leaking them strands
``/dev/shm`` pages until reboot):

* Every plane registers itself in a module-level table that an
  :func:`atexit` hook drains, so normal interpreter exit unlinks
  everything even if the owner forgot ``close()``.
* Segment names embed the owning PID (``repro-accel-<pid>-<seq>-...``),
  so :func:`reap_stale_segments` can find segments whose owner died
  without cleanup (SIGKILL, OOM), unlink them, and tick the
  ``shm_leaked_total`` metric.
* Worker-side attachments are cached per process and *closed, never
  unlinked* — only the publishing side owns the name.
"""

from __future__ import annotations

import atexit
import errno
import os
import threading
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SHM_PREFIX",
    "SharedArrayHandle",
    "SharedArrayPlane",
    "attach_shared_array",
    "reap_stale_segments",
    "shared_memory_available",
]

#: Prefix of every segment this module creates; the reaper only ever
#: touches names under it.
SHM_PREFIX = "repro-accel"

_PLANES_LOCK = threading.Lock()
_LIVE_PLANES: list["SharedArrayPlane"] = []
_ATEXIT_REGISTERED = False

# Worker-side attachment cache: name -> (SharedMemory, ndarray view).
# Keeping the SharedMemory object referenced is what keeps the mapping
# (and thus the view's buffer) valid for the life of the process.
_ATTACHED_LOCK = threading.Lock()
_ATTACHED: dict[str, tuple[object, np.ndarray]] = {}


def shared_memory_available() -> bool:
    """Whether this platform can create named shared-memory segments."""
    return _shared_memory is not None


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable pointer to one published array.

    ``pickle.dumps(handle)`` is a few hundred bytes regardless of the
    payload size — that is the whole point.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


def attach_shared_array(handle: SharedArrayHandle) -> np.ndarray:
    """Rehydrate a handle into a read-only view over the shared pages.

    Attachments are cached per process: repeated calls for the same
    segment return the same view without re-mapping, and the underlying
    mapping stays alive until the process exits.
    """
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable here")
    with _ATTACHED_LOCK:
        cached = _ATTACHED.get(handle.name)
        if cached is not None:
            return cached[1]
    segment = _shared_memory.SharedMemory(name=handle.name)
    # Note on the resource tracker (CPython < 3.13 registers attach-side
    # opens too): within one process tree the tracker keeps a single
    # entry per name, and the publisher's ``unlink()`` un-registers it —
    # so attachments need no bookkeeping of their own.  Attaching a
    # segment published by an *unrelated* process tree would hand this
    # tree's tracker delete rights over a segment it does not own; the
    # plane API is worker-pool-scoped precisely to avoid that.
    view = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf)
    view.setflags(write=False)  # workers share pages; writes would race
    with _ATTACHED_LOCK:
        raced = _ATTACHED.setdefault(handle.name, (segment, view))
    if raced[1] is not view:  # lost a racing attach; drop our duplicate
        segment.close()
    return raced[1]


class SharedArrayPlane:
    """Owner of a set of published segments, with guaranteed unlink.

    Use as a context manager around the fan-out::

        with SharedArrayPlane() as plane:
            handle = plane.publish("features", big_array)
            ...ship handle to workers...
        # segments closed + unlinked here, even on error

    A plane is also registered for :func:`atexit` cleanup, and
    :meth:`close` is idempotent, so belt *and* suspenders.
    """

    _seq = 0
    _seq_lock = threading.Lock()

    def __init__(self, *, metrics=None) -> None:
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable here")
        self.metrics = metrics
        self._segments: dict[str, object] = {}
        self._lock = threading.Lock()
        self._closed = False
        _register_plane(self)

    def publish(self, label: str, array: np.ndarray) -> SharedArrayHandle:
        """Copy ``array`` into a fresh segment; return its handle.

        The one copy here replaces a pickle-encode + pipe-write + decode
        per *worker*; N workers then map the same pages.
        """
        array = np.ascontiguousarray(array)
        with SharedArrayPlane._seq_lock:
            SharedArrayPlane._seq += 1
            seq = SharedArrayPlane._seq
        safe_label = "".join(c if c.isalnum() else "-" for c in label)[:32]
        name = f"{SHM_PREFIX}-{os.getpid()}-{seq}-{safe_label}"
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=max(1, array.nbytes)
        )
        target = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        target[...] = array
        with self._lock:
            if self._closed:  # closed concurrently: do not leak the segment
                segment.close()
                segment.unlink()
                raise RuntimeError("plane is closed")
            self._segments[name] = segment
        if self.metrics is not None:
            self.metrics.counter(
                "shm_published_bytes_total", "bytes published to shared memory"
            ).inc(array.nbytes)
        return SharedArrayHandle(
            name=name, shape=tuple(array.shape), dtype=array.dtype.str
        )

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
        for segment in segments:
            try:
                segment.close()
            except OSError:
                pass
            try:
                segment.unlink()
            except (OSError, FileNotFoundError):
                pass
        _unregister_plane(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedArrayPlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort; atexit covers normal exit
        try:
            self.close()
        except Exception:
            pass


def _register_plane(plane: SharedArrayPlane) -> None:
    global _ATEXIT_REGISTERED
    with _PLANES_LOCK:
        _LIVE_PLANES.append(plane)
        if not _ATEXIT_REGISTERED:
            atexit.register(_close_all_planes)
            _ATEXIT_REGISTERED = True


def _unregister_plane(plane: SharedArrayPlane) -> None:
    with _PLANES_LOCK:
        try:
            _LIVE_PLANES.remove(plane)
        except ValueError:
            pass


def _close_all_planes() -> None:
    with _PLANES_LOCK:
        planes = list(_LIVE_PLANES)
    for plane in planes:
        plane.close()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # exists, owned by someone else
        return True
    except OSError as exc:  # pragma: no cover - exotic platforms
        return exc.errno != errno.ESRCH
    return True


def reap_stale_segments(metrics=None, *, shm_dir: str = "/dev/shm") -> int:
    """Unlink segments stranded by dead owners; returns how many.

    A worker killed with SIGKILL never runs its ``finally``/atexit
    cleanup, so its segments outlive it.  Their names embed the owning
    PID; any segment under our prefix whose PID no longer exists is
    leaked by definition.  Each reaped segment ticks ``shm_leaked_total``
    so operators can see leaks happening instead of discovering a full
    ``/dev/shm`` later.
    """
    if _shared_memory is None or not os.path.isdir(shm_dir):
        return 0
    reaped = 0
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return 0
    for entry in entries:
        if not entry.startswith(f"{SHM_PREFIX}-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            segment = _shared_memory.SharedMemory(name=entry)
        except (FileNotFoundError, OSError):
            continue
        try:
            segment.close()
            segment.unlink()
            reaped += 1
        except (OSError, FileNotFoundError):
            continue
    if reaped and metrics is not None:
        metrics.counter(
            "shm_leaked_total", "stranded shared-memory segments reaped"
        ).inc(reaped)
    return reaped
