"""Hot-path acceleration layer.

Three independent pieces, combinable per deployment:

* :mod:`repro.accel.backend` — the ``xp`` array-module dispatch registry
  (NumPy always; CuPy auto-detected when installed), so Step 2 and the
  vectorised Step-3 commit path run unchanged on whichever array library
  the host actually has.
* :mod:`repro.accel.dirty` — active-pair pruning for the 2-opt sweeps:
  a per-position dirty mask restricts late sweeps to pairs that can
  still improve, dropping them from ``O(S^2)`` to ``O(S * dirty)``
  while provably reaching the *same* fixed point (see the module doc).
* :mod:`repro.accel.shm` — a zero-copy data plane over
  :mod:`multiprocessing.shared_memory`: large arrays are published once
  and process workers rehydrate tiny picklable handles instead of
  re-pickling multi-hundred-MB payloads per fan-out.
"""

from repro.accel.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    get_backend,
    register_backend,
)
from repro.accel.dirty import ClassPruner, SweepPruner
from repro.accel.shm import (
    SharedArrayHandle,
    SharedArrayPlane,
    attach_shared_array,
    reap_stale_segments,
    shared_memory_available,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "available_backends",
    "get_backend",
    "register_backend",
    "ClassPruner",
    "SweepPruner",
    "SharedArrayHandle",
    "SharedArrayPlane",
    "attach_shared_array",
    "reap_stale_segments",
    "shared_memory_available",
]
