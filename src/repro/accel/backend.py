"""Pluggable array-module dispatch — the SciPy-ecosystem ``xp`` pattern.

An :class:`ArrayBackend` bundles an array module (``numpy``, ``cupy``)
with the two conversions the pipeline needs at its boundaries:
``asarray`` (host -> backend) and ``to_numpy`` (backend -> host).  All
hot-path kernels are written against the NumPy API surface that CuPy
mirrors (and that NEP-18 dispatches for ``np.*`` calls on foreign
arrays), so the same code runs on whichever backend is selected.

Backends register *loaders*, not instances: probing for CuPy imports the
library and checks for a usable device only when the backend is first
requested, so machines without a GPU pay nothing.  ``"auto"`` resolves
to the best available backend (CuPy if usable, NumPy otherwise) and is
what ``--backend auto`` on the CLI means.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
]

#: Resolution order for ``"auto"``: first usable backend wins.
AUTO_ORDER = ("cupy", "numpy")


class BackendUnavailable(RuntimeError):
    """The requested backend's library or device is not usable here."""


@dataclass(frozen=True)
class ArrayBackend:
    """One array library plus its host-boundary conversions.

    Attributes
    ----------
    name:
        Registry key (``"numpy"``, ``"cupy"``).
    xp:
        The array module itself; hot paths call ``self.xp.arange`` etc.
    asarray / to_numpy:
        Host -> backend and backend -> host conversions.  For NumPy both
        are no-copy pass-throughs.
    synchronize:
        Block until queued device work is complete (no-op on NumPy);
        benchmarks call it so timings measure compute, not launch.
    """

    name: str
    xp: Any
    asarray: Callable[[Any], Any]
    to_numpy: Callable[[Any], np.ndarray]
    synchronize: Callable[[], None] = field(default=lambda: None)

    @property
    def is_numpy(self) -> bool:
        return self.xp is np


_LOCK = threading.Lock()
_LOADERS: dict[str, Callable[[], ArrayBackend]] = {}
_CACHE: dict[str, ArrayBackend] = {}


def register_backend(name: str, loader: Callable[[], ArrayBackend]) -> None:
    """Register a backend loader under ``name``.

    The loader runs at most once (its result is cached) and must raise
    :class:`BackendUnavailable` when the library or device is missing.
    """
    with _LOCK:
        _LOADERS[name] = loader
        _CACHE.pop(name, None)


def backend_names() -> tuple[str, ...]:
    """All registered backend names (usable or not), plus ``"auto"``."""
    with _LOCK:
        return ("auto", *sorted(_LOADERS))


def available_backends() -> tuple[str, ...]:
    """Names of the backends that actually load on this machine."""
    usable = []
    for name in sorted(_LOADERS):
        try:
            get_backend(name)
        except BackendUnavailable:
            continue
        usable.append(name)
    return tuple(usable)


def get_backend(name: str | ArrayBackend | None = None) -> ArrayBackend:
    """Resolve a backend by name; ``None``/``"numpy"`` never fails.

    ``"auto"`` walks :data:`AUTO_ORDER` and returns the first backend
    that loads — NumPy is always registered, so ``"auto"`` cannot fail.
    """
    if isinstance(name, ArrayBackend):
        return name
    if name is None:
        name = "numpy"
    if name == "auto":
        for candidate in AUTO_ORDER:
            try:
                return get_backend(candidate)
            except BackendUnavailable:
                continue
        return get_backend("numpy")
    with _LOCK:
        cached = _CACHE.get(name)
        loader = _LOADERS.get(name)
    if cached is not None:
        return cached
    if loader is None:
        raise BackendUnavailable(
            f"unknown array backend {name!r} (registered: {sorted(_LOADERS)})"
        )
    backend = loader()  # outside the lock: loaders may import heavy libraries
    with _LOCK:
        _CACHE[name] = backend
    return backend


def _load_numpy() -> ArrayBackend:
    return ArrayBackend(
        name="numpy",
        xp=np,
        asarray=np.asarray,
        to_numpy=np.asarray,
    )


def _load_cupy() -> ArrayBackend:
    try:
        import cupy  # type: ignore[import-not-found]
    except Exception as exc:  # ImportError or a broken CUDA install
        raise BackendUnavailable(f"cupy is not importable: {exc}") from exc
    try:
        if cupy.cuda.runtime.getDeviceCount() < 1:
            raise BackendUnavailable("cupy found no CUDA device")
        cupy.zeros(1).sum()  # smoke-test an actual allocation + kernel
    except BackendUnavailable:
        raise
    except Exception as exc:
        raise BackendUnavailable(f"cupy device unusable: {exc}") from exc
    return ArrayBackend(
        name="cupy",
        xp=cupy,
        asarray=cupy.asarray,
        to_numpy=cupy.asnumpy,
        synchronize=cupy.cuda.runtime.deviceSynchronize,
    )


register_backend("numpy", _load_numpy)
register_backend("cupy", _load_cupy)
