"""Active-pair pruning for the 2-opt sweeps (Step 3).

Late sweeps of both local-search algorithms commit only a handful of
swaps, yet the unpruned loops still evaluate all ``S(S-1)/2`` pairs per
sweep.  Both pruners here exploit the same invariant: a pair's gain
depends only on the tiles at its two endpoints, so *if neither endpoint
changed since the pair's last evaluation, the gain is unchanged* — and
an unchanged gain that did not trigger a commit then cannot trigger one
now.  Skipping such pairs is exact: identical committed-swap sets,
identical trajectories, bit-identical final permutations.

Two granularities, matched to the two sweep structures:

* :class:`ClassPruner` — per-pair evaluation *timestamps* for the
  colour-class sweeps of Algorithm 2.  Within a class every improving
  pair is committed, so an evaluated-but-uncommitted pair is known
  non-positive; a pair needs re-evaluation exactly when an endpoint was
  touched *strictly after* the pair's last evaluation (its own commit at
  the same step flips the gain to non-positive and needs no re-check).
  This is the tightest mask the endpoint invariant admits.
* :class:`SweepPruner` — a per-position dirty mask at *sweep*
  granularity, for the serial ``best_row`` strategy.  ``best_row``
  commits only the single best pair of a row, so other evaluated pairs
  of that row may hold positive gains without being committed —
  per-pair timestamps would wrongly skip them.  Row granularity
  restores exactness: if row ``u`` commits, ``u`` itself is marked
  dirty and the whole row re-evaluates next sweep; if it commits
  nothing, every pair of the row was non-positive.  ``argmax``
  tie-breaking is also preserved: ties at a *positive* maximum are all
  dirty pairs, and pruning keeps their relative order.

Dirtiness must be *live within a sweep*: a pair whose endpoint was
touched by an earlier colour class (or earlier row) of the current sweep
may already improve, so :class:`SweepPruner` tests candidates against
``dirty_previous_sweep | dirty_so_far_this_sweep`` and
:class:`ClassPruner` compares timestamps at class-step resolution.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["ClassPruner", "SweepPruner"]


class SweepPruner:
    """Per-position dirty mask plus evaluation accounting.

    Works on any ``xp``-compatible array module (NumPy default, CuPy via
    :mod:`repro.accel.backend`), so the mask lives wherever the error
    matrix lives.

    Attributes
    ----------
    live:
        Boolean mask: position touched in the previous sweep *or* so far
        in the current one.  All-true initially, so sweep 1 evaluates
        every pair (there is no history to prune against yet).
    pairs_evaluated / pairs_skipped:
        Candidate-level counters across the whole run, exposed in
        :class:`~repro.localsearch.base.LocalSearchResult` meta and the
        perf-smoke benchmark.
    """

    def __init__(self, size: int, xp: Any = np) -> None:
        self.xp = xp
        self.size = size
        self.live = xp.ones(size, dtype=bool)
        self._next = xp.zeros(size, dtype=bool)
        self.pairs_evaluated = 0
        self.pairs_skipped = 0
        self.sweeps = 0

    def select(self, us: Any, vs: Any) -> tuple[Any, Any]:
        """Filter aligned pair arrays down to candidates with a dirty end."""
        mask = self.live[us] | self.live[vs]
        kept = int(mask.sum())
        self.pairs_evaluated += kept
        self.pairs_skipped += us.shape[0] - kept
        if kept == us.shape[0]:
            return us, vs
        return us[mask], vs[mask]

    def mark(self, us: Any, vs: Any) -> None:
        """Record committed swaps: both endpoints become dirty now."""
        self._next[us] = True
        self._next[vs] = True
        self.live[us] = True
        self.live[vs] = True

    def mark_pair(self, u: int, v: int) -> None:
        """Scalar variant of :meth:`mark` for the serial row loop."""
        self._next[u] = True
        self._next[v] = True
        self.live[u] = True
        self.live[v] = True

    def count(self, evaluated: int, skipped: int) -> None:
        """Account candidates selected outside :meth:`select`."""
        self.pairs_evaluated += evaluated
        self.pairs_skipped += skipped

    def end_sweep(self) -> None:
        """Roll the masks: next sweep prunes against this sweep's commits."""
        self.sweeps += 1
        self.live = self._next
        self._next = self.xp.zeros(self.size, dtype=bool)

    def stats(self) -> dict[str, int]:
        return {
            "pairs_evaluated": int(self.pairs_evaluated),
            "pairs_skipped": int(self.pairs_skipped),
        }


class ClassPruner:
    """Per-pair timestamp pruning for the colour-class sweeps.

    ``touched[p]`` is the class-step at which position ``p``'s tile last
    changed; each class keeps an aligned ``last_eval`` array recording
    when each of its pairs was last evaluated.  A pair is evaluated only
    when ``touched`` of an endpoint exceeds its ``last_eval`` — strictly,
    because a commit at the pair's own evaluation step leaves the gain
    exactly negated (non-positive), proving it clean until a *later*
    touch.  ``last_eval`` arrays are created lazily per class id and live
    on whatever array module ``xp`` names, so the masks stay device-side
    under CuPy.
    """

    def __init__(self, size: int, xp: Any = np) -> None:
        self.xp = xp
        self.size = size
        self.touched = xp.zeros(size, dtype=np.int64)
        self._last_eval: dict[int, Any] = {}
        self.step = 0
        self.pairs_evaluated = 0
        self.pairs_skipped = 0
        self.sweeps = 0

    def select(self, class_id: int, us: Any, vs: Any) -> tuple[Any, Any]:
        """Advance one class-step; return the pairs needing evaluation.

        Selected pairs are stamped with the new step — commits reported
        via :meth:`mark` before the next ``select`` land on this step.
        """
        self.step += 1
        last_eval = self._last_eval.get(class_id)
        if last_eval is None:  # first sweep: everything needs evaluating
            last_eval = self.xp.full(us.shape[0], -1, dtype=np.int64)
            self._last_eval[class_id] = last_eval
        need = (self.touched[us] > last_eval) | (self.touched[vs] > last_eval)
        kept = int(need.sum())
        self.pairs_evaluated += kept
        self.pairs_skipped += us.shape[0] - kept
        if kept == us.shape[0]:
            last_eval[...] = self.step
            return us, vs
        if kept == 0:
            return us[:0], vs[:0]
        last_eval[need] = self.step
        return us[need], vs[need]

    def mark(self, us: Any, vs: Any) -> None:
        """Record commits of the current class-step."""
        self.touched[us] = self.step
        self.touched[vs] = self.step

    def end_sweep(self) -> None:
        self.sweeps += 1

    def stats(self) -> dict[str, int]:
        return {
            "pairs_evaluated": int(self.pairs_evaluated),
            "pairs_skipped": int(self.pairs_skipped),
        }
