"""Simulated-annealing rearrangement (extension beyond the paper).

Algorithm 1 terminates at a 2-opt local optimum, which Table I shows is
1.7-2.3% above the true optimum.  Annealing closes part of that gap
without the O(S^3) matching: random pair swaps are accepted when improving
and with probability ``exp(gain / T)`` when not, under a geometric cooling
schedule, and the run ends with a plain local-search polish so the result
is still 2-opt optimal.

Everything is integer error arithmetic; only the Metropolis test uses
floats.  Fully deterministic for a given seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult
from repro.localsearch.serial import local_search_serial
from repro.tiles.permutation import identity_permutation
from repro.utils.arrays import cached_positions
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.rng import make_rng
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["simulated_annealing"]


def simulated_annealing(
    matrix: ErrorMatrix,
    initial: PermutationArray | None = None,
    *,
    seed: int | np.random.Generator = 0,
    initial_temperature: float | None = None,
    cooling: float = 0.95,
    steps_per_temperature: int | None = None,
    min_temperature: float = 0.5,
    polish: bool = True,
) -> LocalSearchResult:
    """Anneal a rearrangement, then (optionally) polish with Algorithm 1.

    Parameters
    ----------
    matrix:
        Error matrix ``E[u, v]``.
    initial:
        Starting rearrangement (identity when omitted).
    seed:
        RNG seed; results are deterministic per seed.
    initial_temperature:
        Starting temperature; defaults to the mean absolute swap gain of a
        random sample, so roughly half of all proposals start accepted.
    cooling:
        Geometric cooling factor in ``(0, 1)``.
    steps_per_temperature:
        Proposals per temperature level; defaults to ``4 * S``.
    min_temperature:
        Stop annealing below this temperature.
    polish:
        Run Algorithm 1 afterwards so the output is 2-opt optimal.
    """
    matrix = check_error_matrix(matrix)
    s = matrix.shape[0]
    if initial is None:
        perm = identity_permutation(s)
    else:
        perm = check_permutation(initial, s).copy()
    if not 0.0 < cooling < 1.0:
        raise ValidationError(f"cooling must be in (0, 1), got {cooling}")
    if min_temperature <= 0:
        raise ValidationError(f"min_temperature must be positive, got {min_temperature}")
    rng = make_rng(seed)
    steps = steps_per_temperature if steps_per_temperature is not None else 4 * s
    if steps < 1:
        raise ValidationError(f"steps_per_temperature must be >= 1, got {steps}")

    positions = cached_positions(s)
    current = int(matrix[perm, positions].sum())
    best_perm = perm.copy()
    best = current

    if initial_temperature is None:
        # Sample the gain scale so acceptance starts permissive.
        sample = min(256, s * (s - 1) // 2) or 1
        a = rng.integers(0, s, size=sample)
        b = rng.integers(0, s, size=sample)
        gains = (
            matrix[perm[a], a]
            + matrix[perm[b], b]
            - matrix[perm[b], a]
            - matrix[perm[a], b]
        )
        initial_temperature = float(np.abs(gains).mean()) or 1.0
    if initial_temperature <= 0:
        raise ValidationError(
            f"initial_temperature must be positive, got {initial_temperature}"
        )

    temperature = initial_temperature
    totals: list[int] = []
    accepted_counts: list[int] = []
    if s > 1:
        while temperature > min_temperature:
            accepted = 0
            pair_a = rng.integers(0, s, size=steps)
            pair_b = rng.integers(0, s, size=steps)
            uniforms = rng.random(steps)
            for idx in range(steps):
                u = int(pair_a[idx])
                v = int(pair_b[idx])
                if u == v:
                    continue
                tile_u = perm[u]
                tile_v = perm[v]
                gain = int(
                    matrix[tile_u, u]
                    + matrix[tile_v, v]
                    - matrix[tile_v, u]
                    - matrix[tile_u, v]
                )
                if gain > 0 or uniforms[idx] < math.exp(
                    min(0.0, gain / temperature)
                ):
                    perm[u] = tile_v
                    perm[v] = tile_u
                    current -= gain
                    accepted += 1
                    if current < best:
                        best = current
                        best_perm = perm.copy()
            totals.append(current)
            accepted_counts.append(accepted)
            temperature *= cooling

    # Keep the best permutation ever seen, not the last one.
    perm = best_perm
    annealing_levels = len(totals)
    if polish:
        polished = local_search_serial(matrix, perm, strategy="best_row")
        perm = polished.permutation
        totals.append(polished.total)
        accepted_counts.append(polished.trace.total_swaps)
    final = int(matrix[perm, positions].sum())
    return LocalSearchResult(
        permutation=perm,
        total=final,
        trace=ConvergenceTrace(tuple(accepted_counts), tuple(totals or [final])),
        strategy="annealing",
        meta={
            "initial_temperature": initial_temperature,
            "temperature_levels": annealing_levels,
            "polished": polish,
        },
    )
