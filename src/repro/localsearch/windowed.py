"""Windowed (candidate-restricted) local search — a speed/quality ablation.

Algorithm 1 tests all ``S(S-1)/2`` pairs per sweep.  Most improving swaps,
however, exchange tiles of *similar brightness* — a swap between a very
dark and a very bright tile almost never helps.  This variant sorts
positions by the luminance of their current tile and only tests pairs
within a window of ``w`` neighbours in that order, shrinking a sweep to
``S * w`` tests.

With ``window >= S - 1`` it degenerates to a full (best-row) sweep.  The
result is *not* guaranteed 2-opt optimal for smaller windows — that is the
trade the ablation bench quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConvergenceError, ValidationError
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult
from repro.tiles.permutation import identity_permutation
from repro.utils.arrays import cached_positions
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["local_search_windowed"]


def local_search_windowed(
    matrix: ErrorMatrix,
    tile_luminance: np.ndarray,
    initial: PermutationArray | None = None,
    *,
    window: int = 16,
    max_sweeps: int = 10_000,
) -> LocalSearchResult:
    """2-opt restricted to luminance-neighbour pairs.

    Parameters
    ----------
    matrix:
        Error matrix ``E[u, v]``.
    tile_luminance:
        Per-input-tile brightness, shape ``(S,)`` (e.g.
        :func:`repro.tiles.features.mean_luminance` of the input stack);
        defines the neighbourhood ordering.
    window:
        Neighbours per position tested each sweep.
    """
    matrix = check_error_matrix(matrix)
    s = matrix.shape[0]
    tile_luminance = np.asarray(tile_luminance, dtype=np.float64)
    if tile_luminance.shape != (s,):
        raise ValidationError(
            f"tile_luminance must have shape ({s},), got {tile_luminance.shape}"
        )
    if window < 1:
        raise ValidationError(f"window must be >= 1, got {window}")
    if max_sweeps < 1:
        raise ValidationError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if initial is None:
        perm = identity_permutation(s)
    else:
        perm = check_permutation(initial, s).copy()

    positions = cached_positions(s)
    swap_counts: list[int] = []
    totals: list[int] = []
    while True:
        # Order positions by the brightness of the tile currently there;
        # re-derived per sweep since swaps move tiles around.
        order = np.argsort(tile_luminance[perm], kind="stable")
        swaps = 0
        for rank in range(s):
            u = int(order[rank])
            lo = rank + 1
            hi = min(s, lo + window)
            if lo >= s:
                break
            neighbours = order[lo:hi]
            tile_u = perm[u]
            tiles_nb = perm[neighbours]
            gains = (
                matrix[tile_u, u]
                + matrix[tiles_nb, neighbours]
                - matrix[tiles_nb, u]
                - matrix[tile_u, neighbours]
            )
            best = int(np.argmax(gains))
            if gains[best] > 0:
                v = int(neighbours[best])
                perm[u], perm[v] = perm[v], perm[u]
                swaps += 1
        swap_counts.append(swaps)
        totals.append(int(matrix[perm, positions].sum()))
        if swaps == 0:
            break
        if len(swap_counts) >= max_sweeps:
            raise ConvergenceError(
                f"windowed local search exceeded {max_sweeps} sweeps"
            )
    return LocalSearchResult(
        permutation=perm,
        total=totals[-1],
        trace=ConvergenceTrace(tuple(swap_counts), tuple(totals)),
        strategy=f"windowed-{window}",
        meta={"window": window},
    )
