"""Serial approximation algorithm (paper Algorithm 1) and a vectorised
serial variant.

Two sweep strategies:

* ``"first"`` — the paper's Algorithm 1, verbatim: scan all pairs
  ``u < v`` in lexicographic order and commit every improving swap as soon
  as it is found.  Implemented as a scalar Python loop — deliberately, since
  this is also the measured "CPU" column of the Table III reproduction.
* ``"best_row"`` — a vectorised serial variant: for each position ``u``
  compute the gains against all ``v > u`` at once and commit the single
  best improving swap.  Different visit order, same fixed points: both
  strategies terminate exactly at pairwise-swap-optimal permutations, so
  final quality is comparable (the sweep ablation quantifies this).

Every committed swap strictly decreases the integer total error, so
termination is guaranteed; ``max_sweeps`` is only a safety net.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.accel.dirty import SweepPruner
from repro.exceptions import ConvergenceError, ValidationError
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult
from repro.tiles.permutation import identity_permutation
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.arrays import cached_positions
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["local_search_serial"]


def _sweep_first(matrix_list: list[list[int]], perm: list[int], s: int) -> int:
    """One Algorithm-1 sweep over all pairs; returns committed swap count.

    Operates on Python lists (not ndarrays): scalar indexing on lists is
    several times faster than on NumPy arrays, and this loop *is* the
    serial-CPU baseline being measured.
    """
    swaps = 0
    for u in range(s):
        row_u_base = perm[u]
        e_u = matrix_list[row_u_base]
        current_u = e_u[u]
        for v in range(u + 1, s):
            tile_v = perm[v]
            e_v = matrix_list[tile_v]
            # E[p[u],u] + E[p[v],v] > E[p[v],u] + E[p[u],v]
            if current_u + e_v[v] > e_v[u] + e_u[v]:
                perm[u], perm[v] = tile_v, row_u_base
                swaps += 1
                row_u_base = tile_v
                e_u = e_v
                current_u = e_u[u]
    return swaps


def _sweep_first_masked(
    matrix_list: list[list[int]],
    perm: list[int],
    s: int,
    allowed: list[list[bool]],
) -> int:
    """Algorithm-1 sweep restricted to candidate placements.

    A swap of positions ``(u, v)`` moves tile ``p[v]`` to ``u`` and tile
    ``p[u]`` to ``v``; it is evaluated only when both *new* placements
    are shortlisted in ``allowed[tile][position]``.  Kept separate from
    :func:`_sweep_first` so the measured scalar baseline stays untouched.
    """
    swaps = 0
    for u in range(s):
        tile_u = perm[u]
        e_u = matrix_list[tile_u]
        ok_u = allowed[tile_u]
        current_u = e_u[u]
        for v in range(u + 1, s):
            tile_v = perm[v]
            e_v = matrix_list[tile_v]
            if (
                allowed[tile_v][u]
                and ok_u[v]
                and current_u + e_v[v] > e_v[u] + e_u[v]
            ):
                perm[u], perm[v] = tile_v, tile_u
                swaps += 1
                tile_u = tile_v
                e_u = e_v
                ok_u = allowed[tile_u]
                current_u = e_u[u]
    return swaps


def _sweep_best_row(
    matrix: np.ndarray,
    perm: np.ndarray,
    s: int,
    pruner: SweepPruner | None = None,
    allowed: np.ndarray | None = None,
) -> int:
    """One best-improvement-per-row sweep (vectorised); returns swap count.

    With a :class:`~repro.accel.dirty.SweepPruner`, rows are evaluated
    only against candidates with a dirty endpoint: a pair both of whose
    endpoints are untouched since its last evaluation had a non-positive
    gain then and the same gain now, so skipping it cannot change the
    committed swap — including ``argmax`` tie-breaking, since every tie
    at a *positive* maximum is a dirty pair and pruning preserves their
    relative order (see the :mod:`repro.accel.dirty` module doc).
    """
    positions = cached_positions(s)
    swaps = 0
    for u in range(s):
        rest = positions[u + 1 :]
        if rest.size == 0:
            break
        if pruner is None:
            candidates = rest
        elif pruner.live[u]:
            candidates = rest
            pruner.count(rest.size, 0)
        else:
            candidates = rest[pruner.live[rest]]
            pruner.count(candidates.size, rest.size - candidates.size)
            if candidates.size == 0:
                continue
        tile_u = perm[u]
        tiles_rest = perm[candidates]
        gains = (
            matrix[tile_u, u]
            + matrix[tiles_rest, candidates]
            - matrix[tiles_rest, u]
            - matrix[tile_u, candidates]
        )
        if allowed is not None:
            # Candidate restriction: a swap must place both tiles on
            # shortlisted positions.  Candidacy depends only on the pair's
            # endpoint tiles, so an untouched pair keeps both its gain and
            # its eligibility — the pruner's skip argument still holds.
            ok = allowed[tiles_rest, u] & allowed[tile_u, candidates]
            gains = np.where(ok, gains, -1)
        best = int(np.argmax(gains))
        if gains[best] > 0:
            v = int(candidates[best])
            perm[u], perm[v] = perm[v], perm[u]
            if pruner is not None:
                pruner.mark_pair(u, v)
            swaps += 1
    return swaps


def local_search_serial(
    matrix: ErrorMatrix,
    initial: PermutationArray | None = None,
    *,
    strategy: str = "first",
    max_sweeps: int = 10_000,
    prune: bool = True,
    candidates: np.ndarray | None = None,
    on_sweep: Callable[[int, int, int], None] | None = None,
) -> LocalSearchResult:
    """Run the serial approximation algorithm to a 2-opt local optimum.

    Parameters
    ----------
    matrix:
        Error matrix ``E[u, v]``.
    initial:
        Starting rearrangement; identity (the paper's implicit start — the
        unrearranged input) when omitted.
    strategy:
        ``"first"`` (paper Algorithm 1) or ``"best_row"`` (vectorised).
    max_sweeps:
        Safety bound; exceeding it raises :class:`ConvergenceError`.
    prune:
        Active-pair pruning for ``"best_row"``: sweeps after the first
        evaluate only pairs with at least one endpoint touched by a
        committed swap (:mod:`repro.accel.dirty`).  Bit-identical results;
        late sweeps drop from ``O(S^2)`` to ``O(S * dirty)``.  The
        ``"first"`` strategy is the paper's measured scalar baseline and
        is never pruned.
    candidates:
        Optional boolean ``(S, S)`` mask over ``(tile, position)``
        placements (a :meth:`~repro.cost.sparse.SparseErrorMatrix.mask`):
        swaps are evaluated only when both resulting placements are
        candidates.  An all-``True`` mask reproduces the unrestricted
        search exactly; pruned-sweep bookkeeping is preserved because a
        pair's eligibility depends only on its endpoint tiles.
    on_sweep:
        Optional progress hook called after every sweep with
        ``(sweep_index, swaps_committed, total_error)``.  Exceptions it
        raises propagate and abort the search — that is the cancellation
        path the streaming job gateway uses.
    """
    matrix = check_error_matrix(matrix)
    s = matrix.shape[0]
    if initial is None:
        perm = identity_permutation(s)
    else:
        perm = check_permutation(initial, s).copy()
    if strategy not in ("first", "best_row"):
        raise ValidationError(f"unknown strategy {strategy!r} (use first|best_row)")
    if max_sweeps < 1:
        raise ValidationError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if candidates is not None:
        candidates = np.asarray(candidates, dtype=bool)
        if candidates.shape != (s, s):
            raise ValidationError(
                f"candidates mask must be ({s}, {s}), got {candidates.shape}"
            )

    swap_counts: list[int] = []
    totals: list[int] = []
    positions = cached_positions(s)
    meta: dict = {}
    if strategy == "first":
        matrix_list = matrix.tolist()
        perm_list = perm.tolist()
        allowed_list = candidates.tolist() if candidates is not None else None
        while True:
            if allowed_list is None:
                swaps = _sweep_first(matrix_list, perm_list, s)
            else:
                swaps = _sweep_first_masked(
                    matrix_list, perm_list, s, allowed_list
                )
            perm = np.array(perm_list, dtype=np.intp)
            swap_counts.append(swaps)
            totals.append(int(matrix[perm, positions].sum()))
            if on_sweep is not None:
                on_sweep(len(swap_counts) - 1, swaps, totals[-1])
            if swaps == 0:
                break
            if len(swap_counts) >= max_sweeps:
                raise ConvergenceError(
                    f"serial local search exceeded {max_sweeps} sweeps"
                )
    else:
        pruner = SweepPruner(s) if prune else None
        while True:
            swaps = _sweep_best_row(matrix, perm, s, pruner, candidates)
            if pruner is not None:
                pruner.end_sweep()
            swap_counts.append(swaps)
            totals.append(int(matrix[perm, positions].sum()))
            if on_sweep is not None:
                on_sweep(len(swap_counts) - 1, swaps, totals[-1])
            if swaps == 0:
                break
            if len(swap_counts) >= max_sweeps:
                raise ConvergenceError(
                    f"serial local search exceeded {max_sweeps} sweeps"
                )
        if pruner is not None:
            meta = pruner.stats()
    return LocalSearchResult(
        permutation=perm,
        total=totals[-1],
        trace=ConvergenceTrace(tuple(swap_counts), tuple(totals)),
        strategy=strategy,
        meta=meta,
    )
