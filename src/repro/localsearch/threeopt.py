"""Sampled 3-opt refinement (extension).

A 2-opt optimum admits no improving *pair* swap, but a 3-cycle — tile at
position ``a`` to ``b``, ``b``'s to ``c``, ``c``'s to ``a`` — can still
improve.  Exhausting all ``O(S^3)`` triples is hopeless, so this module
samples random triples per round, evaluates both rotation directions of
each vectorised, and commits improving rotations greedily (skipping
conflicts within a round).

Intended use: refinement *after* a 2-opt search, to shave part of the
remaining gap to the optimum at a controlled extra cost.  Deterministic
per seed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult
from repro.tiles.permutation import identity_permutation
from repro.utils.arrays import cached_positions
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.rng import make_rng
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["refine_three_opt"]


def refine_three_opt(
    matrix: ErrorMatrix,
    initial: PermutationArray | None = None,
    *,
    seed: int | np.random.Generator = 0,
    samples_per_round: int | None = None,
    max_rounds: int = 50,
    patience: int = 3,
) -> LocalSearchResult:
    """Refine a rearrangement with sampled 3-cycle rotations.

    Parameters
    ----------
    matrix:
        Error matrix ``E[u, v]``.
    initial:
        Starting rearrangement (identity when omitted) — typically a 2-opt
        optimum from :func:`local_search_serial` / ``_parallel``.
    samples_per_round:
        Random triples evaluated per round; defaults to ``8 * S``.
    max_rounds:
        Hard round budget.
    patience:
        Stop after this many consecutive rounds without improvement.
    """
    matrix = check_error_matrix(matrix)
    s = matrix.shape[0]
    if initial is None:
        perm = identity_permutation(s)
    else:
        perm = check_permutation(initial, s).copy()
    if max_rounds < 1:
        raise ValidationError(f"max_rounds must be >= 1, got {max_rounds}")
    if patience < 1:
        raise ValidationError(f"patience must be >= 1, got {patience}")
    rng = make_rng(seed)
    samples = samples_per_round if samples_per_round is not None else 8 * s
    if samples < 1:
        raise ValidationError(f"samples_per_round must be >= 1, got {samples}")

    positions = cached_positions(s)
    totals: list[int] = []
    commit_counts: list[int] = []
    stale = 0
    for _ in range(max_rounds):
        if s < 3:
            break
        triples = np.stack([rng.integers(0, s, size=samples) for _ in range(3)])
        a, b, c = triples
        distinct = (a != b) & (b != c) & (a != c)
        a, b, c = a[distinct], b[distinct], c[distinct]
        ta, tb, tc = perm[a], perm[b], perm[c]
        current = matrix[ta, a] + matrix[tb, b] + matrix[tc, c]
        # Rotation 1: a <- tc, b <- ta, c <- tb.
        rot1 = matrix[tc, a] + matrix[ta, b] + matrix[tb, c]
        # Rotation 2: a <- tb, b <- tc, c <- ta.
        rot2 = matrix[tb, a] + matrix[tc, b] + matrix[ta, c]
        gain1 = current - rot1
        gain2 = current - rot2
        best_gain = np.maximum(gain1, gain2)
        order = np.argsort(-best_gain, kind="stable")
        touched = np.zeros(s, dtype=bool)
        commits = 0
        for idx in order:
            if best_gain[idx] <= 0:
                break
            pa, pb, pc = int(a[idx]), int(b[idx]), int(c[idx])
            if touched[pa] or touched[pb] or touched[pc]:
                continue
            # Re-evaluate against the live permutation: earlier commits in
            # this round may have touched these tiles' competitors.
            va, vb, vc = perm[pa], perm[pb], perm[pc]
            cur = matrix[va, pa] + matrix[vb, pb] + matrix[vc, pc]
            r1 = matrix[vc, pa] + matrix[va, pb] + matrix[vb, pc]
            r2 = matrix[vb, pa] + matrix[vc, pb] + matrix[va, pc]
            if r1 <= r2 and r1 < cur:
                perm[pa], perm[pb], perm[pc] = vc, va, vb
            elif r2 < cur:
                perm[pa], perm[pb], perm[pc] = vb, vc, va
            else:
                continue
            touched[pa] = touched[pb] = touched[pc] = True
            commits += 1
        total = int(matrix[perm, positions].sum())
        commit_counts.append(commits)
        totals.append(total)
        if commits == 0:
            stale += 1
            if stale >= patience:
                break
        else:
            stale = 0
    final = int(matrix[perm, positions].sum())
    if not totals:
        totals = [final]
        commit_counts = [0]
    return LocalSearchResult(
        permutation=perm,
        total=final,
        trace=ConvergenceTrace(tuple(commit_counts), tuple(totals)),
        strategy="three_opt",
        meta={"samples_per_round": samples, "rounds": len(totals)},
    )
