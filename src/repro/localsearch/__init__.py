"""Approximation algorithms: serial (Algorithm 1) and parallel (Algorithm 2)
2-opt local search over tile swaps."""

from __future__ import annotations

from repro.localsearch.annealing import simulated_annealing
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult, swap_gains
from repro.localsearch.parallel import local_search_parallel
from repro.localsearch.restarts import multi_start_local_search
from repro.localsearch.serial import local_search_serial
from repro.localsearch.threeopt import refine_three_opt
from repro.localsearch.windowed import local_search_windowed

__all__ = [
    "local_search_windowed",
    "refine_three_opt",
    "ConvergenceTrace",
    "LocalSearchResult",
    "swap_gains",
    "local_search_serial",
    "local_search_parallel",
    "simulated_annealing",
    "multi_start_local_search",
]
