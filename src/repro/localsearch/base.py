"""Shared types and primitives for the local-search algorithms.

Both algorithms operate on the precomputed error matrix ``E[u, v]`` and a
permutation ``p`` (``p[v]`` = input tile at target position ``v``).  The
swap test at positions ``(a, b)`` is the paper's line 4:

``E(I_a, T_a) + E(I_b, T_b) > E(I_b, T_a) + E(I_a, T_b)``

which in matrix terms is ``E[p[a], a] + E[p[b], b] > E[p[b], a] + E[p[a], b]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.types import ErrorMatrix, PermutationArray

__all__ = ["ConvergenceTrace", "LocalSearchResult", "swap_gains"]


@dataclass(frozen=True)
class ConvergenceTrace:
    """Per-sweep convergence record.

    ``swap_counts[k]`` is the number of committed swaps in sweep ``k``;
    ``totals[k]`` is the total error after sweep ``k``.  The paper's
    reported quantity "the value k takes at most 9, 8, and 16" is
    :attr:`sweeps` (the number of full passes including the final
    swap-free one).
    """

    swap_counts: tuple[int, ...]
    totals: tuple[int, ...]

    @property
    def sweeps(self) -> int:
        return len(self.swap_counts)

    @property
    def total_swaps(self) -> int:
        return sum(self.swap_counts)


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search run."""

    permutation: PermutationArray
    total: int
    trace: ConvergenceTrace
    strategy: str
    meta: dict = field(default_factory=dict)

    @property
    def sweeps(self) -> int:
        """Number of full sweeps performed (the paper's ``k``)."""
        return self.trace.sweeps


def swap_gains(
    matrix: ErrorMatrix,
    perm: PermutationArray,
    positions_a: np.ndarray,
    positions_b: np.ndarray,
) -> np.ndarray:
    """Vectorised swap gains for aligned position pairs.

    ``gain[j] > 0`` means swapping the tiles at ``positions_a[j]`` and
    ``positions_b[j]`` reduces the total error by exactly ``gain[j]``.
    """
    tiles_a = perm[positions_a]
    tiles_b = perm[positions_b]
    current = matrix[tiles_a, positions_a] + matrix[tiles_b, positions_b]
    swapped = matrix[tiles_b, positions_a] + matrix[tiles_a, positions_b]
    return current - swapped
