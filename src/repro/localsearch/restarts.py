"""Multi-start local search (extension beyond the paper).

2-opt local optima depend on the starting permutation.  Running the search
from several random starts and keeping the best is the classic cheap
de-biasing; this module provides it for both the serial and parallel
algorithms, with deterministic per-start seeds.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.localsearch.base import LocalSearchResult
from repro.localsearch.parallel import local_search_parallel
from repro.localsearch.serial import local_search_serial
from repro.tiles.permutation import identity_permutation, random_permutation
from repro.types import ErrorMatrix
from repro.utils.validation import check_error_matrix

__all__ = ["multi_start_local_search"]


def multi_start_local_search(
    matrix: ErrorMatrix,
    *,
    restarts: int = 4,
    seed: int = 0,
    algorithm: str = "parallel",
    include_identity: bool = True,
) -> LocalSearchResult:
    """Run the local search from several starts; return the best result.

    Start 0 is the identity (the paper's implicit start) when
    ``include_identity`` is set; the remaining starts are random
    permutations seeded ``seed + i`` so the whole procedure is
    deterministic.
    """
    matrix = check_error_matrix(matrix)
    if restarts < 1:
        raise ValidationError(f"restarts must be >= 1, got {restarts}")
    if algorithm == "serial":
        run = local_search_serial
    elif algorithm == "parallel":
        run = local_search_parallel
    else:
        raise ValidationError(f"unknown algorithm {algorithm!r} (use serial|parallel)")
    s = matrix.shape[0]
    starts: list[np.ndarray] = []
    if include_identity:
        starts.append(identity_permutation(s))
    while len(starts) < restarts:
        starts.append(random_permutation(s, seed=seed + len(starts)))

    best: LocalSearchResult | None = None
    attempts = []
    for start in starts[:restarts]:
        result = run(matrix, start)
        attempts.append(result.total)
        if best is None or result.total < best.total:
            best = result
    assert best is not None
    return LocalSearchResult(
        permutation=best.permutation,
        total=best.total,
        trace=best.trace,
        strategy=f"multistart-{algorithm}",
        meta={"attempt_totals": attempts, "restarts": len(attempts), **best.meta},
    )
