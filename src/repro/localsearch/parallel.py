"""Parallel approximation algorithm (paper Algorithm 2).

The edge set of ``K_S`` is partitioned into colour classes
``P_1 .. P_S`` (Theorem 1, :mod:`repro.coloring`); within one class all
pairs are vertex-disjoint, so their swap tests evaluate against the same
snapshot of the permutation and commit simultaneously — exactly the
semantics of one CUDA kernel launch per class in the paper's GPU
implementation.

Execution backends:

* ``"vectorized"`` (default) — each colour class is one batched NumPy
  gather/compare/scatter.  This is the SIMT lane-execution model: every
  "thread" (pair) runs the same instruction sequence in lock step.  It is
  the measured "GPU" column of the Table III reproduction.
* ``"threads"`` — the class is split across a thread pool, demonstrating
  that the colour-class schedule really does make concurrent commits safe
  (threads write disjoint permutation slots).  NumPy fancy indexing holds
  the GIL, so this backend is about correctness-under-real-concurrency,
  not speed.
* ``"gpusim"`` — executes each class as a kernel launch on the virtual
  GPU (:mod:`repro.gpusim`), exercising the grid/block/shared-memory code
  path used for the performance model.

Like the serial algorithm, every committed swap strictly decreases the
integer total error, so the outer repeat-until-no-swap loop terminates.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.coloring.groups import EdgeGroups, build_edge_groups
from repro.exceptions import ConvergenceError, ValidationError
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult
from repro.tiles.permutation import identity_permutation
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["local_search_parallel"]


def _commit_class(
    matrix: np.ndarray, perm: np.ndarray, us: np.ndarray, vs: np.ndarray
) -> int:
    """Evaluate and commit all improving swaps of one colour class."""
    if us.size == 0:
        return 0
    tiles_u = perm[us]
    tiles_v = perm[vs]
    current = matrix[tiles_u, us] + matrix[tiles_v, vs]
    swapped = matrix[tiles_v, us] + matrix[tiles_u, vs]
    improving = current > swapped
    if not improving.any():
        return 0
    # Disjointness of the class makes this scatter race-free.
    perm[us[improving]] = tiles_v[improving]
    perm[vs[improving]] = tiles_u[improving]
    return int(improving.sum())


def _commit_class_threads(
    matrix: np.ndarray,
    perm: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    pool: ThreadPoolExecutor,
    workers: int,
) -> int:
    """Thread-pool variant: chunks of one class commit concurrently."""
    if us.size == 0:
        return 0
    chunks = np.array_split(np.arange(us.size), workers)
    futures = [
        pool.submit(_commit_class, matrix, perm, us[c], vs[c])
        for c in chunks
        if c.size
    ]
    return sum(f.result() for f in futures)


def local_search_parallel(
    matrix: ErrorMatrix,
    initial: PermutationArray | None = None,
    *,
    groups: EdgeGroups | None = None,
    backend: str = "vectorized",
    workers: int = 4,
    max_sweeps: int = 10_000,
    on_sweep: Callable[[int, int, int], None] | None = None,
) -> LocalSearchResult:
    """Run Algorithm 2 to a 2-opt local optimum.

    Parameters
    ----------
    matrix:
        Error matrix ``E[u, v]``.
    initial:
        Starting rearrangement (identity when omitted).
    groups:
        Precomputed edge groups; built (and cached) from ``S`` when omitted
        — the paper precomputes them once per tile count (Section IV-B).
    backend:
        ``"vectorized"``, ``"threads"`` or ``"gpusim"`` (see module doc).
    workers:
        Thread count for the ``"threads"`` backend.
    max_sweeps:
        Safety bound; exceeding it raises :class:`ConvergenceError`.
    on_sweep:
        Optional progress hook called after every sweep with
        ``(sweep_index, swaps_committed, total_error)``; exceptions it
        raises propagate and abort the search (the gateway's
        cancellation path).
    """
    matrix = check_error_matrix(matrix)
    s = matrix.shape[0]
    if initial is None:
        perm = identity_permutation(s)
    else:
        perm = check_permutation(initial, s).copy()
    if groups is None:
        groups = build_edge_groups(s)
    if groups.size != s:
        raise ValidationError(
            f"edge groups are for S={groups.size}, matrix has S={s}"
        )
    if backend not in ("vectorized", "threads", "gpusim"):
        raise ValidationError(
            f"unknown backend {backend!r} (use vectorized|threads|gpusim)"
        )
    if max_sweeps < 1:
        raise ValidationError(f"max_sweeps must be >= 1, got {max_sweeps}")

    if backend == "gpusim":
        # Deferred import: gpusim depends on this module's sibling packages.
        from repro.gpusim.kernels.swap_kernel import run_swap_class_on_device

        def commit(us: np.ndarray, vs: np.ndarray) -> int:
            return run_swap_class_on_device(matrix, perm, us, vs)

    elif backend == "threads":
        pool = ThreadPoolExecutor(max_workers=workers)

        def commit(us: np.ndarray, vs: np.ndarray) -> int:
            return _commit_class_threads(matrix, perm, us, vs, pool, workers)

    else:

        def commit(us: np.ndarray, vs: np.ndarray) -> int:
            return _commit_class(matrix, perm, us, vs)

    positions = np.arange(s)
    swap_counts: list[int] = []
    totals: list[int] = []
    kernel_launches = 0
    try:
        while True:
            swaps = 0
            for us, vs in groups.classes:
                swaps += commit(us, vs)
                kernel_launches += 1
            swap_counts.append(swaps)
            totals.append(int(matrix[perm, positions].sum()))
            if on_sweep is not None:
                on_sweep(len(swap_counts) - 1, swaps, totals[-1])
            if swaps == 0:
                break
            if len(swap_counts) >= max_sweeps:
                raise ConvergenceError(
                    f"parallel local search exceeded {max_sweeps} sweeps"
                )
    finally:
        if backend == "threads":
            pool.shutdown(wait=True)
    return LocalSearchResult(
        permutation=perm,
        total=totals[-1],
        trace=ConvergenceTrace(tuple(swap_counts), tuple(totals)),
        strategy=f"parallel-{backend}",
        meta={"kernel_launches": kernel_launches, "classes": groups.class_count},
    )
