"""Parallel approximation algorithm (paper Algorithm 2).

The edge set of ``K_S`` is partitioned into colour classes
``P_1 .. P_S`` (Theorem 1, :mod:`repro.coloring`); within one class all
pairs are vertex-disjoint, so their swap tests evaluate against the same
snapshot of the permutation and commit simultaneously — exactly the
semantics of one CUDA kernel launch per class in the paper's GPU
implementation.

Execution backends:

* ``"vectorized"`` (default) — each colour class is one batched NumPy
  gather/compare/scatter.  This is the SIMT lane-execution model: every
  "thread" (pair) runs the same instruction sequence in lock step.  It is
  the measured "GPU" column of the Table III reproduction.
* ``"threads"`` — the class is split across a thread pool, demonstrating
  that the colour-class schedule really does make concurrent commits safe
  (threads write disjoint permutation slots).  NumPy fancy indexing holds
  the GIL, so this backend is about correctness-under-real-concurrency,
  not speed.
* ``"gpusim"`` — executes each class as a kernel launch on the virtual
  GPU (:mod:`repro.gpusim`), exercising the grid/block/shared-memory code
  path used for the performance model.

Like the serial algorithm, every committed swap strictly decreases the
integer total error, so the outer repeat-until-no-swap loop terminates.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.accel.backend import ArrayBackend, get_backend
from repro.accel.dirty import ClassPruner
from repro.coloring.groups import EdgeGroups, build_edge_groups
from repro.exceptions import ConvergenceError, ValidationError
from repro.localsearch.base import ConvergenceTrace, LocalSearchResult
from repro.tiles.permutation import identity_permutation
from repro.types import ErrorMatrix, PermutationArray
from repro.utils.arrays import cached_positions
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = ["local_search_parallel"]


def _commit_class(
    matrix: np.ndarray,
    perm: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    pruner: ClassPruner | None = None,
    class_id: int = 0,
    allowed: np.ndarray | None = None,
) -> int:
    """Evaluate and commit all improving swaps of one colour class.

    With a :class:`~repro.accel.dirty.ClassPruner` the class is first
    restricted to pairs with an endpoint touched since their last
    evaluation — exact (the class commits *every* improving pair, so an
    untouched pair's gain is known non-positive; see
    :mod:`repro.accel.dirty`) — and committed endpoints are stamped with
    the current class-step.
    """
    if pruner is not None:
        us, vs = pruner.select(class_id, us, vs)
    if us.size == 0:
        return 0
    tiles_u = perm[us]
    tiles_v = perm[vs]
    current = matrix[tiles_u, us] + matrix[tiles_v, vs]
    swapped = matrix[tiles_v, us] + matrix[tiles_u, vs]
    improving = current > swapped
    if allowed is not None:
        # Sparse candidate restriction: both post-swap placements must be
        # shortlisted.  Eligibility is a pure function of the endpoint
        # tiles, so the pruner's untouched-pair skip stays exact.
        improving &= allowed[tiles_v, us] & allowed[tiles_u, vs]
    if not improving.any():
        return 0
    committed_us = us[improving]
    committed_vs = vs[improving]
    # Disjointness of the class makes this scatter race-free.
    perm[committed_us] = tiles_v[improving]
    perm[committed_vs] = tiles_u[improving]
    if pruner is not None:
        pruner.mark(committed_us, committed_vs)
    return int(improving.sum())


def _commit_class_threads(
    matrix: np.ndarray,
    perm: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    pool: ThreadPoolExecutor,
    workers: int,
    allowed: np.ndarray | None = None,
) -> int:
    """Thread-pool variant: chunks of one class commit concurrently."""
    if us.size == 0:
        return 0
    chunks = np.array_split(np.arange(us.size), workers)
    futures = [
        pool.submit(
            _commit_class, matrix, perm, us[c], vs[c], None, 0, allowed
        )
        for c in chunks
        if c.size
    ]
    return sum(f.result() for f in futures)


def local_search_parallel(
    matrix: ErrorMatrix,
    initial: PermutationArray | None = None,
    *,
    groups: EdgeGroups | None = None,
    backend: str = "vectorized",
    workers: int = 4,
    max_sweeps: int = 10_000,
    prune: bool = True,
    candidates: np.ndarray | None = None,
    array_backend: str | ArrayBackend | None = None,
    on_sweep: Callable[[int, int, int], None] | None = None,
) -> LocalSearchResult:
    """Run Algorithm 2 to a 2-opt local optimum.

    Parameters
    ----------
    matrix:
        Error matrix ``E[u, v]``.
    initial:
        Starting rearrangement (identity when omitted).
    groups:
        Precomputed edge groups; built (and cached) from ``S`` when omitted
        — the paper precomputes them once per tile count (Section IV-B).
    backend:
        ``"vectorized"``, ``"threads"`` or ``"gpusim"`` (see module doc).
    workers:
        Thread count for the ``"threads"`` backend.
    max_sweeps:
        Safety bound; exceeding it raises :class:`ConvergenceError`.
    prune:
        Active-pair pruning (``"vectorized"`` backend only): after the
        first sweep a pair is evaluated only when an endpoint was
        touched by a committed swap since the pair's own last
        evaluation (per-pair timestamps).  Bit-identical results — the
        class commits every improving pair and an untouched pair cannot
        newly improve (see :mod:`repro.accel.dirty`) — while late
        sweeps drop from ``O(S^2)`` to ``O(S * dirty)``.  The
        ``"threads"`` and ``"gpusim"`` backends model full-width
        execution and ignore it.
    candidates:
        Optional boolean ``(S, S)`` mask over ``(tile, position)``
        placements (a :meth:`~repro.cost.sparse.SparseErrorMatrix.mask`):
        a class pair commits only when both post-swap placements are
        candidates.  All-``True`` reproduces the unrestricted search
        exactly.  Supported by the ``"vectorized"`` and ``"threads"``
        backends; ``"gpusim"`` models the paper's full-width kernels and
        rejects it.
    array_backend:
        Array library for the swap kernels (``None``/``"numpy"``,
        ``"cupy"``, ``"auto"`` — :mod:`repro.accel.backend`).  A
        non-NumPy backend moves the matrix, permutation, edge groups and
        dirty mask to the device once and sweeps there; only the
        ``"vectorized"`` execution backend supports it.
    on_sweep:
        Optional progress hook called after every sweep with
        ``(sweep_index, swaps_committed, total_error)``; exceptions it
        raises propagate and abort the search (the gateway's
        cancellation path).
    """
    matrix = check_error_matrix(matrix)
    s = matrix.shape[0]
    if initial is None:
        perm = identity_permutation(s)
    else:
        perm = check_permutation(initial, s).copy()
    if groups is None:
        groups = build_edge_groups(s)
    if groups.size != s:
        raise ValidationError(
            f"edge groups are for S={groups.size}, matrix has S={s}"
        )
    if backend not in ("vectorized", "threads", "gpusim"):
        raise ValidationError(
            f"unknown backend {backend!r} (use vectorized|threads|gpusim)"
        )
    if max_sweeps < 1:
        raise ValidationError(f"max_sweeps must be >= 1, got {max_sweeps}")
    xb = get_backend(array_backend)
    if not xb.is_numpy and backend != "vectorized":
        raise ValidationError(
            f"array backend {xb.name!r} requires the vectorized execution "
            f"backend, got {backend!r}"
        )
    if candidates is not None:
        candidates = np.asarray(candidates, dtype=bool)
        if candidates.shape != (s, s):
            raise ValidationError(
                f"candidates mask must be ({s}, {s}), got {candidates.shape}"
            )
        if backend == "gpusim":
            raise ValidationError(
                "candidate restriction is not supported by the gpusim "
                "backend (use vectorized or threads)"
            )

    # Device residency: with a non-NumPy array backend the matrix, the
    # permutation, the packed edge groups and the dirty mask all move to
    # the device once; sweeps run entirely there and only the scalar
    # per-sweep total (and the final permutation) cross back.
    work_matrix = matrix if xb.is_numpy else xb.asarray(matrix)
    work_perm = perm if xb.is_numpy else xb.asarray(perm)
    work_allowed = (
        None
        if candidates is None
        else (candidates if xb.is_numpy else xb.asarray(candidates))
    )
    classes = groups.classes
    if not xb.is_numpy:
        classes = tuple((xb.asarray(us), xb.asarray(vs)) for us, vs in classes)

    pruner = (
        ClassPruner(s, xp=xb.xp) if prune and backend == "vectorized" else None
    )
    if backend == "gpusim":
        # Deferred import: gpusim depends on this module's sibling packages.
        from repro.gpusim.kernels.swap_kernel import run_swap_class_on_device

        def commit(class_id: int, us: np.ndarray, vs: np.ndarray) -> int:
            return run_swap_class_on_device(work_matrix, work_perm, us, vs)

    elif backend == "threads":
        pool = ThreadPoolExecutor(max_workers=workers)

        def commit(class_id: int, us: np.ndarray, vs: np.ndarray) -> int:
            return _commit_class_threads(
                work_matrix, work_perm, us, vs, pool, workers, work_allowed
            )

    else:

        def commit(class_id: int, us: np.ndarray, vs: np.ndarray) -> int:
            return _commit_class(
                work_matrix, work_perm, us, vs, pruner, class_id, work_allowed
            )

    positions = (
        cached_positions(s) if xb.is_numpy else xb.xp.arange(s, dtype=np.intp)
    )
    swap_counts: list[int] = []
    totals: list[int] = []
    kernel_launches = 0
    try:
        while True:
            swaps = 0
            for class_id, (us, vs) in enumerate(classes):
                swaps += commit(class_id, us, vs)
                kernel_launches += 1
            if pruner is not None:
                pruner.end_sweep()
            swap_counts.append(swaps)
            totals.append(int(work_matrix[work_perm, positions].sum()))
            if on_sweep is not None:
                on_sweep(len(swap_counts) - 1, swaps, totals[-1])
            if swaps == 0:
                break
            if len(swap_counts) >= max_sweeps:
                raise ConvergenceError(
                    f"parallel local search exceeded {max_sweeps} sweeps"
                )
    finally:
        if backend == "threads":
            pool.shutdown(wait=True)
    if not xb.is_numpy:
        perm = np.asarray(xb.to_numpy(work_perm), dtype=np.intp)
    else:
        perm = work_perm
    meta = {
        "kernel_launches": kernel_launches,
        "classes": groups.class_count,
        "array_backend": xb.name,
    }
    if pruner is not None:
        meta.update(pruner.stats())
    return LocalSearchResult(
        permutation=perm,
        total=totals[-1],
        trace=ConvergenceTrace(tuple(swap_counts), tuple(totals)),
        strategy=f"parallel-{backend}",
        meta=meta,
    )
