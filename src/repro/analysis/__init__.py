"""Analysis tools: rearrangement statistics and convergence curves."""

from __future__ import annotations

from repro.analysis.convergence import convergence_curve, convergence_table
from repro.analysis.displacement import (
    DisplacementStats,
    displacement_stats,
    tile_displacements,
)

__all__ = [
    "convergence_curve",
    "convergence_table",
    "DisplacementStats",
    "displacement_stats",
    "tile_displacements",
]
