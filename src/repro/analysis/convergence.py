"""Convergence-curve utilities for the local-search algorithms.

The paper reports only the terminal sweep count ``k``; these helpers
expose the whole curve — error and swap count per sweep — as arrays and as
a formatted table, for the analysis example and the convergence bench.
"""

from __future__ import annotations

import numpy as np

from repro.benchharness.tables import format_table
from repro.exceptions import ValidationError
from repro.localsearch.base import ConvergenceTrace

__all__ = ["convergence_curve", "convergence_table"]


def convergence_curve(trace: ConvergenceTrace, start_total: int | None = None) -> dict[str, np.ndarray]:
    """Arrays describing a trace: sweep index, totals, swaps, improvement.

    ``start_total``, when given, prepends the pre-search error so the
    improvement of sweep 1 is included; otherwise improvements start at
    sweep 2.
    """
    if trace.sweeps == 0:
        raise ValidationError("trace has no sweeps")
    totals = np.array(trace.totals, dtype=np.int64)
    swaps = np.array(trace.swap_counts, dtype=np.int64)
    if start_total is not None:
        reference = np.concatenate([[start_total], totals[:-1]])
    else:
        reference = np.concatenate([[totals[0]], totals[:-1]])
    return {
        "sweep": np.arange(1, trace.sweeps + 1),
        "total": totals,
        "swaps": swaps,
        "improvement": reference - totals,
    }


def convergence_table(trace: ConvergenceTrace, *, title: str = "Convergence") -> str:
    """Human-readable per-sweep table."""
    curve = convergence_curve(trace)
    rows = [
        [int(s), int(t), int(w), int(i)]
        for s, t, w, i in zip(
            curve["sweep"], curve["total"], curve["swaps"], curve["improvement"]
        )
    ]
    return format_table(title, ["sweep", "total error", "swaps", "improvement"], rows)
