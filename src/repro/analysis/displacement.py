"""Tile-displacement statistics for a rearrangement.

How far do tiles travel?  Photomosaic rearrangements have a tell-tale
spatial signature: after histogram matching, many tiles land near their
original position (natural images are locally coherent), while a minority
teleport across the frame to fix brightness outliers.  These statistics
quantify that structure and back the analysis example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tiles.grid import TileGrid
from repro.types import PermutationArray
from repro.utils.validation import check_permutation

__all__ = ["tile_displacements", "DisplacementStats", "displacement_stats"]


def tile_displacements(grid: TileGrid, permutation: PermutationArray) -> np.ndarray:
    """Euclidean distance (in tile units) each input tile moved.

    Entry ``u`` is the distance between input tile ``u``'s home cell and
    the cell the rearrangement assigned it to.
    """
    perm = check_permutation(permutation, grid.tile_count)
    cols = grid.cols
    # Position v holds tile perm[v]; invert to tile -> position.
    tile_to_pos = np.empty_like(perm)
    tile_to_pos[perm] = np.arange(grid.tile_count)
    home = np.arange(grid.tile_count)
    home_rc = np.stack(divmod(home, cols))
    dest_rc = np.stack(divmod(tile_to_pos, cols))
    return np.hypot(
        (dest_rc[0] - home_rc[0]).astype(np.float64),
        (dest_rc[1] - home_rc[1]).astype(np.float64),
    )


@dataclass(frozen=True)
class DisplacementStats:
    """Summary of a rearrangement's tile movement."""

    mean: float
    median: float
    max: float
    stationary_fraction: float  # tiles that did not move at all
    displacement_histogram: tuple[int, ...]  # counts per unit-distance bin

    @property
    def moved_fraction(self) -> float:
        return 1.0 - self.stationary_fraction


def displacement_stats(grid: TileGrid, permutation: PermutationArray) -> DisplacementStats:
    """Compute :class:`DisplacementStats` for one rearrangement."""
    distances = tile_displacements(grid, permutation)
    max_possible = int(np.ceil(np.hypot(grid.rows - 1, grid.cols - 1)))
    histogram = np.bincount(
        np.floor(distances).astype(np.intp), minlength=max_possible + 1
    )
    return DisplacementStats(
        mean=float(distances.mean()),
        median=float(np.median(distances)),
        max=float(distances.max()),
        stationary_fraction=float((distances == 0).mean()),
        displacement_histogram=tuple(int(c) for c in histogram),
    )
