"""Roofline-style time estimation from metered kernel counters.

:mod:`repro.gpusim.perfmodel` predicts from analytic operation counts;
this module closes the loop from the *instrumented* side: a kernel run on
the virtual GPU reports its lane-op and byte counters
(:class:`~repro.gpusim.kernel.KernelStats` + the global memory's byte
meters), and :func:`estimate_kernel_time` converts those into a predicted
execution time on a given device via the classic roofline rule

``time = launches * overhead + max(compute_time, memory_time)``

with ``compute_time = ops / (cores * clock * ipc)`` and
``memory_time = bytes / bandwidth``.  This gives per-kernel predictions
for *any* device description without re-deriving operation counts by
hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import KernelStats
from repro.gpusim.memory import GlobalMemory

__all__ = ["RooflineEstimate", "estimate_kernel_time"]


@dataclass(frozen=True)
class RooflineEstimate:
    """Breakdown of a roofline prediction (seconds)."""

    compute_seconds: float
    memory_seconds: float
    launch_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.launch_seconds + max(self.compute_seconds, self.memory_seconds)

    @property
    def bound(self) -> str:
        """``"compute"`` or ``"memory"``, whichever roof binds."""
        return "compute" if self.compute_seconds >= self.memory_seconds else "memory"


def estimate_kernel_time(
    stats: KernelStats,
    device: DeviceProperties,
    *,
    global_mem: GlobalMemory | None = None,
    bytes_moved: int | None = None,
    instructions_per_op: float = 4.0,
) -> RooflineEstimate:
    """Predict execution time for the work recorded in ``stats``.

    Parameters
    ----------
    stats:
        Counters accumulated by one or more kernel launches.
    device:
        Target device description.
    global_mem / bytes_moved:
        Source of the byte count: pass the kernel's
        :class:`GlobalMemory` (its read+write meters are used) or an
        explicit byte count.  One of the two is required.
    instructions_per_op:
        Scalar instructions behind one reported lane op (load, load,
        subtract, absolute/accumulate for the SAD kernel); part of the
        model, exposed for calibration.
    """
    if bytes_moved is None:
        if global_mem is None:
            raise ValidationError("pass either global_mem or bytes_moved")
        bytes_moved = global_mem.bytes_read + global_mem.bytes_written
    if bytes_moved < 0:
        raise ValidationError(f"bytes_moved must be >= 0, got {bytes_moved}")
    if instructions_per_op <= 0:
        raise ValidationError(
            f"instructions_per_op must be positive, got {instructions_per_op}"
        )
    throughput = device.total_cores * device.clock_hz / instructions_per_op
    return RooflineEstimate(
        compute_seconds=stats.lane_ops / throughput,
        memory_seconds=bytes_moved / device.mem_bandwidth,
        launch_seconds=stats.launches * device.kernel_launch_overhead,
    )
