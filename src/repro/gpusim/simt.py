"""SIMT grid executor.

Blocks execute one after another (their semantics are order-independent —
CUDA gives no inter-block ordering guarantees within a launch, and kernels
written for this simulator must not rely on any).  Each block gets a fresh
:class:`~repro.gpusim.memory.SharedMemory`, enforcing CUDA's rule that
blocks cannot share on-chip state.

Within a block, "threads" are NumPy vector lanes: a kernel indexes its
work by ``ctx.lanes`` / ``ctx.global_thread_ids()`` and performs whole-
block operations as single array expressions.  That is exactly the
lock-step warp-synchronous model — every lane executes the same
instruction on different data — which is why results are bit-identical to
a real data-parallel execution of the same kernel.
"""

from __future__ import annotations

from typing import Callable

from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import BlockContext, KernelStats
from repro.gpusim.memory import GlobalMemory, SharedMemory

__all__ = ["execute_grid"]


def execute_grid(
    device: DeviceProperties,
    global_mem: GlobalMemory,
    kernel: Callable[..., None],
    args: tuple[object, ...],
    grid_dim: int,
    block_dim: int,
    stats: KernelStats,
) -> None:
    """Run every block of the launch; updates ``stats`` in place."""
    for block_idx in range(grid_dim):
        shared = SharedMemory(device.shared_mem_per_block)
        ctx = BlockContext(
            block_idx=block_idx,
            grid_dim=grid_dim,
            block_dim=block_dim,
            global_mem=global_mem,
            shared=shared,
            stats=stats,
        )
        kernel(ctx, *args)
        stats.blocks += 1
