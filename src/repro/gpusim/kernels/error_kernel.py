"""Step-2 error-matrix kernel on the virtual GPU (paper Section V).

Launch shape follows the paper exactly: ``S`` CUDA blocks, block ``u``
responsible for row ``u`` of the error matrix.  Each block first stages its
input tile ``I_u`` in shared memory (all lanes cooperate in the load), then
sweeps the target tiles in lane-sized batches, each lane producing one
``E(I_u, T_v)`` value per batch step.

The kernel's arithmetic is bit-identical to
:func:`repro.cost.matrix.error_matrix` with the SAD metric — tested
differentially — while its execution goes through the metered
global/shared-memory path so launches report realistic op/byte counts.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.exceptions import GpuSimError, ValidationError
from repro.gpusim.device import TESLA_K40, DeviceProperties
from repro.gpusim.kernel import BlockContext, KernelStats, launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.types import ERROR_DTYPE, ErrorMatrix, TileStack

__all__ = [
    "error_matrix_gpu",
    "error_matrices_gpu_batched",
    "error_row_kernel",
    "error_rows_batched_kernel",
]


def error_row_kernel(ctx: BlockContext) -> None:
    """One block computes one row of the error matrix (SAD)."""
    u = ctx.block_idx
    input_tiles = ctx.global_mem.buffer("input_tiles")
    target_tiles = ctx.global_mem.buffer("target_tiles")
    s = input_tiles.shape[0]
    pixels = input_tiles.shape[1]
    # Cooperative load of tile I_u into shared memory (paper Section V:
    # "threads in each CUDA block read pixel values of tile I_u and store
    # them to the shared memory").
    staged = ctx.shared.alloc("tile_u", (pixels,), np.int16)
    staged[:] = ctx.global_mem.read("input_tiles", u)
    ctx.syncthreads()
    # Lanes sweep the target tiles in batches of block_dim: lane t handles
    # targets t, t + block_dim, t + 2*block_dim, ...
    for start in range(0, s, ctx.block_dim):
        batch = ctx.lanes[ctx.lanes < s - start] + start
        targets = ctx.global_mem.read("target_tiles", batch)
        errors = np.abs(targets - staged[None, :]).sum(axis=1, dtype=np.int64)
        ctx.count_ops(int(targets.shape[0]) * pixels)
        ctx.global_mem.write("error_matrix", (u, batch), errors)
    ctx.syncthreads()


def error_matrix_gpu(
    input_tiles: TileStack,
    target_tiles: TileStack,
    *,
    device: DeviceProperties = TESLA_K40,
    block_dim: int = 256,
    stats: KernelStats | None = None,
) -> ErrorMatrix:
    """Compute the SAD error matrix through the virtual GPU.

    Returns the ``(S, S)`` matrix downloaded from device global memory.
    ``stats``, when given, accumulates launch/op/byte counters across
    calls for the performance model.
    """
    input_tiles = np.asarray(input_tiles)
    target_tiles = np.asarray(target_tiles)
    if input_tiles.shape != target_tiles.shape:
        raise ValidationError(
            f"tile stacks differ: {input_tiles.shape} vs {target_tiles.shape}"
        )
    if input_tiles.ndim not in (3, 4) or input_tiles.shape[0] == 0:
        raise ValidationError(f"bad tile stack shape {input_tiles.shape}")
    s = input_tiles.shape[0]
    flat_in = input_tiles.reshape(s, -1).astype(np.int16)
    flat_tg = target_tiles.reshape(s, -1).astype(np.int16)
    if flat_in.shape[1] * flat_in.itemsize > device.shared_mem_per_block:
        raise GpuSimError(
            f"tile of {flat_in.shape[1]} px does not fit in "
            f"{device.shared_mem_per_block} B of shared memory"
        )
    gmem = GlobalMemory()
    gmem.upload("input_tiles", flat_in)
    gmem.upload("target_tiles", flat_tg)
    gmem.alloc("error_matrix", (s, s), ERROR_DTYPE)
    launch_kernel(
        device,
        gmem,
        error_row_kernel,
        grid_dim=s,
        block_dim=min(block_dim, device.max_threads_per_block),
        stats=stats,
    )
    return gmem.download("error_matrix")


def error_rows_batched_kernel(ctx: BlockContext) -> None:
    """Cross-job batched row kernel: block ``b`` computes row ``b % S`` of
    job ``b // S``.

    The launch concatenates every job's input rows into one grid of
    ``B * S`` blocks, so the device sees a single wide launch instead of
    ``B`` narrow ones — the concurrent-request analogue of the paper's
    one-block-per-row fusion.  Target stacks are deduplicated on the
    host: jobs sharing a target grid read the same device buffer rows
    through their entry in ``target_offsets``, so a shared grid is
    uploaded (and its bytes metered) once per launch.
    """
    b = ctx.block_idx
    inputs = ctx.global_mem.buffer("batched_input_tiles")
    out = ctx.global_mem.buffer("batched_error_matrix")
    s = out.shape[1]
    pixels = inputs.shape[1]
    base = int(ctx.global_mem.read("target_offsets", b // s))
    staged = ctx.shared.alloc("tile_u", (pixels,), np.int16)
    staged[:] = ctx.global_mem.read("batched_input_tiles", b)
    ctx.syncthreads()
    for start in range(0, s, ctx.block_dim):
        batch = ctx.lanes[ctx.lanes < s - start] + start
        targets = ctx.global_mem.read("batched_target_tiles", base + batch)
        errors = np.abs(targets - staged[None, :]).sum(axis=1, dtype=np.int64)
        ctx.count_ops(int(targets.shape[0]) * pixels)
        ctx.global_mem.write("batched_error_matrix", (b, batch), errors)
    ctx.syncthreads()


def error_matrices_gpu_batched(
    jobs: Sequence[tuple[TileStack, TileStack]],
    *,
    device: DeviceProperties = TESLA_K40,
    block_dim: int = 256,
    stats: KernelStats | None = None,
) -> list[ErrorMatrix]:
    """SAD error matrices for ``B`` jobs in **one** virtual-GPU launch.

    Each job is an ``(input_tiles, target_tiles)`` pair; all jobs must
    share one grid/tile shape (the batch fingerprint guarantees this at
    the service level).  Per-job matrices are the row slices of the
    stacked launch and are bit-identical to :func:`error_matrix_gpu` per
    job — the row kernel is independent across blocks, so block order
    and grid packing cannot change any value.  ``stats`` records one
    launch (vs ``B`` for the solo path) with the same total op count.
    """
    if not jobs:
        return []
    prepared_in: list[np.ndarray] = []
    target_offsets: list[int] = []
    unique_targets: list[np.ndarray] = []
    seen: dict[str, int] = {}
    shape = None
    for input_tiles, target_tiles in jobs:
        input_tiles = np.asarray(input_tiles)
        target_tiles = np.asarray(target_tiles)
        if input_tiles.shape != target_tiles.shape:
            raise ValidationError(
                f"tile stacks differ: {input_tiles.shape} vs "
                f"{target_tiles.shape}"
            )
        if input_tiles.ndim not in (3, 4) or input_tiles.shape[0] == 0:
            raise ValidationError(f"bad tile stack shape {input_tiles.shape}")
        if shape is None:
            shape = input_tiles.shape
        elif input_tiles.shape != shape:
            raise ValidationError(
                f"batched jobs must share one grid: {input_tiles.shape} vs "
                f"{shape}"
            )
        s = input_tiles.shape[0]
        flat_tg = target_tiles.reshape(s, -1).astype(np.int16)
        key = hashlib.sha256(flat_tg.tobytes()).hexdigest()
        if key not in seen:
            seen[key] = len(unique_targets)
            unique_targets.append(flat_tg)
        target_offsets.append(seen[key] * s)
        prepared_in.append(input_tiles.reshape(s, -1).astype(np.int16))
    s = shape[0]
    flat_in = np.concatenate(prepared_in, axis=0)
    if flat_in.shape[1] * flat_in.itemsize > device.shared_mem_per_block:
        raise GpuSimError(
            f"tile of {flat_in.shape[1]} px does not fit in "
            f"{device.shared_mem_per_block} B of shared memory"
        )
    gmem = GlobalMemory()
    gmem.upload("batched_input_tiles", flat_in)
    gmem.upload("batched_target_tiles", np.concatenate(unique_targets, axis=0))
    gmem.upload("target_offsets", np.asarray(target_offsets, dtype=np.int64))
    gmem.alloc("batched_error_matrix", (len(jobs) * s, s), ERROR_DTYPE)
    launch_kernel(
        device,
        gmem,
        error_rows_batched_kernel,
        grid_dim=len(jobs) * s,
        block_dim=min(block_dim, device.max_threads_per_block),
        stats=stats,
    )
    stacked = gmem.download("batched_error_matrix")
    return [stacked[b * s : (b + 1) * s].copy() for b in range(len(jobs))]
