"""Kernels of paper Section V, written against the virtual-GPU API."""

from __future__ import annotations

from repro.gpusim.kernels.error_kernel import (
    error_matrices_gpu_batched,
    error_matrix_gpu,
)
from repro.gpusim.kernels.swap_kernel import run_swap_class_on_device

__all__ = [
    "error_matrices_gpu_batched",
    "error_matrix_gpu",
    "run_swap_class_on_device",
]
