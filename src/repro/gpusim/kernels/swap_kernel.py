"""Step-3 colour-class swap kernel on the virtual GPU (paper Section V).

The paper launches one CUDA kernel per edge group ``P_i``; the launch
boundary is the synchronisation point that makes the concurrent swaps safe
("the execution is synchronized whenever the computation of each iteration
is finished").  Here one call of :func:`run_swap_class_on_device` is that
kernel launch: every lane evaluates one pair's swap test against the
pre-launch snapshot of the permutation and conditionally commits both
writes — race-free because pairs within a class are vertex-disjoint.

The permutation lives in host memory across launches (mirroring the
device-resident buffer of the real implementation) and is updated in
place; the swap count is returned for the convergence flag.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.gpusim.device import TESLA_K40, DeviceProperties
from repro.gpusim.kernel import BlockContext, KernelStats, launch_kernel
from repro.gpusim.memory import GlobalMemory
from repro.types import ErrorMatrix, PermutationArray

__all__ = ["run_swap_class_on_device", "swap_class_kernel"]


def swap_class_kernel(ctx: BlockContext) -> None:
    """Each lane tests and (if improving) commits one pair of its block."""
    gmem = ctx.global_mem
    us_all = gmem.buffer("pair_us")
    pair_count = us_all.shape[0]
    ids = ctx.global_thread_ids()
    ids = ids[ids < pair_count]
    if ids.size == 0:
        return
    us = gmem.read("pair_us", ids)
    vs = gmem.read("pair_vs", ids)
    matrix = gmem.buffer("matrix")
    tiles_u = gmem.read("perm", us)
    tiles_v = gmem.read("perm", vs)
    current = matrix[tiles_u, us] + matrix[tiles_v, vs]
    swapped = matrix[tiles_v, us] + matrix[tiles_u, vs]
    ctx.count_ops(4 * int(ids.size))
    improving = current > swapped
    if improving.any():
        gmem.write("perm", us[improving], tiles_v[improving])
        gmem.write("perm", vs[improving], tiles_u[improving])
    # One atomicAdd per block for the convergence flag.
    gmem.write("swap_count", 0, gmem.read("swap_count", 0) + int(improving.sum()))


def run_swap_class_on_device(
    matrix: ErrorMatrix,
    perm: PermutationArray,
    us: np.ndarray,
    vs: np.ndarray,
    *,
    device: DeviceProperties = TESLA_K40,
    block_dim: int = 256,
    stats: KernelStats | None = None,
) -> int:
    """Launch the swap kernel for one colour class; mutate ``perm`` in place.

    Returns the number of committed swaps (the flag of Algorithm 2).
    """
    if us.shape != vs.shape or us.ndim != 1:
        raise ValidationError(
            f"pair arrays must be aligned 1-D, got {us.shape} and {vs.shape}"
        )
    if us.size == 0:
        return 0
    gmem = GlobalMemory()
    # Zero-copy device views: matrix and perm are long-lived device buffers
    # in the real implementation, so uploads are not re-metered per launch.
    gmem.attach("matrix", matrix)
    gmem.attach("perm", perm)
    gmem.upload("pair_us", us)
    gmem.upload("pair_vs", vs)
    gmem.alloc("swap_count", (1,), np.int64)
    grid_dim = (us.size + block_dim - 1) // block_dim
    launch_kernel(
        device,
        gmem,
        swap_class_kernel,
        grid_dim=grid_dim,
        block_dim=min(block_dim, device.max_threads_per_block),
        stats=stats,
    )
    return int(gmem.buffer("swap_count")[0])
