"""CUDA-style occupancy calculator for the virtual GPU.

Section V's kernels pick block sizes (the paper uses "multiple threads" per
block without elaborating); this module provides the standard tooling for
that choice: given a device and a kernel's per-block resource footprint,
compute how many blocks fit on one SM, the resulting warp occupancy, and
the block size maximising it.

The model covers the three classic limiters — threads per SM, blocks per
SM, and shared memory per SM — which are the ones the paper's kernels can
actually hit (they use no register pressure worth modelling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceProperties

__all__ = ["OccupancyReport", "occupancy", "best_block_dim"]

# K40-class SM limits (Kepler SMX), used as defaults; callers can override.
_DEFAULT_MAX_THREADS_PER_SM = 2048
_DEFAULT_MAX_BLOCKS_PER_SM = 16
_DEFAULT_SHARED_PER_SM = 48 * 1024


@dataclass(frozen=True)
class OccupancyReport:
    """Occupancy of one launch configuration on one SM."""

    block_dim: int
    blocks_per_sm: int
    active_threads: int
    max_threads_per_sm: int
    limiter: str

    @property
    def occupancy(self) -> float:
        """Active threads / device maximum, in ``[0, 1]``."""
        return self.active_threads / self.max_threads_per_sm


def occupancy(
    device: DeviceProperties,
    block_dim: int,
    shared_bytes_per_block: int = 0,
    *,
    max_threads_per_sm: int = _DEFAULT_MAX_THREADS_PER_SM,
    max_blocks_per_sm: int = _DEFAULT_MAX_BLOCKS_PER_SM,
    shared_per_sm: int = _DEFAULT_SHARED_PER_SM,
) -> OccupancyReport:
    """Occupancy of ``block_dim``-thread blocks on ``device``.

    Returns the per-SM block count under the binding limiter and the
    fraction of the SM's thread capacity kept active.
    """
    if not 1 <= block_dim <= device.max_threads_per_block:
        raise ValidationError(
            f"block_dim {block_dim} outside 1..{device.max_threads_per_block}"
        )
    if shared_bytes_per_block < 0:
        raise ValidationError("shared_bytes_per_block must be >= 0")
    if shared_bytes_per_block > device.shared_mem_per_block:
        raise ValidationError(
            f"kernel needs {shared_bytes_per_block} B shared memory, block "
            f"limit is {device.shared_mem_per_block} B"
        )
    limits = {
        "threads": max_threads_per_sm // block_dim,
        "blocks": max_blocks_per_sm,
        "shared_memory": (
            shared_per_sm // shared_bytes_per_block
            if shared_bytes_per_block > 0
            else max_blocks_per_sm
        ),
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiter])
    return OccupancyReport(
        block_dim=block_dim,
        blocks_per_sm=blocks,
        active_threads=blocks * block_dim,
        max_threads_per_sm=max_threads_per_sm,
        limiter=limiter,
    )


def best_block_dim(
    device: DeviceProperties,
    shared_bytes_per_block: int = 0,
    *,
    candidates: tuple[int, ...] = (32, 64, 128, 256, 512, 1024),
) -> OccupancyReport:
    """Pick the candidate block size with the highest occupancy.

    Ties break toward smaller blocks (finer scheduling granularity), the
    conventional CUDA guidance.
    """
    feasible = [c for c in candidates if c <= device.max_threads_per_block]
    if not feasible:
        raise ValidationError(
            f"no candidate block size fits {device.name}'s limit "
            f"{device.max_threads_per_block}"
        )
    reports = [occupancy(device, c, shared_bytes_per_block) for c in feasible]
    return max(reports, key=lambda r: (r.occupancy, -r.block_dim))
