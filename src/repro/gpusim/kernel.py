"""Kernel-launch API for the virtual GPU.

A kernel is a Python callable ``kernel(ctx, *args)`` where ``ctx`` is a
:class:`BlockContext` giving it CUDA's view of the world: its block index,
the launch dimensions, a fresh :class:`~repro.gpusim.memory.SharedMemory`,
the device :class:`~repro.gpusim.memory.GlobalMemory`, and the SIMT lane
vector (``ctx.lanes`` — the ``threadIdx.x`` values, to be used as a NumPy
index so "each thread" computes one slot of a vector operation).

:func:`launch_kernel` validates the launch configuration against the
device limits and hands execution to :mod:`repro.gpusim.simt`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import GpuSimError
from repro.gpusim.device import DeviceProperties
from repro.gpusim.memory import GlobalMemory, SharedMemory

__all__ = ["BlockContext", "KernelStats", "launch_kernel"]


@dataclass
class KernelStats:
    """Aggregate execution counters for one or more launches.

    ``lane_ops`` counts scalar operations as reported by kernels via
    :meth:`BlockContext.count_ops`; together with the global-memory byte
    counters it feeds the roofline estimate in
    :class:`~repro.gpusim.perfmodel.PerformanceModel`.
    """

    launches: int = 0
    blocks: int = 0
    lane_ops: int = 0
    barriers: int = 0
    meta: dict = field(default_factory=dict)

    def merge(self, other: "KernelStats") -> None:
        self.launches += other.launches
        self.blocks += other.blocks
        self.lane_ops += other.lane_ops
        self.barriers += other.barriers


class BlockContext:
    """What one thread block sees while executing."""

    def __init__(
        self,
        block_idx: int,
        grid_dim: int,
        block_dim: int,
        global_mem: GlobalMemory,
        shared: SharedMemory,
        stats: KernelStats,
    ) -> None:
        self.block_idx = block_idx
        self.grid_dim = grid_dim
        self.block_dim = block_dim
        self.global_mem = global_mem
        self.shared = shared
        self._stats = stats
        #: threadIdx.x for every lane of the block, in lock step.
        self.lanes = np.arange(block_dim, dtype=np.intp)

    def global_thread_ids(self) -> np.ndarray:
        """``blockIdx.x * blockDim.x + threadIdx.x`` for every lane."""
        return self.block_idx * self.block_dim + self.lanes

    def count_ops(self, n: int) -> None:
        """Report ``n`` scalar lane operations to the stats counter."""
        if n < 0:
            raise GpuSimError(f"negative op count {n}")
        self._stats.lane_ops += int(n)

    def syncthreads(self) -> None:
        """Block-level barrier.

        Lane execution is already lock-step in this simulator, so the
        barrier only increments a counter — but kernels still call it where
        CUDA would require it, keeping them portable to a real backend.
        """
        self._stats.barriers += 1


def launch_kernel(
    device: DeviceProperties,
    global_mem: GlobalMemory,
    kernel: Callable[..., None],
    *args: object,
    grid_dim: int,
    block_dim: int,
    stats: KernelStats | None = None,
) -> KernelStats:
    """Launch ``kernel`` over ``grid_dim`` blocks of ``block_dim`` threads.

    Returns the :class:`KernelStats` for the launch (merged into ``stats``
    when one is passed in).  Raises :class:`GpuSimError` for launch
    configurations the device cannot execute.
    """
    if grid_dim < 1:
        raise GpuSimError(f"grid_dim must be >= 1, got {grid_dim}")
    if not 1 <= block_dim <= device.max_threads_per_block:
        raise GpuSimError(
            f"block_dim {block_dim} outside 1..{device.max_threads_per_block} "
            f"for {device.name}"
        )
    from repro.gpusim.simt import execute_grid  # deferred: avoids module cycle

    local = KernelStats(launches=1)
    execute_grid(device, global_mem, kernel, args, grid_dim, block_dim, local)
    if stats is not None:
        stats.merge(local)
        return stats
    return local
