"""Simulated execution timeline for the virtual GPU.

Runs of the paper's pipeline on the simulator can be traced: each kernel
launch contributes an event whose *duration* comes from the roofline
estimator applied to that launch's metered counters.  The timeline then
answers "what would the device-side wall clock have been?" — a third,
instrumentation-driven timing estimate alongside the measured host times
and the calibrated analytic model (see docs/gpu_model.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError
from repro.gpusim.device import DeviceProperties, TESLA_K40
from repro.gpusim.kernel import KernelStats
from repro.gpusim.roofline import estimate_kernel_time

__all__ = ["TraceEvent", "SimulatedTimeline"]


@dataclass(frozen=True)
class TraceEvent:
    """One kernel launch on the simulated device timeline."""

    name: str
    start: float
    duration: float
    lane_ops: int
    bytes_moved: int
    bound: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class SimulatedTimeline:
    """Accumulates launch events into a serialized device timeline.

    The paper's kernels synchronise at every launch boundary (one launch
    per colour class), so a serial timeline is the faithful model — there
    is no inter-kernel overlap to account for.
    """

    device: DeviceProperties = TESLA_K40
    events: list[TraceEvent] = field(default_factory=list)

    def record(self, name: str, stats: KernelStats, bytes_moved: int) -> TraceEvent:
        """Append a launch; duration from the roofline estimate."""
        if not name:
            raise ValidationError("event name must be non-empty")
        estimate = estimate_kernel_time(stats, self.device, bytes_moved=bytes_moved)
        event = TraceEvent(
            name=name,
            start=self.total_seconds,
            duration=estimate.total_seconds,
            lane_ops=stats.lane_ops,
            bytes_moved=bytes_moved,
            bound=estimate.bound,
        )
        self.events.append(event)
        return event

    @property
    def total_seconds(self) -> float:
        return self.events[-1].end if self.events else 0.0

    def by_name(self) -> dict[str, float]:
        """Total simulated seconds per event name."""
        totals: dict[str, float] = {}
        for event in self.events:
            totals[event.name] = totals.get(event.name, 0.0) + event.duration
        return totals

    def render(self, *, width: int = 48) -> str:
        """Text Gantt chart of the timeline."""
        if not self.events:
            return "(empty timeline)"
        total = self.total_seconds or 1.0
        lines = [f"simulated timeline on {self.device.name} "
                 f"({total * 1e3:.3f} ms total)"]
        for event in self.events:
            offset = int(width * event.start / total)
            length = max(1, int(width * event.duration / total))
            bar = " " * offset + "#" * length
            lines.append(
                f"{event.name:<20} |{bar:<{width}}| "
                f"{event.duration * 1e6:9.1f} us ({event.bound})"
            )
        return "\n".join(lines)
