"""CUDA-style memory spaces for the virtual GPU.

:class:`GlobalMemory` models the off-chip DRAM: named buffers allocated by
the host, visible to every block, with all traffic metered (the performance
model consumes the byte counters).  :class:`SharedMemory` models the
per-block on-chip scratchpad: capacity-checked, zeroed at block start and
inaccessible to other blocks — the isolation rule CUDA enforces and kernels
must be written against.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GpuSimError

__all__ = ["GlobalMemory", "SharedMemory"]


class GlobalMemory:
    """Named device-global buffers with byte-traffic accounting."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.bytes_allocated = 0
        self.bytes_read = 0
        self.bytes_written = 0

    def alloc(self, name: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """Allocate a zeroed buffer; returns it for host-side inspection."""
        if name in self._buffers:
            raise GpuSimError(f"global buffer {name!r} already allocated")
        buf = np.zeros(shape, dtype=dtype)
        self._buffers[name] = buf
        self.bytes_allocated += buf.nbytes
        return buf

    def upload(self, name: str, host_array: np.ndarray) -> np.ndarray:
        """Host-to-device copy (cudaMemcpy H2D): allocates and fills."""
        if name in self._buffers:
            raise GpuSimError(f"global buffer {name!r} already allocated")
        buf = np.array(host_array, copy=True)
        self._buffers[name] = buf
        self.bytes_allocated += buf.nbytes
        self.bytes_written += buf.nbytes
        return buf

    def attach(self, name: str, host_array: np.ndarray) -> np.ndarray:
        """Register ``host_array`` as a device buffer *without copying*.

        Models a long-lived device-resident buffer (the paper keeps the
        error matrix and permutation on the device across kernel launches):
        writes through the device API mutate the caller's array, and no
        upload traffic is metered.
        """
        if name in self._buffers:
            raise GpuSimError(f"global buffer {name!r} already allocated")
        host_array = np.asarray(host_array)
        self._buffers[name] = host_array
        self.bytes_allocated += host_array.nbytes
        return host_array

    def download(self, name: str) -> np.ndarray:
        """Device-to-host copy (cudaMemcpy D2H): returns a host copy."""
        buf = self.buffer(name)
        self.bytes_read += buf.nbytes
        return buf.copy()

    def buffer(self, name: str) -> np.ndarray:
        """Raw device buffer (device-side view; kernels use read()/write())."""
        buf = self._buffers.get(name)
        if buf is None:
            raise GpuSimError(f"no global buffer named {name!r}")
        return buf

    def read(self, name: str, index: object) -> np.ndarray:
        """Metered device read ``buffer[name][index]``."""
        value = self.buffer(name)[index]
        self.bytes_read += np.asarray(value).nbytes
        return value

    def write(self, name: str, index: object, value: np.ndarray) -> None:
        """Metered device write ``buffer[name][index] = value``."""
        buf = self.buffer(name)
        buf[index] = value
        self.bytes_written += np.asarray(value).nbytes

    def free(self, name: str) -> None:
        """Release a buffer."""
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise GpuSimError(f"no global buffer named {name!r}")
        self.bytes_allocated -= buf.nbytes


class SharedMemory:
    """Per-block scratchpad with a hard capacity limit."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise GpuSimError(f"shared memory capacity must be >= 1, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self._arrays: dict[str, np.ndarray] = {}
        self._used = 0

    @property
    def bytes_used(self) -> int:
        return self._used

    def alloc(self, name: str, shape: tuple[int, ...], dtype: np.dtype | type) -> np.ndarray:
        """Allocate a zeroed shared array; raises on capacity overflow."""
        if name in self._arrays:
            raise GpuSimError(f"shared array {name!r} already allocated")
        arr = np.zeros(shape, dtype=dtype)
        if self._used + arr.nbytes > self.capacity_bytes:
            raise GpuSimError(
                f"shared memory overflow: {self._used + arr.nbytes} bytes "
                f"requested, capacity {self.capacity_bytes}"
            )
        self._arrays[name] = arr
        self._used += arr.nbytes
        return arr

    def get(self, name: str) -> np.ndarray:
        arr = self._arrays.get(name)
        if arr is None:
            raise GpuSimError(f"no shared array named {name!r}")
        return arr
