"""Analytic performance model calibrated to the paper's measurements.

The reproduction has no physical K40, so absolute paper-scale timings come
from this model rather than from wall clocks.  The model has two parts:

* **throughput terms** — each algorithm's operation count is exact
  (``S * N^2`` pixel comparisons for Step 2; ``k * S(S-1)/2`` pair tests per
  local-search run; ``S`` kernel launches per parallel sweep), and each
  device contributes an effective rate plus per-launch overhead.  The
  rates are calibrated once against the paper's Tables II/III (see the
  constants below and EXPERIMENTS.md for the fit quality).
* **anchored power law** — the optimization algorithm's matching time
  (Blossom V, not reimplemented at the paper's scale) is log-log
  interpolated between the paper's own anchors.

The model intentionally predicts the *paper's* hardware, not this
machine; measured columns in the benchmark harness come from real timings
of the Python implementations instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["PerformanceModel", "interpolate_loglog"]

# Effective rates fitted to the paper's tables (see EXPERIMENTS.md):
#   Table II CPU times are S * N^2 pixel comparisons at ~1.7e8/s
#   (e.g. N=2048, S=64^2: 4096 * 2048^2 / 1.7e8 = 101 s vs measured 98.5 s).
_CPU_PIXEL_RATE = 1.7e8  # pixel comparisons / s, scalar single thread
_GPU_PIXEL_RATE = 1.2e10  # pixel comparisons / s, K40 SAD kernel
_GPU_ERROR_LAUNCH_OVERHEAD = 2.5e-3  # one Step-2 launch incl. staging, s

#   Table III approximation CPU: k * S(S-1)/2 pair tests at ~2.4e7/s
#   (S=64^2, k=16: 16 * 8.39e6 / 2.4e7 = 5.6 s vs measured 6.7-7.5 s).
_CPU_PAIR_RATE = 2.4e7  # swap tests / s, scalar
_GPU_PAIR_RATE = 5e9  # swap tests / s inside a kernel
_GPU_SWAP_LAUNCH_OVERHEAD = 5e-6  # per colour-class kernel launch, s

# Paper-reported sweep counts k for S = 16^2, 32^2, 64^2 (Section IV-A).
_SWEEP_ANCHORS = {256: 9, 1024: 8, 4096: 16}

# Paper-reported Blossom V matching times (Table III, averaged over N since
# Step 3 does not depend on N).
_MATCHING_ANCHORS = {256: 0.067, 1024: 15.694, 4096: 1264.378}


def interpolate_loglog(anchors: dict[int, float], x: float) -> float:
    """Piecewise power-law interpolation through ``anchors``.

    Between anchors the value follows the local power law; outside the
    anchor range the nearest segment's exponent extrapolates.  Exact at
    every anchor.
    """
    if x <= 0:
        raise ValidationError(f"x must be positive, got {x}")
    if len(anchors) < 2:
        raise ValidationError("need at least two anchors")
    xs = sorted(anchors)
    if x <= xs[0]:
        lo, hi = xs[0], xs[1]
    elif x >= xs[-1]:
        lo, hi = xs[-2], xs[-1]
    else:
        lo = max(p for p in xs if p <= x)
        hi = min(p for p in xs if p >= x)
        if lo == hi:
            return anchors[lo]
    exponent = math.log(anchors[hi] / anchors[lo]) / math.log(hi / lo)
    return anchors[lo] * (x / lo) ** exponent


@dataclass(frozen=True)
class PerformanceModel:
    """Timing predictions for the paper's CPU/GPU pair.

    All methods take the image side ``n`` and/or tile count ``s`` and
    return predicted seconds on the *paper's* hardware.
    """

    cpu_pixel_rate: float = _CPU_PIXEL_RATE
    gpu_pixel_rate: float = _GPU_PIXEL_RATE
    gpu_error_launch_overhead: float = _GPU_ERROR_LAUNCH_OVERHEAD
    cpu_pair_rate: float = _CPU_PAIR_RATE
    gpu_pair_rate: float = _GPU_PAIR_RATE
    gpu_swap_launch_overhead: float = _GPU_SWAP_LAUNCH_OVERHEAD

    @staticmethod
    def _check(n: int | None, s: int) -> None:
        if n is not None and n < 1:
            raise ValidationError(f"n must be >= 1, got {n}")
        if s < 1:
            raise ValidationError(f"s must be >= 1, got {s}")

    def expected_sweeps(self, s: int) -> int:
        """Paper-anchored estimate of the local-search sweep count ``k``."""
        self._check(None, s)
        if s in _SWEEP_ANCHORS:
            return _SWEEP_ANCHORS[s]
        return max(1, round(interpolate_loglog(
            {k: float(v) for k, v in _SWEEP_ANCHORS.items()}, s
        )))

    def error_matrix_time(self, n: int, s: int, device: str) -> float:
        """Step 2: the S x S SAD matrix costs exactly ``s * n^2`` comparisons."""
        self._check(n, s)
        work = s * n * n
        if device == "cpu":
            return work / self.cpu_pixel_rate
        if device == "gpu":
            return self.gpu_error_launch_overhead + work / self.gpu_pixel_rate
        raise ValidationError(f"unknown device {device!r} (use cpu|gpu)")

    def matching_time(self, s: int) -> float:
        """Step 3, optimization algorithm (CPU only, as in the paper)."""
        self._check(None, s)
        return interpolate_loglog(_MATCHING_ANCHORS, s)

    def approximation_time(self, s: int, device: str, sweeps: int | None = None) -> float:
        """Step 3, local search: ``k`` full sweeps of ``S(S-1)/2`` pair tests.

        The GPU adds one kernel launch per colour class per sweep — for
        small ``S`` that overhead dominates and the GPU *loses* to the CPU,
        reproducing the paper's < 1x speedups at S = 16^2.
        """
        self._check(None, s)
        k = self.expected_sweeps(s) if sweeps is None else sweeps
        if k < 1:
            raise ValidationError(f"sweeps must be >= 1, got {k}")
        tests = k * s * (s - 1) // 2
        if device == "cpu":
            return tests / self.cpu_pair_rate
        if device == "gpu":
            launches = k * s  # S colour classes per sweep (Algorithm 2)
            return launches * self.gpu_swap_launch_overhead + tests / self.gpu_pair_rate
        raise ValidationError(f"unknown device {device!r} (use cpu|gpu)")

    def pipeline_time(self, n: int, s: int, algorithm: str, device: str) -> float:
        """End-to-end Step 2 + Step 3 (Table IV).

        ``device="gpu"`` means the paper's accelerated variant: Step 2 on
        the GPU always; Step 3 on the GPU only for the approximation
        algorithm (the matching stays on the CPU — Section V).
        """
        if algorithm == "optimization":
            step2 = self.error_matrix_time(n, s, device)
            step3 = self.matching_time(s)
            return step2 + step3
        if algorithm == "approximation":
            step2 = self.error_matrix_time(n, s, device)
            step3 = self.approximation_time(s, device)
            return step2 + step3
        raise ValidationError(
            f"unknown algorithm {algorithm!r} (use optimization|approximation)"
        )

    def speedup(self, n: int, s: int, algorithm: str) -> float:
        """Predicted CPU/GPU end-to-end speedup factor (Table IV columns)."""
        return self.pipeline_time(n, s, algorithm, "cpu") / self.pipeline_time(
            n, s, algorithm, "gpu"
        )
