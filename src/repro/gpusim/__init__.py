"""Virtual GPU: a CUDA-like SIMT execution model with a performance model.

This package is the reproduction's substitute for the paper's Tesla K40
(see DESIGN.md).  It provides

* :class:`~repro.gpusim.device.DeviceProperties` — hardware descriptions
  (a K40-class GPU and a Core-i7-class scalar CPU);
* :class:`~repro.gpusim.memory.GlobalMemory` /
  :class:`~repro.gpusim.memory.SharedMemory` — the two CUDA memory spaces,
  with byte-traffic accounting;
* :func:`~repro.gpusim.kernel.launch_kernel` — grid/block kernel launches
  whose thread lanes execute as lock-step NumPy vector operations
  (:mod:`repro.gpusim.simt`);
* :class:`~repro.gpusim.perfmodel.PerformanceModel` — an analytic timing
  model calibrated to the paper's published measurements, used for the
  "paper-scale" columns of the Table II-IV reproductions;
* the two kernels of Section V (:mod:`repro.gpusim.kernels`).
"""

from __future__ import annotations

from repro.gpusim.device import CORE_I7_3770, TESLA_K40, DeviceProperties
from repro.gpusim.kernel import KernelStats, launch_kernel
from repro.gpusim.memory import GlobalMemory, SharedMemory
from repro.gpusim.occupancy import OccupancyReport, best_block_dim, occupancy
from repro.gpusim.perfmodel import PerformanceModel
from repro.gpusim.roofline import RooflineEstimate, estimate_kernel_time
from repro.gpusim.trace import SimulatedTimeline, TraceEvent

__all__ = [
    "SimulatedTimeline",
    "TraceEvent",
    "RooflineEstimate",
    "estimate_kernel_time",
    "OccupancyReport",
    "occupancy",
    "best_block_dim",
    "DeviceProperties",
    "TESLA_K40",
    "CORE_I7_3770",
    "GlobalMemory",
    "SharedMemory",
    "launch_kernel",
    "KernelStats",
    "PerformanceModel",
]
