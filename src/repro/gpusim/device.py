"""Hardware descriptions for the virtual GPU and the reference CPU.

Numbers for :data:`TESLA_K40` follow NVIDIA's published specification
(paper ref [23]); :data:`CORE_I7_3770` describes one core of the paper's
host CPU at its 3.9 GHz turbo clock.  The *effective* throughput constants
used for time prediction live in :mod:`repro.gpusim.perfmodel` — raw peak
numbers never predict real kernels well, so the model is calibrated against
the paper's measured tables instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["DeviceProperties", "TESLA_K40", "CORE_I7_3770"]


@dataclass(frozen=True)
class DeviceProperties:
    """Static properties of an execution device.

    Attributes
    ----------
    name:
        Human-readable device name.
    sm_count:
        Streaming multiprocessors (1 for a CPU core).
    cores_per_sm:
        Scalar lanes per SM.
    clock_hz:
        Core clock.
    mem_bandwidth:
        Peak DRAM bandwidth, bytes/second.
    shared_mem_per_block:
        Shared-memory capacity available to one block, bytes.
    max_threads_per_block:
        Launch-config upper bound.
    warp_size:
        SIMT width (lanes that execute in lock step).
    kernel_launch_overhead:
        Fixed host-side cost per kernel launch, seconds.
    """

    name: str
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    mem_bandwidth: float
    shared_mem_per_block: int
    max_threads_per_block: int
    warp_size: int
    kernel_launch_overhead: float

    def __post_init__(self) -> None:
        for field_name in (
            "sm_count",
            "cores_per_sm",
            "shared_mem_per_block",
            "max_threads_per_block",
            "warp_size",
        ):
            if getattr(self, field_name) < 1:
                raise ValidationError(f"{field_name} must be >= 1")
        if self.clock_hz <= 0 or self.mem_bandwidth <= 0:
            raise ValidationError("clock_hz and mem_bandwidth must be positive")
        if self.kernel_launch_overhead < 0:
            raise ValidationError("kernel_launch_overhead must be non-negative")

    @property
    def total_cores(self) -> int:
        """Total scalar lanes."""
        return self.sm_count * self.cores_per_sm


#: The paper's GPU: Tesla K40, 15 SMX x 192 cores at 875 MHz boost,
#: 288 GB/s GDDR5, 48 KiB shared memory per block.
TESLA_K40 = DeviceProperties(
    name="NVIDIA Tesla K40",
    sm_count=15,
    cores_per_sm=192,
    clock_hz=875e6,
    mem_bandwidth=288e9,
    shared_mem_per_block=48 * 1024,
    max_threads_per_block=1024,
    warp_size=32,
    kernel_launch_overhead=5e-6,
)

#: One core of the paper's host CPU (Core i7-3770 at 3.9 GHz turbo),
#: modelled as a 1-lane device with no launch overhead.
CORE_I7_3770 = DeviceProperties(
    name="Intel Core i7-3770 (1 thread)",
    sm_count=1,
    cores_per_sm=1,
    clock_hz=3.9e9,
    mem_bandwidth=25.6e9,
    shared_mem_per_block=32 * 1024,  # L1 data cache as the analogue
    max_threads_per_block=1,
    warp_size=1,
    kernel_launch_overhead=0.0,
)
