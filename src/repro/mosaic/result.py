"""Result object returned by the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.localsearch.base import ConvergenceTrace
from repro.mosaic.config import MosaicConfig
from repro.types import AnyImage, PermutationArray
from repro.utils.timing import TimingBreakdown

__all__ = ["MosaicResult"]


@dataclass(frozen=True)
class MosaicResult:
    """Everything a caller needs about one photomosaic generation.

    Attributes
    ----------
    image:
        The rearranged (photomosaic) image.
    permutation:
        ``p[v] = u``: which input tile landed at each target position.
    total_error:
        Paper Eq. (2) for the produced rearrangement.
    timings:
        Phase breakdown with keys ``"step1_tiling"``,
        ``"step2_error_matrix"``, ``"step3_rearrangement"`` and
        ``"histogram_match"`` (when enabled).
    config:
        The configuration that produced this result.
    trace:
        Local-search convergence trace (``None`` for the optimization
        algorithm).
    meta:
        Algorithm-specific extras (solver iterations, kernel launches...).
    """

    image: AnyImage
    permutation: PermutationArray
    total_error: int
    timings: TimingBreakdown
    config: MosaicConfig
    trace: ConvergenceTrace | None = None
    meta: dict = field(default_factory=dict)

    @property
    def sweeps(self) -> int | None:
        """Local-search sweep count ``k`` (``None`` for optimization)."""
        return None if self.trace is None else self.trace.sweeps
