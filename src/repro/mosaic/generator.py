"""The end-to-end rearrangement pipeline (paper Section II, Steps 1-3).

Step 1 divides the input and target images into ``S`` tiles; Step 2
computes the ``S x S`` error matrix; Step 3 rearranges the input tiles with
the configured algorithm.  The input image is histogram-matched to the
target first (Section II) unless disabled.

:func:`generate_photomosaic` is the one-call convenience wrapper;
:class:`PhotomosaicGenerator` keeps the configuration and exposes the
intermediate artefacts (tiles, error matrix) for callers that reuse them —
e.g. the video example, which re-solves Step 3 for each frame while
keeping the Step-1 decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.assignment import get_solver
from repro.cost import error_matrix, total_error
from repro.exceptions import ValidationError
from repro.imaging.histogram import match_histogram
from repro.localsearch import local_search_parallel, local_search_serial
from repro.mosaic.config import MosaicConfig
from repro.mosaic.result import MosaicResult
from repro.tiles.grid import TileGrid
from repro.types import AnyImage, ErrorMatrix
from repro.utils.timing import TimingBreakdown
from repro.utils.validation import check_image

__all__ = ["PhotomosaicGenerator", "generate_photomosaic"]


class PhotomosaicGenerator:
    """Configured photomosaic pipeline."""

    def __init__(self, config: MosaicConfig | None = None) -> None:
        self.config = config or MosaicConfig()

    def preprocess(self, input_image: AnyImage, target_image: AnyImage) -> AnyImage:
        """Histogram-match the input to the target (Section II).

        Returns the adjusted input image (or the original when matching is
        disabled or the images are colour — the paper's adjustment is
        defined on intensity histograms).
        """
        input_image = check_image(input_image, "input_image")
        target_image = check_image(target_image, "target_image")
        if not self.config.histogram_match:
            return input_image
        if input_image.ndim != 2 or target_image.ndim != 2:
            return input_image
        return match_histogram(input_image, target_image)

    def build_error_matrix(
        self, input_image: AnyImage, target_image: AnyImage
    ) -> tuple[TileGrid, ErrorMatrix]:
        """Steps 1 + 2 only: tile grid and error matrix (no rearrangement)."""
        input_image = check_image(input_image, "input_image")
        target_image = check_image(target_image, "target_image")
        if input_image.shape != target_image.shape:
            raise ValidationError(
                f"input {input_image.shape} and target {target_image.shape} "
                "must have identical shapes"
            )
        grid = TileGrid.for_image(input_image, self.config.tile_size)
        matrix = error_matrix(
            grid.split(input_image), grid.split(target_image), self.config.metric
        )
        return grid, matrix

    def rearrange(self, matrix: ErrorMatrix) -> tuple[np.ndarray, object, dict]:
        """Step 3 only: returns ``(permutation, trace_or_None, meta)``."""
        cfg = self.config
        if cfg.algorithm == "optimization":
            result = get_solver(cfg.solver).solve(matrix)
            meta = {
                "solver": cfg.solver,
                "optimal": result.optimal,
                "iterations": result.iterations,
            }
            return result.permutation, None, meta
        if cfg.algorithm == "pyramid":
            raise ValidationError(
                "the pyramid algorithm needs tile stacks; use generate() "
                "or call repro.mosaic.pyramid.coarse_to_fine_rearrange directly"
            )
        if cfg.algorithm == "approximation":
            result = local_search_serial(
                matrix, strategy=cfg.serial_strategy, max_sweeps=cfg.max_sweeps
            )
        else:  # "parallel"
            result = local_search_parallel(
                matrix, backend=cfg.parallel_backend, max_sweeps=cfg.max_sweeps
            )
        meta = {"strategy": result.strategy, **result.meta}
        return result.permutation, result.trace, meta

    def generate(self, input_image: AnyImage, target_image: AnyImage) -> MosaicResult:
        """Run the full pipeline and return a :class:`MosaicResult`."""
        input_image = check_image(input_image, "input_image")
        target_image = check_image(target_image, "target_image")
        if input_image.shape != target_image.shape:
            raise ValidationError(
                f"input {input_image.shape} and target {target_image.shape} "
                "must have identical shapes"
            )
        timings = TimingBreakdown()
        with timings.measure("histogram_match"):
            adjusted = self.preprocess(input_image, target_image)
        with timings.measure("step1_tiling"):
            grid = TileGrid.for_image(adjusted, self.config.tile_size)
            input_tiles = grid.split(adjusted)
            target_tiles = grid.split(target_image)
        orientation_codes = None
        with timings.measure("step2_error_matrix"):
            if self.config.allow_transforms:
                from repro.cost.transformed import transformed_error_matrix

                matrix, orientation_codes = transformed_error_matrix(
                    input_tiles, target_tiles, self.config.metric
                )
            else:
                matrix = error_matrix(input_tiles, target_tiles, self.config.metric)
        with timings.measure("step3_rearrangement"):
            if self.config.algorithm == "pyramid":
                from repro.mosaic.pyramid import coarse_to_fine_rearrange

                pyramid = coarse_to_fine_rearrange(
                    input_tiles,
                    target_tiles,
                    grid,
                    factor=self.config.pyramid_factor,
                    metric=self.config.metric,
                    solver=self.config.solver,
                    fine_matrix=matrix,
                )
                perm = pyramid.permutation
                trace = pyramid.fine_result.trace
                meta = {
                    "coarse_total": pyramid.coarse_total,
                    "warm_start_total": pyramid.warm_start_total,
                    "pyramid_factor": self.config.pyramid_factor,
                }
            else:
                perm, trace, meta = self.rearrange(matrix)
        placed = input_tiles[perm]
        if orientation_codes is not None:
            from repro.tiles.transforms import apply_transforms_to_stack

            positions = np.arange(grid.tile_count)
            chosen = orientation_codes[perm, positions].astype(np.intp)
            placed = apply_transforms_to_stack(placed, chosen)
            meta = {
                **meta,
                "orientations": chosen,
                "transformed_fraction": float((chosen != 0).mean()),
            }
        image = grid.assemble(placed)
        return MosaicResult(
            image=image,
            permutation=perm,
            total_error=total_error(matrix, perm),
            timings=timings,
            config=self.config,
            trace=trace,
            meta=meta,
        )


def generate_photomosaic(
    input_image: AnyImage,
    target_image: AnyImage,
    *,
    tile_size: int = 16,
    algorithm: str = "parallel",
    **config_kwargs: object,
) -> MosaicResult:
    """One-call photomosaic generation.

    >>> from repro.imaging import standard_image
    >>> result = generate_photomosaic(
    ...     standard_image("portrait", 64),
    ...     standard_image("sailboat", 64),
    ...     tile_size=8,
    ... )
    >>> result.image.shape
    (64, 64)
    """
    config = MosaicConfig(tile_size=tile_size, algorithm=algorithm, **config_kwargs)  # type: ignore[arg-type]
    return PhotomosaicGenerator(config).generate(input_image, target_image)
