"""The end-to-end rearrangement pipeline (paper Section II, Steps 1-3).

Step 1 divides the input and target images into ``S`` tiles; Step 2
computes the ``S x S`` error matrix; Step 3 rearranges the input tiles with
the configured algorithm.  The input image is histogram-matched to the
target first (Section II) unless disabled.

:func:`generate_photomosaic` is the one-call convenience wrapper;
:class:`PhotomosaicGenerator` keeps the configuration and exposes the
intermediate artefacts (tiles, error matrix) for callers that reuse them —
e.g. the video example, which re-solves Step 3 for each frame while
keeping the Step-1 decomposition.
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.assignment import get_solver
from repro.cost import error_matrix, sparse_error_matrix, total_error
from repro.cost.sparse import SparseErrorMatrix
from repro.exceptions import ValidationError
from repro.imaging.histogram import match_histogram
from repro.localsearch import local_search_parallel, local_search_serial
from repro.mosaic.config import MosaicConfig
from repro.mosaic.result import MosaicResult
from repro.tiles.grid import TileGrid
from repro.types import AnyImage, ErrorMatrix
from repro.utils.arrays import cached_positions
from repro.utils.timing import TimingBreakdown
from repro.utils.validation import check_image

__all__ = ["PhotomosaicGenerator", "generate_photomosaic"]


class PhotomosaicGenerator:
    """Configured photomosaic pipeline.

    Pass any :class:`~repro.service.cache.CacheBackend` as ``cache`` to
    memoize the Step-1 tile stacks and Step-2 error matrix by content:
    repeated targets or input libraries then skip straight to Step 3.
    The job service shares one backend across all its workers this way —
    an :class:`~repro.service.cache.ArtifactCache` for threads in one
    process, or a :class:`~repro.service.cache.CacheStack` over a
    :class:`~repro.service.diskcache.DiskCacheStore` to share artifacts
    across *process* workers through one on-disk store.  Each artifact's
    hit/miss outcome is reported in ``result.meta["cache"]``.
    """

    def __init__(
        self,
        config: MosaicConfig | None = None,
        *,
        cache=None,
        batcher=None,
    ) -> None:
        self.config = config or MosaicConfig()
        self.cache = cache
        # Optional Step2BatchCoordinator (repro.service.batching): when
        # set, Step 2 joins the cross-job rendezvous so concurrent
        # same-fingerprint jobs share one batched launch.  Results are
        # bit-identical to the solo builders, so the hook changes
        # scheduling only, never output.
        self.batcher = batcher

    def preprocess(self, input_image: AnyImage, target_image: AnyImage) -> AnyImage:
        """Histogram-match the input to the target (Section II).

        The paper's adjustment is defined on intensity histograms, so for
        colour images matching is skipped with a :class:`UserWarning` —
        unless :attr:`MosaicConfig.color_histogram_match` is set, in which
        case each RGB channel is matched independently.  Returns the
        adjusted input image (the original when matching is disabled or
        skipped).
        """
        input_image = check_image(input_image, "input_image")
        target_image = check_image(target_image, "target_image")
        if not self.config.histogram_match:
            return input_image
        if input_image.ndim == 2 and target_image.ndim == 2:
            return match_histogram(input_image, target_image)
        if (
            self.config.color_histogram_match
            and input_image.ndim == 3
            and target_image.ndim == 3
        ):
            return np.stack(
                [
                    match_histogram(input_image[..., c], target_image[..., c])
                    for c in range(3)
                ],
                axis=-1,
            )
        warnings.warn(
            "histogram matching skipped: the paper's Section-II adjustment is "
            "defined on intensity histograms, not colour images; set "
            "MosaicConfig(color_histogram_match=True) for per-channel matching "
            "or histogram_match=False to silence this warning",
            UserWarning,
            stacklevel=2,
        )
        return input_image

    def build_error_matrix(
        self, input_image: AnyImage, target_image: AnyImage
    ) -> tuple[TileGrid, ErrorMatrix]:
        """Steps 1 + 2 only: tile grid and error matrix (no rearrangement)."""
        input_image = check_image(input_image, "input_image")
        target_image = check_image(target_image, "target_image")
        if input_image.shape != target_image.shape:
            raise ValidationError(
                f"input {input_image.shape} and target {target_image.shape} "
                "must have identical shapes"
            )
        grid = TileGrid.for_image(input_image, self.config.tile_size)
        matrix = error_matrix(
            grid.split(input_image),
            grid.split(target_image),
            self.config.metric,
            backend=self.config.array_backend,
        )
        return grid, matrix

    def rearrange(
        self,
        matrix: ErrorMatrix,
        on_sweep: Callable[[int, int, int], None] | None = None,
        *,
        sparse: SparseErrorMatrix | None = None,
    ) -> tuple[np.ndarray, object, dict]:
        """Step 3 only: returns ``(permutation, trace_or_None, meta)``.

        ``on_sweep`` is forwarded to the local-search algorithms (called
        after every 2-opt sweep); the optimisation path has no sweeps and
        ignores it.  With an incomplete ``sparse`` matrix (the sparse
        Step-2 path), the solver runs over the shortlist via
        :meth:`~repro.assignment.base.AssignmentSolver.solve_sparse` and
        the local searches restrict their sweeps to candidate placements;
        ``matrix`` must then be its sentinel densification.  A complete
        sparse matrix is ignored — the dense code path already is the
        exact computation.
        """
        cfg = self.config
        if sparse is not None and sparse.complete:
            sparse = None
        candidates = None if sparse is None else sparse.mask()
        if cfg.algorithm == "optimization":
            solver = get_solver(cfg.solver)
            result = (
                solver.solve(matrix)
                if sparse is None
                else solver.solve_sparse(sparse)
            )
            meta = {
                "solver": cfg.solver,
                "optimal": result.optimal,
                "iterations": result.iterations,
            }
            return result.permutation, None, meta
        if cfg.algorithm == "pyramid":
            raise ValidationError(
                "the pyramid algorithm needs tile stacks; use generate() "
                "or call repro.mosaic.pyramid.coarse_to_fine_rearrange directly"
            )
        # Sparse mode warm-starts 2-opt from the configured solver's
        # shortlist assignment: the identity start would strand tiles on
        # off-shortlist positions that candidate-restricted swaps cannot
        # always repair, and 2-opt then polishes inside the candidate
        # graph.  ``config.solver`` is otherwise unused by the
        # local-search algorithms, so the knob doubles as the sparse
        # warm-start choice (``"greedy"`` for the cheapest start).
        initial = None
        if sparse is not None:
            initial = get_solver(cfg.solver).solve_sparse(sparse).permutation
        if cfg.algorithm == "approximation":
            result = local_search_serial(
                matrix,
                initial,
                strategy=cfg.serial_strategy,
                max_sweeps=cfg.max_sweeps,
                prune=cfg.prune_sweeps,
                candidates=candidates,
                on_sweep=on_sweep,
            )
        else:  # "parallel"
            result = local_search_parallel(
                matrix,
                initial,
                backend=cfg.parallel_backend,
                max_sweeps=cfg.max_sweeps,
                prune=cfg.prune_sweeps,
                candidates=candidates,
                array_backend=cfg.array_backend,
                on_sweep=on_sweep,
            )
        meta = {"strategy": result.strategy, **result.meta}
        if sparse is not None:
            meta["warm_start"] = f"{cfg.solver}-sparse"
        return result.permutation, result.trace, meta

    def generate(
        self,
        input_image: AnyImage,
        target_image: AnyImage,
        *,
        observer: Callable[[str, dict], None] | None = None,
    ) -> MosaicResult:
        """Run the full pipeline and return a :class:`MosaicResult`.

        ``observer(kind, payload)`` is an optional progress hook: it is
        called with ``("phase", {"phase": name, "seconds": s})`` as each
        pipeline phase completes and ``("sweep", {"sweep": k, "swaps": n,
        "total": e})`` after every Step-3 local-search sweep.  Exceptions
        raised by the observer propagate and abort the pipeline — the job
        gateway cancels in-flight jobs this way.
        """
        input_image = check_image(input_image, "input_image")
        target_image = check_image(target_image, "target_image")
        if input_image.shape != target_image.shape:
            raise ValidationError(
                f"input {input_image.shape} and target {target_image.shape} "
                "must have identical shapes"
            )
        timings = TimingBreakdown()
        cache_meta: dict[str, str] = {}

        def phase_done(phase: str) -> None:
            if observer is not None:
                observer("phase", {"phase": phase, "seconds": timings.get(phase)})

        on_sweep = None
        if observer is not None:

            def on_sweep(sweep: int, swaps: int, total: int) -> None:
                observer("sweep", {"sweep": sweep, "swaps": swaps, "total": total})

        with timings.measure("histogram_match"):
            adjusted = self.preprocess(input_image, target_image)
        phase_done("histogram_match")
        with timings.measure("step1_tiling"):
            grid = TileGrid.for_image(adjusted, self.config.tile_size)
            if self.cache is None:
                input_tiles = grid.split(adjusted)
                target_tiles = grid.split(target_image)
            else:
                input_tiles, target_tiles, fingerprints = self._cached_tiles(
                    grid, adjusted, target_image, cache_meta
                )
        phase_done("step1_tiling")
        orientation_codes = None
        sparse_matrix: SparseErrorMatrix | None = None
        batch_meta: dict | None = None
        batchable = self.batcher is not None and not self.config.allow_transforms
        with timings.measure("step2_error_matrix"):
            if self.config.shortlist_top_k > 0:
                # Sparse Step 2: sketch-shortlisted candidates, exact-scored.
                # The artifact cache stores only full dense matrices, so
                # sparse runs bypass it (step-1 tile caching still applies).
                if batchable:
                    sparse_matrix, batch_meta = self._batched_step2(
                        grid, input_tiles, target_tiles
                    )
                else:
                    sparse_matrix = sparse_error_matrix(
                        input_tiles,
                        target_tiles,
                        self.config.metric,
                        top_k=self.config.shortlist_top_k,
                        sketch=self.config.sketch,
                        seed=self.config.shortlist_seed,
                        backend=self.config.array_backend,
                    )
                matrix = sparse_matrix.to_dense()
                if self.cache is not None:
                    cache_meta["step2_matrix"] = "bypass"
            elif self.cache is None:
                if batchable:
                    matrix, batch_meta = self._batched_step2(
                        grid, input_tiles, target_tiles
                    )
                else:
                    matrix, orientation_codes = self._compute_matrix(
                        input_tiles, target_tiles
                    )
            else:
                from repro.service.cache import error_matrix_key

                key = error_matrix_key(
                    *fingerprints,
                    self.config.tile_size,
                    self.config.metric,
                    self.config.allow_transforms,
                )
                cache_meta["step2_matrix"] = (
                    "hit" if self.cache.contains(key) else "miss"
                )
                if batchable:
                    # A cache miss still goes through the rendezvous so
                    # concurrent distinct-image jobs share the launch;
                    # hits skip Step 2 entirely, as before.
                    holder: dict = {}

                    def compute_batched():
                        matrix, batch = self._batched_step2(
                            grid, input_tiles, target_tiles
                        )
                        holder["batch"] = batch
                        return matrix, None

                    matrix, orientation_codes = self.cache.get_or_compute(
                        key, compute_batched
                    )
                    batch_meta = holder.get("batch")
                else:
                    matrix, orientation_codes = self.cache.get_or_compute(
                        key,
                        lambda: self._compute_matrix(input_tiles, target_tiles),
                    )
        phase_done("step2_error_matrix")
        with timings.measure("step3_rearrangement"):
            if self.config.algorithm == "pyramid":
                from repro.mosaic.pyramid import coarse_to_fine_rearrange

                pyramid = coarse_to_fine_rearrange(
                    input_tiles,
                    target_tiles,
                    grid,
                    factor=self.config.pyramid_factor,
                    metric=self.config.metric,
                    solver=self.config.solver,
                    fine_matrix=matrix,
                )
                perm = pyramid.permutation
                trace = pyramid.fine_result.trace
                meta = {
                    "coarse_total": pyramid.coarse_total,
                    "warm_start_total": pyramid.warm_start_total,
                    "pyramid_factor": self.config.pyramid_factor,
                }
            else:
                perm, trace, meta = self.rearrange(
                    matrix, on_sweep=on_sweep, sparse=sparse_matrix
                )
        phase_done("step3_rearrangement")
        placed = input_tiles[perm]
        if orientation_codes is not None:
            from repro.tiles.transforms import apply_transforms_to_stack

            positions = cached_positions(grid.tile_count)
            chosen = orientation_codes[perm, positions].astype(np.intp)
            placed = apply_transforms_to_stack(placed, chosen)
            meta = {
                **meta,
                "orientations": chosen,
                "transformed_fraction": float((chosen != 0).mean()),
            }
        image = grid.assemble(placed)
        if cache_meta:
            meta = {**meta, "cache": cache_meta}
        if batch_meta is not None:
            # Plain ints/strings only: the dict must survive process-pool
            # pickling so the worker pool can fold batch counters even
            # when the result crossed an executor boundary.
            meta = {**meta, "batch": batch_meta}
        final_total = total_error(matrix, perm)
        if sparse_matrix is not None:
            positions = cached_positions(grid.tile_count)
            off_shortlist = int(
                (~sparse_matrix.mask()[perm, positions]).sum()
            )
            if not sparse_matrix.complete:
                # The densified matrix holds sentinels off-shortlist; the
                # reported total is always the true Eq. (2) value, scored
                # from the retained features.
                final_total = sparse_matrix.exact_total(perm)
            meta = {
                **meta,
                "shortlist": {
                    "top_k": sparse_matrix.top_k,
                    "sketch": self.config.sketch,
                    "complete": sparse_matrix.complete,
                    "pairs_evaluated": int(
                        sparse_matrix.meta.get("pairs_evaluated", 0)
                    ),
                    "pairs_total": int(
                        sparse_matrix.meta.get(
                            "pairs_total", grid.tile_count**2
                        )
                    ),
                    "fallback": off_shortlist,
                },
            }
        return MosaicResult(
            image=image,
            permutation=perm,
            total_error=final_total,
            timings=timings,
            config=self.config,
            trace=trace,
            meta=meta,
        )

    def _batched_step2(self, grid: TileGrid, input_tiles, target_tiles):
        """Step 2 through the cross-job rendezvous: ``(result, meta)``.

        ``result`` is the dense matrix (dense config) or the
        :class:`SparseErrorMatrix` (shortlist config), sliced out of the
        shared launch bit-identically to the solo path.  The fingerprint
        matches what :func:`repro.service.batching.step2_fingerprint`
        derives from the job spec, so pool announcements and this call
        site rendezvous under the same key.
        """
        from repro.cost.batch import BatchJob, batch_fingerprint

        cfg = self.config
        input_tiles = np.asarray(input_tiles)
        fingerprint = batch_fingerprint(
            grid_tiles=grid.tile_count,
            tile_shape=tuple(input_tiles.shape[1:]),
            metric=cfg.metric,
            backend=cfg.array_backend,
            top_k=cfg.shortlist_top_k,
            sketch=cfg.sketch,
        )
        job = BatchJob(
            input_tiles,
            np.asarray(target_tiles),
            top_k=cfg.shortlist_top_k,
            sketch=cfg.sketch,
            seed=cfg.shortlist_seed,
        )
        result, batch_size = self.batcher.compute(
            fingerprint, job, metric=cfg.metric, backend=cfg.array_backend
        )
        return result, {"size": int(batch_size), "fingerprint": fingerprint}

    def _compute_matrix(
        self, input_tiles: np.ndarray, target_tiles: np.ndarray
    ) -> tuple[ErrorMatrix, np.ndarray | None]:
        """Step 2 proper: ``(matrix, orientation_codes_or_None)``."""
        if self.config.allow_transforms:
            from repro.cost.transformed import transformed_error_matrix

            return transformed_error_matrix(
                input_tiles, target_tiles, self.config.metric
            )
        return (
            error_matrix(
                input_tiles,
                target_tiles,
                self.config.metric,
                backend=self.config.array_backend,
            ),
            None,
        )

    def _cached_tiles(
        self,
        grid: TileGrid,
        adjusted: AnyImage,
        target_image: AnyImage,
        cache_meta: dict[str, str],
    ) -> tuple[np.ndarray, np.ndarray, tuple[str, str]]:
        """Step 1 through the artifact cache, keyed by image content."""
        from repro.service.cache import image_fingerprint, tile_grid_key

        fp_input = image_fingerprint(adjusted)
        fp_target = image_fingerprint(target_image)
        key_input = tile_grid_key(fp_input, self.config.tile_size)
        key_target = tile_grid_key(fp_target, self.config.tile_size)
        cache_meta["step1_input"] = "hit" if self.cache.contains(key_input) else "miss"
        cache_meta["step1_target"] = (
            "hit" if self.cache.contains(key_target) else "miss"
        )
        input_tiles = self.cache.get_or_compute(
            key_input, lambda: grid.split(adjusted)
        )
        target_tiles = self.cache.get_or_compute(
            key_target, lambda: grid.split(target_image)
        )
        return input_tiles, target_tiles, (fp_input, fp_target)


def generate_photomosaic(
    input_image: AnyImage,
    target_image: AnyImage,
    *,
    tile_size: int = 16,
    algorithm: str = "parallel",
    **config_kwargs: object,
) -> MosaicResult:
    """One-call photomosaic generation.

    >>> from repro.imaging import standard_image
    >>> result = generate_photomosaic(
    ...     standard_image("portrait", 64),
    ...     standard_image("sailboat", 64),
    ...     tile_size=8,
    ... )
    >>> result.image.shape
    (64, 64)
    """
    config = MosaicConfig(tile_size=tile_size, algorithm=algorithm, **config_kwargs)  # type: ignore[arg-type]
    return PhotomosaicGenerator(config).generate(input_image, target_image)
