"""Classic database-driven photomosaic (paper Fig. 1 and Section I).

The paper's introduction describes the conventional pipeline — divide the
target into subimages, pick the most similar image from a database for
each — before departing from it.  This module implements that baseline so
the repository covers both generation modes:

* ``allow_reuse=True`` — each target tile independently takes its nearest
  database tile (the common photomosaic look; one database image may
  appear many times).
* ``allow_reuse=False`` — each database tile may be used at most once,
  which is a (possibly rectangular) assignment problem; with exactly ``S``
  database tiles this degenerates to the paper's rearrangement problem.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.assignment.rectangular import solve_rectangular
from repro.cost import get_metric
from repro.exceptions import ValidationError
from repro.imaging.resize import resize
from repro.tiles.grid import TileGrid
from repro.types import AnyImage, TileStack
from repro.utils.validation import check_image

__all__ = ["TileDatabase", "DatabaseMosaic"]


@dataclass(frozen=True)
class TileDatabase:
    """A stack of candidate tiles, all resampled to one tile size."""

    tiles: TileStack

    @classmethod
    def from_images(cls, images: Iterable[AnyImage], tile_size: int) -> "TileDatabase":
        """Build a database by resizing every image to ``tile_size``."""
        resized = []
        for image in images:
            image = check_image(image)
            resized.append(resize(image, tile_size, tile_size))
        if not resized:
            raise ValidationError("tile database needs at least one image")
        first_ndim = resized[0].ndim
        if any(t.ndim != first_ndim for t in resized):
            raise ValidationError("database images must be all-gray or all-colour")
        return cls(tiles=np.stack(resized))

    @classmethod
    def from_image_tiles(cls, image: AnyImage, tile_size: int) -> "TileDatabase":
        """Build a database from every tile of one large image."""
        image = check_image(image)
        grid = TileGrid.for_image(image, tile_size)
        return cls(tiles=grid.split(image))

    @property
    def size(self) -> int:
        return self.tiles.shape[0]

    @property
    def tile_size(self) -> int:
        return self.tiles.shape[1]


class DatabaseMosaic:
    """Photomosaic generator in the classic database mode."""

    def __init__(self, database: TileDatabase, metric: str = "sad") -> None:
        self.database = database
        self.metric = get_metric(metric)

    def generate(
        self, target_image: AnyImage, *, allow_reuse: bool = True
    ) -> tuple[AnyImage, np.ndarray]:
        """Build a mosaic of ``target_image`` from database tiles.

        Returns ``(mosaic_image, choice)`` where ``choice[v]`` is the
        database index placed at target position ``v``.
        """
        target_image = check_image(target_image, "target_image")
        grid = TileGrid.for_image(target_image, self.database.tile_size)
        target_tiles = grid.split(target_image)
        if target_tiles.ndim != self.database.tiles.ndim:
            raise ValidationError(
                "target image and database tiles must agree on gray/colour"
            )
        db_features = self.metric.prepare(self.database.tiles)
        tg_features = self.metric.prepare(target_tiles)
        # Rows = database tiles, columns = target positions.
        costs = self.metric.pairwise(db_features, tg_features)
        if allow_reuse:
            choice = np.argmin(costs, axis=0).astype(np.intp)
        else:
            if self.database.size < grid.tile_count:
                raise ValidationError(
                    f"without reuse the database needs >= {grid.tile_count} "
                    f"tiles, got {self.database.size}"
                )
            choice, _total = solve_rectangular(costs)
        mosaic = grid.assemble(self.database.tiles[choice])
        return mosaic, choice
