"""Video photomosaic session (the real-time scenario of Section III).

The paper motivates its approximation algorithm with interactive and
real-time video photomosaic systems (refs [16]-[18]) and notes that the
edge groups depend only on ``S`` and are precomputed (Section IV-B).
:class:`VideoMosaicSession` packages exactly that usage pattern:

* the tile grid, input tiles and edge groups are built **once**;
* each call to :meth:`process_frame` computes the frame's error matrix and
  runs the parallel local search **warm-started** from the previous
  frame's permutation — consecutive frames differ little, so convergence
  typically takes 1-3 sweeps instead of a cold start's 5-10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.coloring.groups import EdgeGroups, build_edge_groups
from repro.cost.base import CostMetric, get_metric
from repro.cost.matrix import error_matrix
from repro.exceptions import ValidationError
from repro.imaging.histogram import match_histogram
from repro.localsearch.parallel import local_search_parallel
from repro.tiles.grid import TileGrid
from repro.types import AnyImage, PermutationArray
from repro.utils.timing import TimingBreakdown
from repro.utils.validation import check_image

__all__ = ["VideoMosaicSession", "FrameResult"]


@dataclass(frozen=True)
class FrameResult:
    """Outcome of one processed frame."""

    image: AnyImage
    permutation: PermutationArray
    total_error: int
    sweeps: int
    timings: TimingBreakdown
    frame_index: int


class VideoMosaicSession:
    """Rearranges one input image to follow a stream of target frames."""

    def __init__(
        self,
        input_image: AnyImage,
        tile_size: int,
        *,
        metric: str | CostMetric = "sad",
        histogram_match: bool = True,
        max_sweeps: int = 10_000,
    ) -> None:
        self._input_image = check_image(input_image, "input_image")
        self.grid = TileGrid.for_image(self._input_image, tile_size)
        self.metric = get_metric(metric)
        self.histogram_match = histogram_match
        self.max_sweeps = max_sweeps
        #: Precomputed once per S — the Section IV-B amortisation.
        self.groups: EdgeGroups = build_edge_groups(self.grid.tile_count)
        self._perm: PermutationArray | None = None
        self._frames = 0

    @property
    def frames_processed(self) -> int:
        return self._frames

    def reset(self) -> None:
        """Forget the warm-start state (e.g. at a scene cut)."""
        self._perm = None

    def process_frame(self, target_frame: AnyImage) -> FrameResult:
        """Rearrange the input to reproduce ``target_frame``."""
        target_frame = check_image(target_frame, "target_frame")
        if target_frame.shape != self._input_image.shape:
            raise ValidationError(
                f"frame shape {target_frame.shape} does not match input "
                f"{self._input_image.shape}"
            )
        timings = TimingBreakdown()
        with timings.measure("histogram_match"):
            if self.histogram_match and target_frame.ndim == 2:
                adjusted = match_histogram(self._input_image, target_frame)
            else:
                adjusted = self._input_image
        with timings.measure("step1_tiling"):
            input_tiles = self.grid.split(adjusted)
            target_tiles = self.grid.split(target_frame)
        with timings.measure("step2_error_matrix"):
            matrix = error_matrix(input_tiles, target_tiles, self.metric)
        with timings.measure("step3_rearrangement"):
            result = local_search_parallel(
                matrix,
                initial=self._perm,
                groups=self.groups,
                max_sweeps=self.max_sweeps,
            )
        self._perm = result.permutation
        frame_index = self._frames
        self._frames += 1
        return FrameResult(
            image=self.grid.assemble(input_tiles[result.permutation]),
            permutation=result.permutation,
            total_error=result.total,
            sweeps=result.sweeps,
            timings=timings,
            frame_index=frame_index,
        )

    def process_sequence(self, frames: list[np.ndarray]) -> list[FrameResult]:
        """Process a list of frames in order."""
        return [self.process_frame(frame) for frame in frames]
