"""Hierarchical (coarse-to-fine) rearrangement.

A speed extension for large tile counts: first rearrange *super-tiles*
(blocks of ``factor x factor`` tiles), then refine individual tiles with a
local search warm-started from the coarse solution.  The coarse stage
solves an exact assignment on ``S / factor^2`` items — cheap even where
the flat problem's matching would be prohibitive — and typically lands the
fine search close enough that it converges in very few sweeps.

The expansion preserves block interiors: if coarse block ``B`` moves to
coarse slot ``C``, every fine tile of ``B`` moves to the corresponding
offset inside ``C``, so spatial coherence inside blocks survives into the
warm start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.assignment import get_solver
from repro.cost.base import CostMetric, get_metric
from repro.cost.matrix import error_matrix, total_error
from repro.exceptions import ValidationError
from repro.localsearch.base import LocalSearchResult
from repro.localsearch.parallel import local_search_parallel
from repro.tiles.grid import TileGrid
from repro.types import ErrorMatrix, PermutationArray, TileStack
from repro.utils.validation import check_positive_int

__all__ = ["coarse_to_fine_rearrange", "expand_coarse_permutation", "PyramidResult"]


@dataclass(frozen=True)
class PyramidResult:
    """Outcome of a coarse-to-fine rearrangement."""

    permutation: PermutationArray
    total: int
    coarse_total: int
    warm_start_total: int
    fine_result: LocalSearchResult

    @property
    def fine_sweeps(self) -> int:
        return self.fine_result.sweeps


def expand_coarse_permutation(
    coarse_perm: PermutationArray,
    coarse_grid: TileGrid,
    factor: int,
) -> PermutationArray:
    """Lift a super-tile permutation to the fine tile grid.

    Fine tile at block-local offset ``(dy, dx)`` of coarse block ``b``
    moves to the same offset inside the coarse slot that ``b`` was
    assigned to.
    """
    factor = check_positive_int(factor, "factor")
    coarse_perm = np.asarray(coarse_perm)
    rows_c, cols_c = coarse_grid.rows, coarse_grid.cols
    if coarse_perm.shape != (rows_c * cols_c,):
        raise ValidationError(
            f"coarse permutation must have length {rows_c * cols_c}, "
            f"got {coarse_perm.shape}"
        )
    cols_f = cols_c * factor
    fine = np.empty(rows_c * cols_c * factor * factor, dtype=np.intp)
    for slot in range(coarse_perm.shape[0]):
        block = int(coarse_perm[slot])
        slot_r, slot_c = divmod(slot, cols_c)
        block_r, block_c = divmod(block, cols_c)
        for dy in range(factor):
            src_row = block_r * factor + dy
            dst_row = slot_r * factor + dy
            src_base = src_row * cols_f + block_c * factor
            dst_base = dst_row * cols_f + slot_c * factor
            fine[dst_base : dst_base + factor] = np.arange(
                src_base, src_base + factor
            )
    return fine


def _coarsen(tiles: TileStack, grid: TileGrid, factor: int) -> TileStack:
    """Merge ``factor x factor`` neighbouring tiles into super-tiles."""
    m = grid.tile_size
    image_like = grid.assemble(tiles)
    coarse_grid = TileGrid(grid.height, grid.width, m * factor)
    return coarse_grid.split(image_like)


def coarse_to_fine_rearrange(
    input_tiles: TileStack,
    target_tiles: TileStack,
    grid: TileGrid,
    *,
    factor: int = 2,
    metric: str | CostMetric = "sad",
    solver: str = "scipy",
    fine_matrix: ErrorMatrix | None = None,
) -> PyramidResult:
    """Two-level rearrangement: exact coarse assignment + fine local search.

    Parameters
    ----------
    input_tiles, target_tiles:
        Fine tile stacks matching ``grid``.
    grid:
        The fine tile grid.
    factor:
        Tiles per super-tile side; must divide both tile-grid dimensions.
    metric, solver:
        Cost metric and coarse-stage assignment solver.
    fine_matrix:
        Precomputed fine error matrix (computed when omitted).
    """
    factor = check_positive_int(factor, "factor")
    if grid.rows % factor or grid.cols % factor:
        raise ValidationError(
            f"factor {factor} does not divide tile grid {grid.rows}x{grid.cols}"
        )
    metric = get_metric(metric)
    coarse_grid = TileGrid(grid.height, grid.width, grid.tile_size * factor)
    coarse_in = _coarsen(input_tiles, grid, factor)
    coarse_tg = _coarsen(target_tiles, grid, factor)
    coarse_matrix = error_matrix(coarse_in, coarse_tg, metric)
    coarse = get_solver(solver).solve(coarse_matrix)

    if fine_matrix is None:
        fine_matrix = error_matrix(input_tiles, target_tiles, metric)
    warm = expand_coarse_permutation(coarse.permutation, coarse_grid, factor)
    warm_total = total_error(fine_matrix, warm)
    fine = local_search_parallel(fine_matrix, initial=warm)
    return PyramidResult(
        permutation=fine.permutation,
        total=fine.total,
        coarse_total=coarse.total,
        warm_start_total=warm_total,
        fine_result=fine,
    )
