"""High-level photomosaic pipeline (the paper's Steps 1-3, end to end)."""

from __future__ import annotations

from repro.mosaic.config import MosaicConfig
from repro.mosaic.database import DatabaseMosaic, TileDatabase
from repro.mosaic.generator import PhotomosaicGenerator, generate_photomosaic
from repro.mosaic.pyramid import (
    PyramidResult,
    coarse_to_fine_rearrange,
    expand_coarse_permutation,
)
from repro.mosaic.result import MosaicResult
from repro.mosaic.video import FrameResult, VideoMosaicSession

__all__ = [
    "MosaicConfig",
    "MosaicResult",
    "PhotomosaicGenerator",
    "generate_photomosaic",
    "TileDatabase",
    "DatabaseMosaic",
    "VideoMosaicSession",
    "FrameResult",
    "PyramidResult",
    "coarse_to_fine_rearrange",
    "expand_coarse_permutation",
]
