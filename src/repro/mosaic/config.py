"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ValidationError

__all__ = ["MosaicConfig", "ALGORITHMS"]

#: Rearrangement algorithms: the paper's optimization (Section III), serial
#: approximation (Algorithm 1), parallel approximation (Algorithm 2), and
#: the coarse-to-fine pyramid extension.
ALGORITHMS = ("optimization", "approximation", "parallel", "pyramid")


@dataclass(frozen=True)
class MosaicConfig:
    """All knobs of the rearrangement pipeline.

    Attributes
    ----------
    tile_size:
        Side length ``M`` of each square tile.
    algorithm:
        One of :data:`ALGORITHMS`.
    metric:
        Cost-metric registry name (``"sad"`` reproduces the paper).
    solver:
        Assignment-solver registry name for the optimization algorithm
        (``"scipy"`` is the Blossom V stand-in; ``"hungarian"``, ``"jv"``,
        ``"auction"`` and ``"greedy"`` are also available).
    histogram_match:
        Pre-adjust the input's intensity distribution to the target's
        (paper Section II).  The paper's adjustment is defined on
        intensity histograms, so for colour images it is skipped with a
        :class:`UserWarning` unless ``color_histogram_match`` is set.
    color_histogram_match:
        Extend histogram matching to colour pairs by matching each RGB
        channel independently (an extension beyond the paper; channel-wise
        matching can shift hues since channels are remapped separately).
        Only meaningful when ``histogram_match`` is enabled.
    serial_strategy:
        Sweep strategy for ``algorithm="approximation"``
        (``"first"`` = Algorithm 1 verbatim, ``"best_row"`` = vectorised).
    parallel_backend:
        Backend for ``algorithm="parallel"``
        (``"vectorized"`` | ``"threads"`` | ``"gpusim"``).
    allow_transforms:
        Permit the 8 dihedral orientations (rotations/flips) per tile; the
        pairing error becomes the minimum over orientations (an extension
        beyond the paper — see ``repro.tiles.transforms``).
    max_sweeps:
        Safety bound for the local-search algorithms.
    array_backend:
        Array library for the Step-2/Step-3 hot paths: ``"numpy"``
        (default), ``"cupy"`` (GPU, when installed), or ``"auto"`` (best
        available) — see :mod:`repro.accel.backend`.  Orthogonal to
        :attr:`parallel_backend`, which picks the *execution model*.
    prune_sweeps:
        Active-pair pruning for the 2-opt sweeps
        (:mod:`repro.accel.dirty`): after the first sweep only pairs
        with a dirty endpoint are evaluated.  Results are bit-identical;
        disable only to measure the unpruned baseline.
    shortlist_top_k:
        Sparse Step 2: keep only this many sketch-shortlisted candidate
        positions per input tile and exact-score just those pairs
        (:mod:`repro.cost.sparse`).  ``0`` (default) computes the full
        dense matrix; any value ``>= S`` is equivalent to the dense path
        bit for bit.  Incompatible with ``allow_transforms`` and the
        ``pyramid`` algorithm (both need the full matrix), and with the
        ``gpusim`` parallel backend (full-width kernels).
    sketch:
        Sketch kind used for shortlisting
        (:data:`repro.cost.sketch.SKETCH_KINDS`): ``"mean"``,
        ``"pyramid"`` or ``"pca"``.  Never affects final costs — only
        which pairs get exact-scored.
    shortlist_seed:
        Seed for the shortlister's k-means clustering; a fixed seed makes
        sparse runs bit-reproducible.  ``None`` draws fresh entropy.
    """

    tile_size: int = 16
    algorithm: str = "parallel"
    metric: str = "sad"
    solver: str = "scipy"
    histogram_match: bool = True
    color_histogram_match: bool = False
    serial_strategy: str = "first"
    parallel_backend: str = "vectorized"
    allow_transforms: bool = False
    pyramid_factor: int = 2
    max_sweeps: int = 10_000
    array_backend: str = "numpy"
    prune_sweeps: bool = True
    shortlist_top_k: int = 0
    sketch: str = "mean"
    shortlist_seed: int | None = None

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValidationError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.algorithm not in ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {self.algorithm!r} (use one of {ALGORITHMS})"
            )
        if self.max_sweeps < 1:
            raise ValidationError(f"max_sweeps must be >= 1, got {self.max_sweeps}")
        if self.pyramid_factor < 1:
            raise ValidationError(
                f"pyramid_factor must be >= 1, got {self.pyramid_factor}"
            )
        if self.algorithm == "pyramid" and self.allow_transforms:
            raise ValidationError(
                "pyramid and allow_transforms cannot combine: the coarse "
                "stage has no orientation bookkeeping"
            )
        if self.shortlist_top_k < 0:
            raise ValidationError(
                f"shortlist_top_k must be >= 0, got {self.shortlist_top_k}"
            )
        from repro.cost.sketch import SKETCH_KINDS

        if self.sketch not in SKETCH_KINDS:
            raise ValidationError(
                f"unknown sketch kind {self.sketch!r} "
                f"(use one of {SKETCH_KINDS})"
            )
        if self.shortlist_top_k > 0:
            if self.allow_transforms:
                raise ValidationError(
                    "shortlist_top_k and allow_transforms cannot combine: "
                    "orientation search needs the full dense matrix"
                )
            if self.algorithm == "pyramid":
                raise ValidationError(
                    "shortlist_top_k and the pyramid algorithm cannot "
                    "combine: the coarse-to-fine warm start needs the full "
                    "dense matrix"
                )
            if self.algorithm == "parallel" and self.parallel_backend == "gpusim":
                raise ValidationError(
                    "shortlist_top_k is not supported by the gpusim "
                    "parallel backend (full-width kernels); use "
                    "vectorized or threads"
                )
        from repro.accel.backend import backend_names

        if self.array_backend not in backend_names():
            raise ValidationError(
                f"unknown array backend {self.array_backend!r} "
                f"(use one of {backend_names()})"
            )
