"""repro — Photomosaic Generation by Rearranging Subimages.

A full reproduction of Yang, Ito & Nakano (IPDPS Workshops 2017): an input
image is divided into tiles which are rearranged — by exact minimum-weight
bipartite matching or by (serial / parallel) 2-opt local search — so the
rearranged image reproduces a given target image.  GPU acceleration is
reproduced through a SIMT virtual-GPU substrate and a calibrated
performance model (see DESIGN.md).

Quickstart::

    from repro import generate_photomosaic, standard_image

    result = generate_photomosaic(
        standard_image("portrait", 512),
        standard_image("sailboat", 512),
        tile_size=16,             # 32 x 32 tiles
        algorithm="parallel",     # paper Algorithm 2
    )
    print(result.total_error, result.sweeps)
"""

from __future__ import annotations

from repro.assignment import AssignmentResult, get_solver
from repro.cost import error_matrix, get_metric, total_error
from repro.imaging import (
    load_image,
    match_histogram,
    save_image,
    standard_image,
    standard_image_color,
    synthetic_image,
)
from repro.localsearch import (
    local_search_parallel,
    local_search_serial,
    multi_start_local_search,
    simulated_annealing,
)
from repro.mosaic import (
    DatabaseMosaic,
    MosaicConfig,
    MosaicResult,
    PhotomosaicGenerator,
    TileDatabase,
    VideoMosaicSession,
    generate_photomosaic,
)
from repro.tiles import TileGrid

__version__ = "1.0.0"

__all__ = [
    "AssignmentResult",
    "get_solver",
    "error_matrix",
    "get_metric",
    "total_error",
    "load_image",
    "save_image",
    "match_histogram",
    "standard_image",
    "standard_image_color",
    "synthetic_image",
    "local_search_serial",
    "local_search_parallel",
    "simulated_annealing",
    "multi_start_local_search",
    "VideoMosaicSession",
    "MosaicConfig",
    "MosaicResult",
    "PhotomosaicGenerator",
    "generate_photomosaic",
    "TileDatabase",
    "DatabaseMosaic",
    "TileGrid",
    "__version__",
]
