"""Sparse Step 2 — shortlisted error matrices for sublinear candidate sets.

The dense ``S x S`` matrix from :func:`repro.cost.matrix.error_matrix`
dominates poster-scale runs and grows quadratically.  This module builds
the sparse alternative the ROADMAP's "sublinear Step 2" item asks for:

1. sketch every tile in the metric's feature space
   (:mod:`repro.cost.sketch`);
2. cluster the *positions* (target tiles) with the seeded k-means from
   :mod:`repro.library.shortlist` and rank each input tile's preference
   over all positions — fine sketch-distance order inside the nearest
   clusters (the "head"), coarse centroid order beyond;
3. select ``top_k`` positions per input tile by a degree-capped
   round-robin over those preference orders (no position is shortlisted
   by more than ``top_k`` tiles), keeping the bipartite candidate graph
   ``top_k``-regular and therefore matchable — the property that keeps
   assignment quality inside the pinned envelope.  A plain per-row
   top-k concentrates candidates on popular positions and strands a
   quarter of the rows on sentinel fallbacks;
4. exact-score exactly the ``S * top_k`` selected pairs with the
   metric's kernel on the configured
   :class:`~repro.accel.backend.ArrayBackend`.

The result is a :class:`SparseErrorMatrix`: per-input-tile candidate
positions with their **exact** SAD/SSD costs — the approximation is only
in *which* pairs get scored, never in the scores themselves.  When
``top_k >= S`` the builder delegates to :func:`error_matrix` outright,
so the complete case is bit-identical to the dense path by construction
(the differential suite in ``tests/cost/test_sparse_differential.py``
pins this end to end).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.backend import ArrayBackend, get_backend
from repro.cost.base import CostMetric, get_metric
from repro.cost.matrix import DEFAULT_CHUNK_BUDGET, check_tile_stacks, error_matrix
from repro.cost.sketch import SKETCH_KINDS, sketch_features
from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, ErrorMatrix, PermutationArray, TileStack
from repro.utils.validation import check_permutation

__all__ = ["SparseErrorMatrix", "sparse_error_matrix", "DEFAULT_TOP_K"]

#: Default shortlist width when sparsity is enabled without an explicit k.
DEFAULT_TOP_K = 32

#: The fine-ranked head of each preference order covers this many times
#: ``top_k`` candidates (nearest k-means clusters, widened to cover it).
HEAD_FACTOR = 8


@dataclass(frozen=True)
class SparseErrorMatrix:
    """Top-k candidate positions per input tile, exact-scored.

    Row ``u`` lists the candidate *positions* ``v`` (dense-matrix
    columns) considered for input tile ``u``, best-first under a stable
    sort, with ``costs[u, j] = E(I_u, T_{indices[u, j]})`` computed by
    the real metric — sparse in coverage, exact in value.

    Attributes
    ----------
    indices:
        ``(S, k)`` int64 candidate positions, unique within each row.
    costs:
        ``(S, k)`` exact errors aligned with ``indices``.
    features_in, features_tg:
        The metric-prepared ``(S, F)`` feature stacks, retained so
        consumers can exact-score pairs *outside* the shortlist (solver
        fallback rows, Eq. (2) totals) without re-tiling.  ``None`` when
        constructed from a bare matrix via :meth:`from_dense`.
    metric_name:
        Registry name of the metric that produced ``costs``.
    meta:
        Build diagnostics — ``pairs_evaluated``, ``pairs_total``,
        ``sketch``, ``clusters``, ``probes``, ``seed``, ``backend``.
    """

    indices: np.ndarray
    costs: np.ndarray
    metric_name: str = "sad"
    features_in: np.ndarray | None = None
    features_tg: np.ndarray | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices)
        costs = np.asarray(self.costs)
        if (
            indices.ndim != 2
            or indices.shape != costs.shape
            or indices.shape[0] == 0
            or indices.shape[1] == 0
        ):
            raise ValidationError(
                f"sparse matrix needs matching non-empty (S, k) index/cost "
                f"arrays, got {indices.shape} and {costs.shape}"
            )
        s, k = indices.shape
        if k > s:
            raise ValidationError(f"top_k {k} exceeds size {s}")
        if indices.min() < 0 or indices.max() >= s:
            raise ValidationError(
                f"candidate positions must lie in [0, {s}), got range "
                f"[{indices.min()}, {indices.max()}]"
            )
        sorted_rows = np.sort(indices, axis=1)
        if (sorted_rows[:, 1:] == sorted_rows[:, :-1]).any():
            raise ValidationError("candidate rows must not repeat a position")
        if (costs < 0).any():
            raise ValidationError("sparse costs must be non-negative")
        object.__setattr__(
            self, "indices", indices.astype(np.int64, copy=False)
        )
        object.__setattr__(self, "costs", costs.astype(ERROR_DTYPE, copy=False))

    # -- shape ---------------------------------------------------------
    @property
    def size(self) -> int:
        """``S``: side length of the dense matrix this approximates."""
        return self.indices.shape[0]

    @property
    def top_k(self) -> int:
        return self.indices.shape[1]

    @property
    def complete(self) -> bool:
        """True when every dense entry is present (``top_k == S``)."""
        return self.top_k == self.size

    # -- densification -------------------------------------------------
    def sentinel(self) -> int:
        """A cost strictly worse than every shortlisted pair."""
        return int(self.costs.max()) + 1

    def mask(self) -> np.ndarray:
        """Boolean ``(S, S)``, True where ``(u, v)`` was shortlisted."""
        out = np.zeros((self.size, self.size), dtype=bool)
        rows = np.repeat(np.arange(self.size), self.top_k)
        out[rows, self.indices.ravel()] = True
        return out

    def to_dense(self, fill: int | None = None) -> ErrorMatrix:
        """Scatter back to a dense matrix; missing entries get ``fill``.

        With ``top_k == S`` every entry is present and the result is the
        exact dense matrix (scatter order is irrelevant because rows hold
        unique positions), so sparse -> dense round-trips bit-identically.
        Incomplete matrices default ``fill`` to :meth:`sentinel`, which
        any cost-minimising consumer avoids whenever a candidate exists.
        """
        if fill is None:
            fill = self.sentinel()
        out = np.full((self.size, self.size), int(fill), dtype=ERROR_DTYPE)
        rows = np.repeat(np.arange(self.size), self.top_k)
        out[rows, self.indices.ravel()] = self.costs.ravel()
        return out

    @classmethod
    def from_dense(
        cls,
        matrix: ErrorMatrix,
        top_k: int,
        *,
        metric_name: str = "sad",
        features_in: np.ndarray | None = None,
        features_tg: np.ndarray | None = None,
        meta: dict | None = None,
    ) -> "SparseErrorMatrix":
        """Keep each row's ``top_k`` cheapest positions of a dense matrix.

        Stable argsort, so ties keep ascending position order — the same
        tie-break the dense solvers see.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(
                f"from_dense needs a square matrix, got shape {matrix.shape}"
            )
        s = matrix.shape[0]
        if not 1 <= top_k <= s:
            raise ValidationError(f"top_k must be in 1..{s}, got {top_k}")
        order = np.argsort(matrix, axis=1, kind="stable")[:, :top_k]
        costs = np.take_along_axis(matrix, order, axis=1)
        return cls(
            indices=order.astype(np.int64),
            costs=costs,
            metric_name=metric_name,
            features_in=features_in,
            features_tg=features_tg,
            meta=dict(meta or {}),
        )

    # -- exact scoring beyond the shortlist ----------------------------
    def score_pairs(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Exact costs for arbitrary ``(u, v)`` pairs via stored features.

        Runs the metric's :meth:`~repro.cost.base.CostMetric.rowwise`
        kernel, so fallback edges and Eq. (2) totals use the same exact
        arithmetic as the dense matrix — never the sentinel fill.
        """
        if self.features_in is None or self.features_tg is None:
            raise ValidationError(
                "this SparseErrorMatrix carries no features; exact scoring "
                "outside the shortlist needs one built by sparse_error_matrix"
            )
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        metric = get_metric(self.metric_name)
        return metric.rowwise(self.features_in[rows], self.features_tg[cols])

    def exact_total(self, permutation: PermutationArray) -> int:
        """Paper Eq. (2) for ``p``, exact even off-shortlist."""
        perm = check_permutation(permutation, self.size)
        cols = np.arange(self.size, dtype=np.intp)
        return int(self.score_pairs(perm, cols).sum(dtype=np.int64))


def sparse_error_matrix(
    input_tiles: TileStack,
    target_tiles: TileStack,
    metric: str | CostMetric = "sad",
    *,
    top_k: int = DEFAULT_TOP_K,
    sketch: str = "mean",
    clusters: int = 0,
    probes: int = 2,
    seed: int | None = None,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    backend: str | ArrayBackend | None = None,
) -> SparseErrorMatrix:
    """Shortlisted Step-2 matrix: exact costs on a sketch-pruned pair set.

    Parameters
    ----------
    input_tiles, target_tiles:
        Tile stacks of identical shape ``(S, M, M[, 3])``.
    metric:
        Cost-metric registry name or instance (exact scorer).
    top_k:
        Candidate positions kept per input tile.  ``top_k >= S``
        short-circuits to the dense :func:`error_matrix` — bit-identical
        to the exact path, with every position listed per row.
    sketch:
        Sketch kind from :data:`repro.cost.sketch.SKETCH_KINDS` used for
        clustering and probing; never used for final costs.
    clusters:
        k-means cluster count over positions (0 = ``round(sqrt(S))``).
    probes:
        Minimum nearest clusters fine-ranked per input tile; the head
        widens automatically until it covers ``HEAD_FACTOR * top_k``
        candidates.
    seed:
        Seed for the k-means initialisation (fully deterministic per
        seed; ``None`` draws fresh entropy).
    chunk_budget, backend:
        As in :func:`error_matrix`; exact scoring runs on the same
        pluggable array backend.
    """
    check_tile_stacks(input_tiles, target_tiles)
    metric = get_metric(metric)
    if sketch not in SKETCH_KINDS:
        raise ValidationError(
            f"unknown sketch kind {sketch!r} (use one of {SKETCH_KINDS})"
        )
    if top_k < 1:
        raise ValidationError(f"top_k must be >= 1, got {top_k}")
    features_in = metric.prepare(np.asarray(input_tiles))
    features_tg = metric.prepare(np.asarray(target_tiles))
    s = features_in.shape[0]
    xb = get_backend(backend)
    base_meta = {
        "size": s,
        "sketch": sketch,
        "seed": seed,
        "backend": xb.name,
        "pairs_total": s * s,
    }

    if top_k >= s:
        # Complete case: compute the dense matrix through the exact
        # Step-2 builder so totals, assignments and renders are
        # bit-identical to a non-sparse run, then list every position.
        dense = error_matrix(
            input_tiles,
            target_tiles,
            metric,
            chunk_budget=chunk_budget,
            backend=xb,
        )
        return SparseErrorMatrix.from_dense(
            dense,
            s,
            metric_name=metric.name,
            features_in=features_in,
            features_tg=features_tg,
            meta={
                **base_meta,
                "top_k": s,
                "clusters": 0,
                "probes": 0,
                "pairs_evaluated": s * s,
                "complete": True,
            },
        )

    # Sketch both stacks in the metric's feature space.  PCA fits one
    # shared basis over the combined cloud so input and position sketches
    # live in the same coordinates.
    basis = (
        np.concatenate([features_in, features_tg], axis=0)
        if sketch == "pca"
        else None
    )
    sketch_in = sketch_features(features_in, sketch, basis_features=basis)
    sketch_tg = sketch_features(features_tg, sketch, basis_features=basis)

    orders, n_clusters = _preference_orders(
        sketch_in,
        sketch_tg,
        clusters=clusters,
        probes=probes,
        head_width=min(s, HEAD_FACTOR * top_k),
        seed=seed,
    )
    indices = _degree_capped_select(orders, top_k)

    # Exact-score exactly the selected pairs (S * top_k metric
    # evaluations) on the array backend, then order each row best-first.
    rows = np.repeat(np.arange(s, dtype=np.intp), top_k)
    flat_cols = indices.ravel().astype(np.intp)
    costs = _score_pairs_chunked(
        metric, xb, features_in, features_tg, rows, flat_cols, chunk_budget
    )
    costs = costs.reshape(s, top_k)
    best = np.argsort(costs, axis=1, kind="stable")
    return SparseErrorMatrix(
        indices=np.take_along_axis(indices, best, axis=1),
        costs=np.take_along_axis(costs, best, axis=1),
        metric_name=metric.name,
        features_in=features_in,
        features_tg=features_tg,
        meta={
            **base_meta,
            "top_k": top_k,
            "clusters": n_clusters,
            "probes": probes,
            "pairs_evaluated": s * top_k,
            "complete": False,
        },
    )


def _score_pairs_chunked(
    metric: CostMetric,
    xb: ArrayBackend,
    features_in: np.ndarray,
    features_tg: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    chunk_budget: int,
) -> np.ndarray:
    """Exact metric costs for a flat ``(rows, cols)`` pair list.

    Runs the metric's rowwise kernel in backend chunks sized by
    ``chunk_budget`` scalar elements.  The kernel is row-independent, so
    any chunk partition — including the stacked cross-job launches of
    :mod:`repro.cost.batch`, which index into concatenated feature
    stacks — produces bit-identical costs.
    """
    n = int(rows.shape[0])
    if xb.is_numpy:
        fin, ftg = features_in, features_tg
    else:
        fin, ftg = xb.asarray(features_in), xb.asarray(features_tg)
    costs = np.empty(n, dtype=ERROR_DTYPE)
    step = max(1, int(chunk_budget // max(1, features_in.shape[1])))
    for start in range(0, n, step):
        stop = min(start + step, n)
        r = rows[start:stop]
        c = cols[start:stop]
        if not xb.is_numpy:
            r, c = xb.asarray(r), xb.asarray(c)
        costs[start:stop] = np.asarray(
            xb.to_numpy(metric.rowwise(fin[r], ftg[c]))
        )
    return costs


def _sq_dist_rows(point: np.ndarray, others: np.ndarray) -> np.ndarray:
    """Squared sketch distances from one point to a stack (deterministic:
    explicit broadcast, no BLAS reductions)."""
    diff = others - point[None, :]
    return np.einsum("nf,nf->n", diff, diff)


def _position_clusters(
    sketch_tg: np.ndarray, clusters: int, seed: int | None
) -> tuple[np.ndarray, list[np.ndarray], int]:
    """Seeded k-means over the position sketches: ``(centroids, members,
    n_clusters)``.

    Split out of :func:`_preference_orders` so the batched builder
    (:mod:`repro.cost.batch`) can cluster a shared target grid once per
    batch — the clustering is a pure function of ``(sketch_tg, clusters,
    seed)``, so reusing it across jobs with matching fingerprints is
    bit-identical to clustering per job.
    """
    from repro.library.shortlist import kmeans

    s = sketch_tg.shape[0]
    if clusters == 0:
        clusters = max(1, int(round(s**0.5)))
    clusters = min(clusters, s)
    centroids, labels = kmeans(sketch_tg, clusters, seed=seed)
    members = [np.flatnonzero(labels == c) for c in range(clusters)]
    return centroids, members, clusters


def _preference_orders(
    sketch_in: np.ndarray,
    sketch_tg: np.ndarray,
    *,
    clusters: int,
    probes: int,
    head_width: int,
    seed: int | None,
    clustering: tuple[np.ndarray, list[np.ndarray], int] | None = None,
) -> tuple[np.ndarray, int]:
    """Per-input-tile full preference order over all positions.

    Positions are clustered (seeded k-means over their sketches); each
    input tile ranks the nearest clusters' members — at least ``probes``
    clusters, widened until ``head_width`` candidates are covered — by
    true sketch distance, and the remaining clusters coarsely, in
    centroid-distance order with members distance-ranked within each
    cluster.  Full-width orders are what lets the degree-capped
    selection always find ``top_k`` free positions per row; the cluster
    structure keeps the fine ranking effort concentrated near the head.
    All ties break on ascending position, so the order is a pure
    function of the sketches and the k-means seed.  ``clustering``, when
    given, must be a :func:`_position_clusters` result for the same
    ``(sketch_tg, clusters, seed)`` — the batched builder passes one
    shared clustering per target grid.
    """
    s = sketch_tg.shape[0]
    if clustering is None:
        clustering = _position_clusters(sketch_tg, clusters, seed)
    centroids, members, clusters = clustering
    probes = max(1, min(probes, clusters))
    orders = np.empty((s, s), dtype=np.int64)
    for u in range(s):
        cluster_rank = np.argsort(
            _sq_dist_rows(sketch_in[u], centroids), kind="stable"
        )
        head_count = 0
        covered = 0
        for rank, c in enumerate(cluster_rank):
            covered += members[c].size
            head_count = rank + 1
            if head_count >= probes and covered >= head_width:
                break
        parts = []
        head = np.concatenate([members[c] for c in cluster_rank[:head_count]])
        dist = _sq_dist_rows(sketch_in[u], sketch_tg[head])
        parts.append(head[np.lexsort((head, dist))])
        for c in cluster_rank[head_count:]:
            m = members[c]
            dist = _sq_dist_rows(sketch_in[u], sketch_tg[m])
            parts.append(m[np.lexsort((m, dist))])
        orders[u] = np.concatenate(parts)
    return orders, clusters


def _degree_capped_select(orders: np.ndarray, top_k: int) -> np.ndarray:
    """Pick ``top_k`` positions per row with column degree capped at
    ``top_k``.

    Round-robin by preference rank: each still-unsatisfied row advances
    one rank per round and claims the position if its cap allows.  The
    cap makes the selected bipartite graph (near-)``top_k``-regular —
    every position shortlisted for roughly ``top_k`` tiles — which is
    what keeps the downstream assignment feasible without sentinel
    fallbacks.  Rows that exhaust their order (possible only under heavy
    contention) fill remaining slots cap-free from their best unused
    positions, preserving the exactly-``top_k``-unique-per-row invariant.
    """
    s = orders.shape[0]
    degree = np.zeros(s, dtype=np.int64)
    counts = np.zeros(s, dtype=np.int64)
    selected = np.full((s, top_k), -1, dtype=np.int64)
    ptr = np.zeros(s, dtype=np.int64)
    # Vectorised round resolution.  The reference semantics (pinned by
    # the differential and Hypothesis suites) process active rows in
    # ascending order within each round, granting a claim on position
    # ``v`` while ``degree[v] < top_k``.  Within one round each row
    # claims exactly one position, so the sequential outcome is: the
    # first ``top_k - degree[v]`` claimants of ``v`` (in row order) win.
    # A stable argsort on the claimed positions groups claimants while
    # preserving row order, and a per-group rank against the remaining
    # capacity reproduces that outcome without the per-row Python loop.
    active = np.arange(s, dtype=np.int64)
    while active.size:
        wants = orders[active, ptr[active]]
        ptr[active] += 1
        by_position = np.argsort(wants, kind="stable")
        sorted_wants = wants[by_position]
        new_group = np.empty(active.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_wants[1:] != sorted_wants[:-1]
        positions_in_round = np.arange(active.size, dtype=np.int64)
        group_start = np.maximum.accumulate(
            np.where(new_group, positions_in_round, 0)
        )
        rank_in_group = positions_in_round - group_start
        granted = np.empty(active.size, dtype=bool)
        granted[by_position] = rank_in_group < top_k - degree[sorted_wants]
        winners = active[granted]
        won = wants[granted]
        selected[winners, counts[winners]] = won
        counts[winners] += 1
        np.add.at(degree, won, 1)
        active = active[(counts[active] < top_k) & (ptr[active] < s)]
    for u in np.flatnonzero(counts < top_k):
        used = set(selected[u, : counts[u]].tolist())
        for v in orders[u]:
            if int(v) not in used:
                selected[u, counts[u]] = v
                counts[u] += 1
                used.add(int(v))
                if counts[u] == top_k:
                    break
    return selected
