"""Error-matrix computation — Step 2 of the paper's pipeline.

:func:`error_matrix` builds the dense ``S x S`` matrix
``E[u, v] = E(I_u, T_v)`` by chunking input tiles so the broadcast
intermediate never exceeds a memory budget (the guides' cache/memory
rules: bound the working set, keep accesses contiguous).

:func:`total_error` / :func:`total_error_of_permutation` evaluate the
paper's Eq. (2) for a given rearrangement.
"""

from __future__ import annotations

import numpy as np

from repro.accel.backend import ArrayBackend, get_backend
from repro.cost.base import CostMetric, get_metric
from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, ErrorMatrix, PermutationArray, TileStack
from repro.utils.arrays import cached_positions
from repro.utils.validation import check_error_matrix, check_permutation

__all__ = [
    "check_tile_stacks",
    "error_matrix",
    "total_error",
    "total_error_of_permutation",
]

#: Default cap on the broadcast intermediate, in scalar elements.  64 Mi
#: int16 elements is ~128 MiB — large enough to keep BLAS-free kernels busy,
#: small enough for laptop-class machines.
DEFAULT_CHUNK_BUDGET = 64 * 1024 * 1024


def check_tile_stacks(input_tiles: TileStack, target_tiles: TileStack) -> None:
    """Validate a matched pair of tile stacks (shared by dense and sparse
    Step-2 builders)."""
    input_tiles = np.asarray(input_tiles)
    target_tiles = np.asarray(target_tiles)
    if input_tiles.shape != target_tiles.shape:
        raise ValidationError(
            f"input and target tile stacks differ: {input_tiles.shape} vs "
            f"{target_tiles.shape}"
        )
    if input_tiles.ndim not in (3, 4) or input_tiles.shape[0] == 0:
        raise ValidationError(f"bad tile stack shape {input_tiles.shape}")


def error_matrix(
    input_tiles: TileStack,
    target_tiles: TileStack,
    metric: str | CostMetric = "sad",
    *,
    chunk_budget: int = DEFAULT_CHUNK_BUDGET,
    backend: str | ArrayBackend | None = None,
) -> ErrorMatrix:
    """Dense error matrix ``E[u, v] = metric(I_u, T_v)``.

    Parameters
    ----------
    input_tiles, target_tiles:
        Tile stacks of identical shape ``(S, M, M[, 3])``.
    metric:
        Registry name (``"sad"``, ``"ssd"``, ``"luminance"``, ``"color"``)
        or a :class:`CostMetric` instance.
    chunk_budget:
        Maximum number of scalar elements in the broadcast intermediate;
        the input-tile axis is chunked to respect it.
    backend:
        Array backend for the pairwise kernel (``None``/``"numpy"``,
        ``"cupy"``, ``"auto"`` — see :mod:`repro.accel.backend`).  The
        metric's NumPy-API kernel runs on the backend's arrays via
        NEP-18 dispatch; the result always comes back as a host array so
        downstream consumers are backend-agnostic.
    """
    check_tile_stacks(input_tiles, target_tiles)
    metric = get_metric(metric)
    xb = get_backend(backend)
    features_in = metric.prepare(np.asarray(input_tiles))
    features_tg = metric.prepare(np.asarray(target_tiles))
    s, f = features_in.shape
    if chunk_budget <= 0:
        raise ValidationError(f"chunk_budget must be positive, got {chunk_budget}")
    if not xb.is_numpy:
        features_in = xb.asarray(features_in)
        features_tg = xb.asarray(features_tg)
    rows_per_chunk = max(1, int(chunk_budget // max(1, s * f)))
    out = xb.xp.empty((s, s), dtype=ERROR_DTYPE)
    for start in range(0, s, rows_per_chunk):
        stop = min(start + rows_per_chunk, s)
        out[start:stop] = metric.pairwise(features_in[start:stop], features_tg)
    return np.asarray(xb.to_numpy(out), dtype=ERROR_DTYPE)


def total_error(matrix: ErrorMatrix, permutation: PermutationArray) -> int:
    """Paper Eq. (2): ``sum_v E[p[v], v]`` for rearrangement ``p``."""
    matrix = check_error_matrix(matrix)
    perm = check_permutation(permutation, matrix.shape[0])
    return int(matrix[perm, cached_positions(matrix.shape[0])].sum())


def total_error_of_permutation(
    input_tiles: TileStack,
    target_tiles: TileStack,
    permutation: PermutationArray,
    metric: str | CostMetric = "sad",
) -> int:
    """Eq. (2) evaluated directly from tiles (no precomputed matrix).

    O(S * M^2) — used to cross-check the matrix-based total in tests and to
    score single rearrangements without paying for the full ``S x S``
    matrix.  Per-row reduced distances come straight from the metric's
    :meth:`~repro.cost.base.CostMetric.rowwise` kernel (the old
    implementation materialised ``slab x slab`` pairwise blocks and took
    their trace — ``O(slab^2 * F)`` work for an ``O(slab * F)`` answer).
    """
    check_tile_stacks(input_tiles, target_tiles)
    metric = get_metric(metric)
    perm = check_permutation(permutation, np.asarray(input_tiles).shape[0])
    features_in = metric.prepare(np.asarray(input_tiles))[perm]
    features_tg = metric.prepare(np.asarray(target_tiles))
    total = 0
    # Slabs only bound the widened-dtype intermediates, not the work.
    slab = 4096
    for start in range(0, features_in.shape[0], slab):
        stop = min(start + slab, features_in.shape[0])
        rows = metric.rowwise(features_in[start:stop], features_tg[start:stop])
        total += int(rows.sum(dtype=np.int64))
    return total
