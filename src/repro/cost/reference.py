"""Pure-Python reference implementations — the "serial CPU" model.

The paper's Table II compares a single-threaded scalar CPU loop against the
GPU.  These functions are that scalar baseline: nested Python loops over
tiles and pixels, no NumPy vectorisation in the inner loop.  They are used

* as the ground truth the vectorised/GPU-simulated kernels are tested
  against, and
* as the measured "CPU" column of the Table II/IV reproductions.

Intentionally slow — never call them on full-size workloads outside the
benchmark harness.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, ErrorMatrix, TileStack

__all__ = ["tile_error_reference", "error_matrix_reference"]


def tile_error_reference(tile_a: np.ndarray, tile_b: np.ndarray) -> int:
    """Paper Eq. (1) with explicit per-pixel Python loops (SAD)."""
    tile_a = np.asarray(tile_a)
    tile_b = np.asarray(tile_b)
    if tile_a.shape != tile_b.shape:
        raise ValidationError(f"tile shapes differ: {tile_a.shape} vs {tile_b.shape}")
    flat_a = tile_a.reshape(-1).tolist()
    flat_b = tile_b.reshape(-1).tolist()
    total = 0
    for pa, pb in zip(flat_a, flat_b):
        diff = pa - pb
        total += diff if diff >= 0 else -diff
    return total


def error_matrix_reference(input_tiles: TileStack, target_tiles: TileStack) -> ErrorMatrix:
    """Step 2 as a scalar triple loop: tiles x tiles x pixels (SAD).

    O(S^2 M^2) scalar operations, mirroring the paper's sequential CPU
    implementation one-to-one.
    """
    input_tiles = np.asarray(input_tiles)
    target_tiles = np.asarray(target_tiles)
    if input_tiles.shape != target_tiles.shape:
        raise ValidationError(
            f"tile stacks differ: {input_tiles.shape} vs {target_tiles.shape}"
        )
    s = input_tiles.shape[0]
    # Pre-flatten to Python lists once; the measured loop is the pairwise part.
    flat_in = [tile.reshape(-1).tolist() for tile in input_tiles]
    flat_tg = [tile.reshape(-1).tolist() for tile in target_tiles]
    out = np.zeros((s, s), dtype=ERROR_DTYPE)
    for u in range(s):
        row_u = flat_in[u]
        for v in range(s):
            row_v = flat_tg[v]
            total = 0
            for pa, pb in zip(row_u, row_v):
                diff = pa - pb
                total += diff if diff >= 0 else -diff
            out[u, v] = total
    return out
