"""Multiprocess error-matrix computation (host-side parallel Step 2).

The paper accelerates Step 2 on a GPU; on a multicore host the same
row-block decomposition parallelises across processes: each worker
computes a contiguous slab of error-matrix rows from the shared feature
arrays.  Workers receive the feature matrices once (fork/pickle) and
return ``(start, block)`` pairs that the parent scatters into the result —
the same owner-computes pattern as an ``mpi4py`` row-partitioned
matrix-matrix kernel.

For small S the process spin-up dominates (exactly like the paper's GPU
losing at S=16^2), so :func:`error_matrix_parallel` falls back to the
serial vectorised path below a work threshold.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.accel.shm import (
    SharedArrayHandle,
    SharedArrayPlane,
    attach_shared_array,
    shared_memory_available,
)
from repro.cost.base import CostMetric, get_metric
from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, ErrorMatrix, TileStack

__all__ = ["error_matrix_parallel"]

# Below this many feature-element multiplications the pool costs more than
# it saves; measured on laptop-class hardware, intentionally conservative.
_MIN_PARALLEL_WORK = 64 * 1024 * 1024

# Worker state installed once per process by the pool initialiser, so the
# (potentially large) feature matrices are not re-pickled per task.
_WORKER_STATE: dict[str, object] = {}


def _materialize(features) -> np.ndarray:
    """Worker-side rehydration: a shared-memory handle becomes a view."""
    if isinstance(features, SharedArrayHandle):
        return attach_shared_array(features)
    return features


def _init_worker(metric_name: str, features_in, features_tg) -> None:
    _WORKER_STATE["metric"] = get_metric(metric_name)
    _WORKER_STATE["features_in"] = _materialize(features_in)
    _WORKER_STATE["features_tg"] = _materialize(features_tg)


def _compute_slab(bounds: tuple[int, int]) -> tuple[int, np.ndarray]:
    start, stop = bounds
    metric: CostMetric = _WORKER_STATE["metric"]  # type: ignore[assignment]
    features_in: np.ndarray = _WORKER_STATE["features_in"]  # type: ignore[assignment]
    features_tg: np.ndarray = _WORKER_STATE["features_tg"]  # type: ignore[assignment]
    return start, metric.pairwise(features_in[start:stop], features_tg)


def error_matrix_parallel(
    input_tiles: TileStack,
    target_tiles: TileStack,
    metric: str = "sad",
    *,
    workers: int | None = None,
    force: bool = False,
    share_memory: bool | None = None,
) -> ErrorMatrix:
    """Compute the error matrix with a process pool over row slabs.

    Bit-identical to :func:`repro.cost.matrix.error_matrix`.  ``workers``
    defaults to the CPU count; ``force`` skips the small-problem fallback
    (useful for tests).  Only registry-named metrics are supported — the
    name, not the instance, crosses the process boundary.

    ``share_memory`` selects the zero-copy data plane: the feature
    matrices are published once into :mod:`multiprocessing.shared_memory`
    and workers rehydrate ~100-byte handles instead of receiving pickled
    copies (which spawn-based start methods ship per worker).  Defaults
    to on wherever shared memory exists; the segments are unlinked in a
    ``finally`` (and by the :mod:`repro.accel.shm` atexit guard if the
    parent dies first).
    """
    input_tiles = np.asarray(input_tiles)
    target_tiles = np.asarray(target_tiles)
    if input_tiles.shape != target_tiles.shape:
        raise ValidationError(
            f"tile stacks differ: {input_tiles.shape} vs {target_tiles.shape}"
        )
    if not isinstance(metric, str):
        raise ValidationError("error_matrix_parallel needs a metric registry name")
    metric_obj = get_metric(metric)
    features_in = metric_obj.prepare(input_tiles)
    features_tg = metric_obj.prepare(target_tiles)
    s, f = features_in.shape
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    work = s * s * f
    if (work < _MIN_PARALLEL_WORK and not force) or workers == 1 or s == 1:
        from repro.cost.matrix import error_matrix

        return error_matrix(input_tiles, target_tiles, metric_obj)
    workers = min(workers, s)
    bounds = []
    slab = (s + workers - 1) // workers
    for start in range(0, s, slab):
        bounds.append((start, min(start + slab, s)))
    out = np.empty((s, s), dtype=ERROR_DTYPE)
    if share_memory is None:
        share_memory = shared_memory_available()
    plane: SharedArrayPlane | None = None
    ship_in, ship_tg = features_in, features_tg
    if share_memory and shared_memory_available():
        try:
            plane = SharedArrayPlane()
            ship_in = plane.publish("features-in", features_in)
            ship_tg = plane.publish("features-tg", features_tg)
        except OSError:  # /dev/shm full or forbidden: fall back to pickling
            if plane is not None:
                plane.close()
            plane = None
            ship_in, ship_tg = features_in, features_tg
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(metric, ship_in, ship_tg),
        ) as pool:
            for start, block in pool.map(_compute_slab, bounds):
                out[start : start + block.shape[0]] = block
    finally:
        if plane is not None:
            plane.close()
    return out
