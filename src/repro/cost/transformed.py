"""Orientation-minimised error matrices (transform-aware Step 2).

With dihedral transforms enabled, the effective pairing error is

``E*(u, v) = min_k E(T_k(I_u), T_v)``   over the 8 orientations ``k``,

and reassembly needs the argmin orientation.  :func:`transformed_error_matrix`
computes both: it evaluates the standard (vectorised, chunked) error matrix
once per orientation of the input stack and folds a running minimum — 8x
the Step-2 work, same memory profile.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostMetric, get_metric
from repro.cost.matrix import error_matrix
from repro.exceptions import ValidationError
from repro.tiles.transforms import TRANSFORM_COUNT, all_orientations
from repro.types import ErrorMatrix, TileStack

__all__ = ["transformed_error_matrix"]


def transformed_error_matrix(
    input_tiles: TileStack,
    target_tiles: TileStack,
    metric: str | CostMetric = "sad",
) -> tuple[ErrorMatrix, np.ndarray]:
    """Error matrix minimised over input-tile orientations.

    Returns ``(matrix, orientations)`` where ``orientations[u, v]`` is the
    code (0..7) achieving ``matrix[u, v]``.  Ties resolve to the smallest
    code, so orientation 0 (no transform) wins whenever it is as good —
    keeping outputs maximally faithful to the untransformed input.
    """
    input_tiles = np.asarray(input_tiles)
    target_tiles = np.asarray(target_tiles)
    if input_tiles.shape != target_tiles.shape:
        raise ValidationError(
            f"tile stacks differ: {input_tiles.shape} vs {target_tiles.shape}"
        )
    metric = get_metric(metric)
    variants = all_orientations(input_tiles)
    best = error_matrix(variants[0], target_tiles, metric)
    codes = np.zeros_like(best, dtype=np.int8)
    for code in range(1, TRANSFORM_COUNT):
        candidate = error_matrix(variants[code], target_tiles, metric)
        better = candidate < best
        best = np.where(better, candidate, best)
        codes = np.where(better, np.int8(code), codes)
    return best, codes
