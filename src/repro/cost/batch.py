"""Cross-job batched Step-2 kernels — one launch for many concurrent jobs.

The paper fuses Step 2 into wide GPU launches *within* one mosaic; the
service has a batching dimension the paper never had — **concurrent
requests**.  Jobs whose ``(grid, metric, backend, shortlist knobs)``
fingerprints match can have their error-matrix work coalesced:

* **shared feature preparation** — :meth:`CostMetric.prepare` (and the
  sparse path's sketches and k-means position clustering) run once per
  *unique tile stack* per batch, not once per job.  Concurrent requests
  against a common target grid stop re-preparing the same features;
* **stacked launches** — the pairwise (dense) and rowwise (sparse
  scoring) kernels run over the concatenated rows of every job in the
  batch.  One launch per unique target stack replaces one launch per
  job, and the dense kernel sweeps cache-sized row chunks with a single
  scratch buffer reused across the whole batch
  (:meth:`CostMetric.pairwise_into`).

Per-job results are sliced back out **bit-identically** to the solo
:func:`~repro.cost.matrix.error_matrix` /
:func:`~repro.cost.sparse.sparse_error_matrix` paths: every kernel
involved is row-independent (SAD sums int16 absolute differences per
row; SSD's float64 arithmetic is exact for uint8 inputs), so stacking
rows across jobs cannot change any value.  The differential suite in
``tests/cost/test_batch.py`` pins this end to end.

The service-level consumers live in :mod:`repro.service.batching` (the
micro-batching rendezvous) and :mod:`repro.service.tiering` (the
backend-tiering scheduler); this module is pure computation and knows
nothing about jobs or queues.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.accel.backend import ArrayBackend, get_backend
from repro.cost.base import CostMetric, get_metric
from repro.cost.matrix import DEFAULT_CHUNK_BUDGET, check_tile_stacks
from repro.cost.sketch import SKETCH_KINDS, sketch_features
from repro.cost.sparse import (
    HEAD_FACTOR,
    SparseErrorMatrix,
    _degree_capped_select,
    _position_clusters,
    _preference_orders,
    _score_pairs_chunked,
)
from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, ErrorMatrix, TileStack

__all__ = [
    "BatchJob",
    "BatchedErrorMatrixBuilder",
    "BATCH_CHUNK_BUDGET",
    "batch_fingerprint",
]

#: Cap on the dense kernel's broadcast intermediate per chunk, in scalar
#: elements.  Unlike the solo path's :data:`DEFAULT_CHUNK_BUDGET` (sized
#: to amortise per-call overhead across one big chunk), the batched
#: launch reuses one scratch buffer for every chunk of every job, so the
#: sweet spot is a chunk that stays cache-resident: 1 Mi int16 elements
#: is ~2 MiB — L2-class on current hardware.  At S=1024, F=64 this is 16
#: input rows per chunk, which measures ~3x faster than one-job-per-
#: launch chunking (see ``benchmarks/bench_batched_step2.py``).
BATCH_CHUNK_BUDGET = 1024 * 1024


def batch_fingerprint(
    *,
    grid_tiles: int,
    tile_shape: tuple[int, ...],
    metric: str,
    backend: str,
    top_k: int = 0,
    sketch: str = "mean",
    clusters: int = 0,
    probes: int = 2,
) -> str:
    """Coalescing key: jobs with equal fingerprints may share one launch.

    Covers everything that shapes the Step-2 computation — grid size
    ``S``, the tile shape, the metric, the array backend, and the sparse
    shortlist knobs.  Deliberately excludes image content and seeds:
    jobs with different inputs/targets/seeds still batch (unique stacks
    are prepared once and k-means runs per distinct ``(target, seed)``),
    they just share less.
    """
    parts = [
        f"s={grid_tiles}",
        f"tile={'x'.join(str(d) for d in tile_shape)}",
        f"metric={metric}",
        f"backend={backend}",
    ]
    if top_k > 0:
        parts.append(f"topk={top_k}")
        parts.append(f"sketch={sketch}")
        parts.append(f"clusters={clusters}")
        parts.append(f"probes={probes}")
    else:
        parts.append("dense")
    return "|".join(parts)


@dataclass(frozen=True)
class BatchJob:
    """One job's Step-2 inputs inside a batch.

    ``top_k == 0`` requests the dense matrix; ``top_k > 0`` the sparse
    shortlist with the same knob semantics as
    :func:`~repro.cost.sparse.sparse_error_matrix`.  ``tag`` is an
    opaque caller label (the service uses job IDs) carried through to
    diagnostics.
    """

    input_tiles: TileStack
    target_tiles: TileStack
    top_k: int = 0
    sketch: str = "mean"
    clusters: int = 0
    probes: int = 2
    seed: int | None = None
    tag: str | None = None


def _stack_key(tiles: np.ndarray) -> str:
    """Content fingerprint of a tile stack (shared-feature reuse key)."""
    tiles = np.ascontiguousarray(tiles)
    digest = hashlib.sha256()
    digest.update(str(tiles.shape).encode())
    digest.update(str(tiles.dtype).encode())
    digest.update(tiles.tobytes())
    return digest.hexdigest()[:16]


@dataclass
class BatchStats:
    """Diagnostics of the last builder call (shared-work accounting)."""

    jobs: int = 0
    launches: int = 0
    prepare_calls: int = 0
    unique_input_stacks: int = 0
    unique_target_stacks: int = 0
    sketch_calls: int = 0
    kmeans_calls: int = 0
    pairs_evaluated: int = 0

    def as_dict(self) -> dict:
        return {k: int(v) for k, v in self.__dict__.items()}


class BatchedErrorMatrixBuilder:
    """Coalesce the Step-2 work of same-fingerprint jobs into one launch.

    Parameters
    ----------
    metric:
        Cost-metric registry name or instance, shared by every job in a
        batch (the fingerprint guarantees this at the service level).
    backend:
        Array backend for the stacked kernels, as in
        :func:`~repro.cost.matrix.error_matrix`.
    chunk_budget:
        Scalar-element cap for the sparse scoring chunks (solo
        semantics, shared with :func:`sparse_error_matrix`).
    batch_chunk_budget:
        Scalar-element cap for the dense kernel's broadcast
        intermediate; see :data:`BATCH_CHUNK_BUDGET`.

    The builder is stateless between calls except for
    :attr:`last_stats`, so one instance may serve many batches.
    """

    def __init__(
        self,
        metric: str | CostMetric = "sad",
        *,
        backend: str | ArrayBackend | None = None,
        chunk_budget: int = DEFAULT_CHUNK_BUDGET,
        batch_chunk_budget: int = BATCH_CHUNK_BUDGET,
    ) -> None:
        if chunk_budget <= 0 or batch_chunk_budget <= 0:
            raise ValidationError("chunk budgets must be positive")
        self.metric = get_metric(metric)
        self.backend = get_backend(backend)
        self.chunk_budget = chunk_budget
        self.batch_chunk_budget = batch_chunk_budget
        self.last_stats = BatchStats()

    # -- shared feature preparation ------------------------------------
    def _prepare_unique(
        self, jobs: Sequence[BatchJob]
    ) -> tuple[list[str], list[str], dict[str, np.ndarray]]:
        """Run ``metric.prepare`` once per unique tile stack.

        Returns per-job input/target stack keys plus the shared
        ``key -> (S, F) features`` table (host arrays; the kernels move
        them to the backend per launch).
        """
        features: dict[str, np.ndarray] = {}
        input_keys: list[str] = []
        target_keys: list[str] = []
        prepare_calls = 0
        for job in jobs:
            check_tile_stacks(job.input_tiles, job.target_tiles)
            for tiles, keys in (
                (job.input_tiles, input_keys),
                (job.target_tiles, target_keys),
            ):
                key = _stack_key(np.asarray(tiles))
                if key not in features:
                    features[key] = self.metric.prepare(np.asarray(tiles))
                    prepare_calls += 1
                keys.append(key)
        shapes = {features[k].shape for k in input_keys + target_keys}
        if len(shapes) > 1:
            raise ValidationError(
                f"batched jobs must share one grid; got feature shapes {shapes}"
            )
        self.last_stats.prepare_calls = prepare_calls
        self.last_stats.unique_input_stacks = len(set(input_keys))
        self.last_stats.unique_target_stacks = len(set(target_keys))
        return input_keys, target_keys, features

    # -- dense ---------------------------------------------------------
    def compute_dense(self, jobs: Sequence[BatchJob]) -> list[ErrorMatrix]:
        """Dense ``S x S`` matrices for every job, batched per target.

        Jobs sharing a target stack are stacked along the input-row axis
        and swept in one chunked launch; the per-job matrices are the
        row slices of that launch.  Bit-identical to calling
        :func:`~repro.cost.matrix.error_matrix` per job.
        """
        if not jobs:
            return []
        self.last_stats = BatchStats(jobs=len(jobs))
        input_keys, target_keys, features = self._prepare_unique(jobs)
        xb = self.backend
        results: list[ErrorMatrix | None] = [None] * len(jobs)
        by_target: dict[str, list[int]] = {}
        for index, key in enumerate(target_keys):
            by_target.setdefault(key, []).append(index)
        pairs = 0
        for target_key, members in by_target.items():
            ftg = features[target_key]
            s, f = ftg.shape
            fin = np.concatenate(
                [features[input_keys[i]] for i in members], axis=0
            )
            if not xb.is_numpy:
                fin, ftg = xb.asarray(fin), xb.asarray(ftg)
            out = xb.xp.empty((fin.shape[0], s), dtype=ERROR_DTYPE)
            # Cache-resident chunks only pay off for metrics with a real
            # scratch-reuse kernel (SAD's in-place broadcast).  Metrics
            # whose pairwise_into just delegates to pairwise (SSD's BLAS
            # form) lose ~2x when the underlying matmul is fragmented
            # into 16-row slivers, so they keep the solo path's wide
            # budget; values are identical either way (row-independent
            # kernels — see the module docstring).
            scratch_kernel = (
                type(self.metric).pairwise_into is not CostMetric.pairwise_into
            )
            budget = (
                self.batch_chunk_budget if scratch_kernel else self.chunk_budget
            )
            rows_per_chunk = max(1, int(budget // max(1, s * f)))
            scratch = None
            for start in range(0, fin.shape[0], rows_per_chunk):
                stop = min(start + rows_per_chunk, fin.shape[0])
                scratch = self.metric.pairwise_into(
                    fin[start:stop], ftg, out[start:stop], scratch
                )
            host = np.asarray(xb.to_numpy(out), dtype=ERROR_DTYPE)
            for slot, index in enumerate(members):
                results[index] = host[slot * s : (slot + 1) * s].copy()
            pairs += fin.shape[0] * s
            self.last_stats.launches += 1
        self.last_stats.pairs_evaluated = pairs
        return results  # type: ignore[return-value]

    # -- sparse --------------------------------------------------------
    def compute_sparse(
        self, jobs: Sequence[BatchJob]
    ) -> list[SparseErrorMatrix]:
        """Shortlisted matrices for every job, with one stacked scoring
        launch.

        Shared across the batch: feature preparation (per unique stack),
        sketches (per unique ``(stack, kind, basis)``) and the k-means
        position clustering (per unique ``(target stack, sketch,
        clusters, seed)``).  Per job: preference orders and the
        degree-capped selection (they depend on the job's input tiles).
        The exact scoring of every job's ``S * top_k`` shortlisted pairs
        then runs as **one** chunked rowwise launch over the
        concatenated feature stacks.  Bit-identical to calling
        :func:`~repro.cost.sparse.sparse_error_matrix` per job.

        Jobs with ``top_k >= S`` take the batched dense path and list
        every position, exactly like the solo builder's delegation.
        """
        if not jobs:
            return []
        self.last_stats = BatchStats(jobs=len(jobs))
        for job in jobs:
            if job.top_k < 1:
                raise ValidationError(
                    f"compute_sparse needs top_k >= 1, got {job.top_k}"
                )
            if job.sketch not in SKETCH_KINDS:
                raise ValidationError(
                    f"unknown sketch kind {job.sketch!r} "
                    f"(use one of {SKETCH_KINDS})"
                )
        input_keys, target_keys, features = self._prepare_unique(jobs)
        stats = self.last_stats  # _prepare_unique filled the reuse fields
        xb = self.backend
        s = features[input_keys[0]].shape[0]

        complete = [i for i, job in enumerate(jobs) if job.top_k >= s]
        partial = [i for i, job in enumerate(jobs) if job.top_k < s]
        results: list[SparseErrorMatrix | None] = [None] * len(jobs)

        if complete:
            dense_builder = BatchedErrorMatrixBuilder(
                self.metric,
                backend=xb,
                chunk_budget=self.chunk_budget,
                batch_chunk_budget=self.batch_chunk_budget,
            )
            dense = dense_builder.compute_dense([jobs[i] for i in complete])
            stats.launches += dense_builder.last_stats.launches
            stats.pairs_evaluated += dense_builder.last_stats.pairs_evaluated
            for index, matrix in zip(complete, dense):
                job = jobs[index]
                results[index] = SparseErrorMatrix.from_dense(
                    matrix,
                    s,
                    metric_name=self.metric.name,
                    features_in=features[input_keys[index]],
                    features_tg=features[target_keys[index]],
                    meta=self._meta(job, s, xb, n_clusters=0, complete=True),
                )
        if not partial:
            return results  # type: ignore[return-value]

        # Sketches once per unique (stack, kind, basis); PCA fits its
        # basis over the job's combined cloud, so its reuse key includes
        # both stack keys — jobs sharing input AND target grids share the
        # PCA sketch, jobs sharing only one stack share mean/downsample
        # sketches (basis-free) but not PCA ones.
        sketch_cache: dict[tuple, np.ndarray] = {}

        def sketched(stack_key: str, index: int, basis_key: tuple) -> np.ndarray:
            job = jobs[index]
            key = (stack_key, job.sketch, basis_key)
            if key not in sketch_cache:
                basis = None
                if job.sketch == "pca":
                    basis = np.concatenate(
                        [
                            features[input_keys[index]],
                            features[target_keys[index]],
                        ],
                        axis=0,
                    )
                sketch_cache[key] = sketch_features(
                    features[stack_key], job.sketch, basis_features=basis
                )
                stats.sketch_calls += 1
            return sketch_cache[key]

        # K-means position clustering once per unique
        # (target, sketch, basis, clusters, seed) — pure function of those.
        cluster_cache: dict[tuple, tuple] = {}
        selected: dict[int, np.ndarray] = {}
        n_clusters_of: dict[int, int] = {}
        for index in partial:
            job = jobs[index]
            basis_key = (
                (input_keys[index], target_keys[index])
                if job.sketch == "pca"
                else ()
            )
            sketch_in = sketched(input_keys[index], index, basis_key)
            sketch_tg = sketched(target_keys[index], index, basis_key)
            cluster_key = (
                target_keys[index],
                job.sketch,
                basis_key,
                job.clusters,
                job.seed,
            )
            if cluster_key not in cluster_cache:
                cluster_cache[cluster_key] = _position_clusters(
                    sketch_tg, job.clusters, job.seed
                )
                stats.kmeans_calls += 1
            clustering = cluster_cache[cluster_key]
            orders, n_clusters = _preference_orders(
                sketch_in,
                sketch_tg,
                clusters=job.clusters,
                probes=job.probes,
                head_width=min(s, HEAD_FACTOR * job.top_k),
                seed=job.seed,
                clustering=clustering,
            )
            selected[index] = _degree_capped_select(orders, job.top_k)
            n_clusters_of[index] = n_clusters

        # One stacked scoring launch: concatenate the unique feature
        # stacks, offset every job's (row, col) pairs into the stacked
        # coordinates, and run the chunked rowwise kernel once.
        stack_order = sorted(features)
        offsets = {}
        running = 0
        for key in stack_order:
            offsets[key] = running
            running += features[key].shape[0]
        stacked = np.concatenate([features[k] for k in stack_order], axis=0)
        all_rows, all_cols, spans = [], [], []
        cursor = 0
        for index in partial:
            job = jobs[index]
            indices = selected[index]
            rows = (
                np.repeat(np.arange(s, dtype=np.intp), job.top_k)
                + offsets[input_keys[index]]
            )
            cols = (
                indices.ravel().astype(np.intp) + offsets[target_keys[index]]
            )
            all_rows.append(rows)
            all_cols.append(cols)
            spans.append((cursor, cursor + rows.size))
            cursor += rows.size
        costs_flat = _score_pairs_chunked(
            self.metric,
            xb,
            stacked,
            stacked,
            np.concatenate(all_rows),
            np.concatenate(all_cols),
            self.chunk_budget,
        )
        stats.launches += 1
        stats.pairs_evaluated += cursor

        for span, index in zip(spans, partial):
            job = jobs[index]
            indices = selected[index]
            costs = costs_flat[span[0] : span[1]].reshape(s, job.top_k)
            best = np.argsort(costs, axis=1, kind="stable")
            results[index] = SparseErrorMatrix(
                indices=np.take_along_axis(indices, best, axis=1),
                costs=np.take_along_axis(costs, best, axis=1),
                metric_name=self.metric.name,
                features_in=features[input_keys[index]],
                features_tg=features[target_keys[index]],
                meta=self._meta(
                    job, s, xb, n_clusters=n_clusters_of[index], complete=False
                ),
            )
        return results  # type: ignore[return-value]

    def _meta(
        self,
        job: BatchJob,
        s: int,
        xb: ArrayBackend,
        *,
        n_clusters: int,
        complete: bool,
    ) -> dict:
        """Per-job meta matching the solo builder's shape bit for bit."""
        top_k = s if complete else job.top_k
        return {
            "size": s,
            "sketch": job.sketch,
            "seed": job.seed,
            "backend": xb.name,
            "pairs_total": s * s,
            "top_k": top_k,
            "clusters": n_clusters,
            "probes": 0 if complete else job.probes,
            "pairs_evaluated": s * s if complete else s * job.top_k,
            "complete": complete,
        }
