"""Cost-metric abstraction.

A :class:`CostMetric` turns a stack of tiles into a feature matrix and
defines the pairwise error between feature rows.  Splitting the metric into
``prepare`` + ``pairwise`` lets the error-matrix builder (Step 2) vectorise
and chunk uniformly across metrics, and lets the GPU-simulated kernel reuse
the same features.

Metrics must be *integer-valued and non-negative* so the assignment solvers
and local search can rely on exact arithmetic (no float drift when the paper
compares sums of errors in Algorithm 1's swap test).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, TileStack

__all__ = ["CostMetric", "register_metric", "get_metric"]


class CostMetric(ABC):
    """Pairwise tile error, the paper's ``E(I_u, T_v)`` (Eq. 1)."""

    #: Registry key; subclasses override.
    name: str = "abstract"

    @abstractmethod
    def prepare(self, tiles: TileStack) -> np.ndarray:
        """Convert a ``(S, M, M[, 3])`` tile stack into ``(S, F)`` features."""

    @abstractmethod
    def pairwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        """Dense error block: ``out[i, j] = error(input_i, target_j)``.

        Shapes: ``input_features (A, F)``, ``target_features (B, F)`` ->
        ``(A, B)`` ``int64``.  Must be safe for arbitrary chunk sizes.
        """

    def rowwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        """Aligned per-row errors: ``out[i] = error(input_i, target_i)``.

        The diagonal of :meth:`pairwise` computed in ``O(rows * F)``
        instead of materialising an ``O(rows^2 * F)`` block — this is
        what Eq. (2) evaluation actually needs.  The base fallback calls
        :meth:`pairwise` one row at a time (correct for any metric);
        the built-in metrics override it with vectorised kernels.
        """
        rows = input_features.shape[0]
        out = np.empty(rows, dtype=ERROR_DTYPE)
        for i in range(rows):
            out[i] = self.pairwise(
                input_features[i : i + 1], target_features[i : i + 1]
            )[0, 0]
        return out

    def pairwise_into(
        self,
        input_features: np.ndarray,
        target_features: np.ndarray,
        out: np.ndarray,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Write the pairwise block into ``out``; may reuse ``scratch``.

        The batched Step-2 builder (:mod:`repro.cost.batch`) sweeps many
        small row chunks over one target stack and calls this per chunk,
        threading the returned scratch buffer through the loop so the
        broadcast intermediate is allocated once per launch instead of
        once per chunk.  The default just delegates to :meth:`pairwise`
        (no scratch); metrics whose kernel materialises a large
        intermediate (SAD) override it.  Must compute values identical
        to :meth:`pairwise` — the differential suites pin this.
        """
        out[...] = self.pairwise(input_features, target_features)
        return scratch

    def tile_error(self, tile_a: np.ndarray, tile_b: np.ndarray) -> int:
        """Error between two single tiles (convenience wrapper)."""
        tile_a = np.asarray(tile_a)
        tile_b = np.asarray(tile_b)
        if tile_a.shape != tile_b.shape:
            raise ValidationError(
                f"tile shapes differ: {tile_a.shape} vs {tile_b.shape}"
            )
        fa = self.prepare(tile_a[None])
        fb = self.prepare(tile_b[None])
        return int(self.pairwise(fa, fb)[0, 0])

    @staticmethod
    def _as_error(block: np.ndarray) -> np.ndarray:
        """Round/validate a pairwise block to the canonical error dtype."""
        if np.issubdtype(block.dtype, np.floating):
            block = np.rint(block)
        block = block.astype(ERROR_DTYPE, copy=False)
        if (block < 0).any():
            raise ValidationError("cost metric produced negative errors")
        return block


_REGISTRY: dict[str, type[CostMetric]] = {}


def register_metric(cls: type[CostMetric]) -> type[CostMetric]:
    """Class decorator: register a metric under its ``name``."""
    if not issubclass(cls, CostMetric):
        raise ValidationError(f"{cls!r} is not a CostMetric subclass")
    if cls.name in _REGISTRY:
        raise ValidationError(f"duplicate metric name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_metric(name: str | CostMetric, **kwargs: object) -> CostMetric:
    """Resolve a metric by registry name (or pass an instance through).

    >>> get_metric("sad").name
    'sad'
    """
    if isinstance(name, CostMetric):
        return name
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown cost metric {name!r} (available: {sorted(_REGISTRY)})"
        )
    return cls(**kwargs)  # type: ignore[call-arg]
