"""Sum-of-absolute-differences metric — the paper's Eq. (1).

``E(I_u, T_v) = sum_{i,j} |I_u[i,j] - T_v[i,j]|``.  Colour tiles flatten
their channels into the feature vector, which is exactly the "only change
the error function" colour extension the paper sketches in Section II.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostMetric, register_metric
from repro.types import TileStack

__all__ = ["SADMetric"]


@register_metric
class SADMetric(CostMetric):
    """Per-pixel L1 tile error (paper Eq. 1)."""

    name = "sad"

    def prepare(self, tiles: TileStack) -> np.ndarray:
        tiles = np.asarray(tiles)
        # int16 is the narrowest dtype whose subtraction cannot overflow for
        # uint8 pixels; halving feature width doubles effective cache reach
        # in the pairwise kernel (the guides' cache-effects rule).
        return tiles.reshape(tiles.shape[0], -1).astype(np.int16)

    def pairwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        diff = np.abs(input_features[:, None, :] - target_features[None, :, :])
        return self._as_error(diff.sum(axis=2, dtype=np.int64))

    def rowwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        diff = np.abs(input_features - target_features)
        return self._as_error(diff.sum(axis=1, dtype=np.int64))

    def pairwise_into(
        self,
        input_features: np.ndarray,
        target_features: np.ndarray,
        out: np.ndarray,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """Scratch-reusing SAD block: same arithmetic as :meth:`pairwise`.

        ``|a - b|`` summed along the feature axis, with the ``(rows, B,
        F)`` int16 intermediate written into ``scratch`` in place.  The
        batched builder keeps that intermediate small enough to stay
        cache-resident and hands the same buffer to every chunk, which
        is where the batched dense launch gets its throughput (the
        per-call allocation of a fresh broadcast block is what makes the
        one-launch-per-job path memory-bound).  Allocation goes through
        the ufunc itself so CuPy inputs produce CuPy scratch.
        """
        rows = input_features.shape[0]
        if (
            scratch is None
            or scratch.shape[0] < rows
            or scratch.shape[1:] != target_features.shape
        ):
            scratch = np.subtract(
                input_features[:, None, :], target_features[None, :, :]
            )
            block = scratch[:rows]
        else:
            block = scratch[:rows]
            np.subtract(
                input_features[:, None, :],
                target_features[None, :, :],
                out=block,
            )
        np.abs(block, out=block)
        np.sum(block, axis=2, dtype=np.int64, out=out)
        return scratch
