"""Gradient-aware cost metric (extension).

Plain SAD treats all pixels alike, so a rearrangement happily pays the
same for a mismatch in a flat sky as on an object contour — but human
viewers notice contour errors far more.  This metric appends Sobel
gradient-magnitude features to the intensity features:

``E(A, B) = SAD(A, B) + weight * SAD(|grad A|, |grad B|)``

with an integer ``weight`` so errors stay exact.  Gradients are computed
per *tile* (edge-replicated borders), so tiles remain independent and the
standard error-matrix machinery applies unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostMetric, register_metric
from repro.exceptions import ValidationError
from repro.imaging.filters import gradient_magnitude
from repro.types import TileStack

__all__ = ["GradientMetric"]


@register_metric
class GradientMetric(CostMetric):
    """Intensity SAD plus weighted gradient-magnitude SAD."""

    name = "gradient"

    def __init__(self, weight: int = 2) -> None:
        if not isinstance(weight, int) or weight < 0:
            raise ValidationError(f"weight must be a non-negative int, got {weight!r}")
        self.weight = weight

    def prepare(self, tiles: TileStack) -> np.ndarray:
        tiles = np.asarray(tiles)
        if tiles.ndim != 3:
            raise ValidationError(
                f"gradient metric needs gray (S, M, M) tiles, got {tiles.shape}"
            )
        s = tiles.shape[0]
        intensity = tiles.reshape(s, -1).astype(np.int16)
        if self.weight == 0:
            return intensity
        gradients = np.stack(
            [gradient_magnitude(tile, normalize=False) for tile in tiles]
        ).reshape(s, -1).astype(np.int16)
        return np.concatenate([intensity, gradients], axis=1)

    def pairwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        pixels = input_features.shape[1] if self.weight == 0 else input_features.shape[1] // 2
        diff = np.abs(
            input_features[:, None, :].astype(np.int64)
            - target_features[None, :, :].astype(np.int64)
        )
        intensity_part = diff[:, :, :pixels].sum(axis=2)
        if self.weight == 0:
            return self._as_error(intensity_part)
        gradient_part = diff[:, :, pixels:].sum(axis=2)
        return self._as_error(intensity_part + self.weight * gradient_part)

    def rowwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        pixels = input_features.shape[1] if self.weight == 0 else input_features.shape[1] // 2
        diff = np.abs(
            input_features.astype(np.int64) - target_features.astype(np.int64)
        )
        intensity_part = diff[:, :pixels].sum(axis=1)
        if self.weight == 0:
            return self._as_error(intensity_part)
        gradient_part = diff[:, pixels:].sum(axis=1)
        return self._as_error(intensity_part + self.weight * gradient_part)
