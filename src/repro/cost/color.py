"""Weighted per-channel colour metric.

The paper notes the method extends to colour "only by changing the error
function".  :class:`WeightedColorMetric` is that extension with perceptual
channel weights: SAD per channel, combined as
``w_r E_r + w_g E_g + w_b E_b`` with integer weights so errors stay exact.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostMetric, register_metric
from repro.exceptions import ValidationError
from repro.types import TileStack

__all__ = ["WeightedColorMetric"]


@register_metric
class WeightedColorMetric(CostMetric):
    """Channel-weighted SAD for RGB tiles.

    Default weights (3, 6, 1) approximate BT.601 luma proportions
    (0.299, 0.587, 0.114) with small integers.
    """

    name = "color"

    def __init__(self, weights: tuple[int, int, int] = (3, 6, 1)) -> None:
        if len(weights) != 3 or any(w < 0 for w in weights) or sum(weights) == 0:
            raise ValidationError(f"weights must be 3 non-negative ints, got {weights!r}")
        self.weights = tuple(int(w) for w in weights)

    def prepare(self, tiles: TileStack) -> np.ndarray:
        tiles = np.asarray(tiles)
        if tiles.ndim != 4 or tiles.shape[3] != 3:
            raise ValidationError(
                f"color metric needs (S, M, M, 3) tiles, got shape {tiles.shape}"
            )
        s = tiles.shape[0]
        # Features ordered channel-major so the weight vector broadcasts by
        # repetition: [R pixels..., G pixels..., B pixels...].
        per_channel = tiles.transpose(0, 3, 1, 2).reshape(s, 3, -1)
        return per_channel.reshape(s, -1).astype(np.int16)

    def pairwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        pixels = input_features.shape[1] // 3
        weight_vec = np.repeat(np.array(self.weights, dtype=np.int64), pixels)
        diff = np.abs(
            input_features[:, None, :].astype(np.int64)
            - target_features[None, :, :].astype(np.int64)
        )
        return self._as_error(diff @ weight_vec)

    def rowwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        pixels = input_features.shape[1] // 3
        weight_vec = np.repeat(np.array(self.weights, dtype=np.int64), pixels)
        diff = np.abs(
            input_features.astype(np.int64) - target_features.astype(np.int64)
        )
        return self._as_error(diff @ weight_vec)
