"""Low-dimensional tile sketches for shortlist pruning.

A *sketch* is a cheap summary of a metric's feature vector — a handful of
floats per tile instead of the full ``F = M*M[*3]`` features — used by the
sparse Step-2 builder (:mod:`repro.cost.sparse`) to shortlist candidate
positions *before* any exact metric evaluation, the "Tight Approximation
of Image Matching" direction from PAPERS.md.

Sketches are computed **from the metric's prepared features**, not from
raw pixels, so whatever normalisation/weighting a metric applies in
:meth:`~repro.cost.base.CostMetric.prepare` is reflected in the sketch
space too (a luminance metric shortlists in luminance space, a colour
metric in its weighted space).

Three kinds:

* ``"mean"`` — contiguous bucket means over the feature axis (for SAD/SSD
  these are row-band means of the tile);
* ``"pyramid"`` — bucket means at three resolutions (1, 4, 16 buckets)
  concatenated, a coarse-to-fine summary;
* ``"pca"`` — projection onto the top principal components of the
  *combined* feature cloud, computed with deterministic ``eigh`` and a
  sign convention so repeated runs agree.

``"mean"`` and ``"pyramid"`` are pure bucket arithmetic: bit-reproducible
across runs and invariant under permutation of the tile axis (row ``i``
of the sketch depends only on tile ``i``).  ``"pca"`` shares the
invariance only up to float rounding, since the covariance accumulation
order follows the tile order.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["SKETCH_KINDS", "sketch_features", "bucket_means"]

#: Registered sketch kinds (the ``MosaicConfig.sketch`` knob).
SKETCH_KINDS = ("mean", "pyramid", "pca")

#: Feature-axis buckets for the ``"mean"`` sketch.
DEFAULT_BUCKETS = 16

#: Output dimensionality of the ``"pca"`` sketch.
DEFAULT_PCA_DIMS = 8


def _check_features(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features)
    if features.ndim != 2 or features.shape[0] == 0 or features.shape[1] == 0:
        raise ValidationError(
            f"sketching needs a non-empty (S, F) feature matrix, got shape "
            f"{features.shape}"
        )
    return features.astype(np.float64, copy=False)


def bucket_means(features: np.ndarray, buckets: int) -> np.ndarray:
    """``(S, buckets)`` means over contiguous feature-axis buckets.

    Bucket boundaries follow :func:`numpy.array_split` semantics (the
    first ``F % buckets`` buckets get one extra element), so the split is
    a pure function of ``(F, buckets)`` and reproducible everywhere.
    """
    features = _check_features(features)
    f = features.shape[1]
    buckets = min(max(1, buckets), f)
    edges = np.linspace(0, f, buckets + 1).astype(np.intp)
    out = np.empty((features.shape[0], buckets), dtype=np.float64)
    for b in range(buckets):
        out[:, b] = features[:, edges[b] : edges[b + 1]].mean(axis=1)
    return out


def _pca_sketch(features: np.ndarray, dims: int) -> np.ndarray:
    """Project onto the top-``dims`` principal axes (deterministic).

    Uses ``eigh`` on the feature covariance (symmetric, so the
    decomposition is deterministic for a given build) and fixes each
    component's sign by making its largest-magnitude coefficient
    positive — without the convention, eigenvectors are only defined up
    to sign and restarts could disagree.
    """
    features = _check_features(features)
    dims = min(max(1, dims), features.shape[1])
    centered = features - features.mean(axis=0, keepdims=True)
    cov = centered.T @ centered
    _, vecs = np.linalg.eigh(cov)
    # eigh returns ascending eigenvalues; take the trailing columns.
    basis = vecs[:, ::-1][:, :dims]
    anchor = np.abs(basis).argmax(axis=0)
    signs = np.sign(basis[anchor, np.arange(dims)])
    signs[signs == 0] = 1.0
    return centered @ (basis * signs)


def sketch_features(
    features: np.ndarray,
    kind: str = "mean",
    *,
    buckets: int = DEFAULT_BUCKETS,
    dims: int = DEFAULT_PCA_DIMS,
    basis_features: np.ndarray | None = None,
) -> np.ndarray:
    """Reduce ``(S, F)`` prepared features to an ``(S, D)`` sketch.

    Parameters
    ----------
    features:
        Metric-prepared feature matrix (``CostMetric.prepare`` output).
    kind:
        One of :data:`SKETCH_KINDS`.
    buckets:
        Bucket count for ``"mean"`` (capped at ``F``).
    dims:
        Output dimensionality for ``"pca"`` (capped at ``F``).
    basis_features:
        For ``"pca"`` only: fit the projection basis on this matrix
        instead of ``features``.  The sparse builder passes the stacked
        input+target features so both sides share one sketch space.
    """
    features = _check_features(features)
    if kind == "mean":
        return bucket_means(features, buckets)
    if kind == "pyramid":
        return np.concatenate(
            [bucket_means(features, b) for b in (1, 4, 16)], axis=1
        )
    if kind == "pca":
        if basis_features is None:
            return _pca_sketch(features, dims)
        basis_features = _check_features(basis_features)
        if basis_features.shape[1] != features.shape[1]:
            raise ValidationError(
                f"basis features have width {basis_features.shape[1]}, "
                f"sketch input has {features.shape[1]}"
            )
        dims = min(max(1, dims), features.shape[1])
        mean = basis_features.mean(axis=0, keepdims=True)
        centered = basis_features - mean
        cov = centered.T @ centered
        _, vecs = np.linalg.eigh(cov)
        basis = vecs[:, ::-1][:, :dims]
        anchor = np.abs(basis).argmax(axis=0)
        signs = np.sign(basis[anchor, np.arange(dims)])
        signs[signs == 0] = 1.0
        return (features - mean) @ (basis * signs)
    raise ValidationError(
        f"unknown sketch kind {kind!r} (use one of {SKETCH_KINDS})"
    )
