"""Sum-of-squared-differences metric.

The natural L2 alternative to the paper's SAD.  Unlike SAD it expands to
``|a|^2 - 2 a.b + |b|^2``, so the pairwise block is a rank-reduced GEMM —
dramatically faster for large pixel counts.  This is the "know your
computational linear algebra" optimisation from the guides, and the ablation
bench compares it against SAD's quality.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostMetric, register_metric
from repro.types import TileStack

__all__ = ["SSDMetric"]


@register_metric
class SSDMetric(CostMetric):
    """Per-pixel squared tile error via the GEMM expansion."""

    name = "ssd"

    def prepare(self, tiles: TileStack) -> np.ndarray:
        tiles = np.asarray(tiles)
        # float64 so the cross-term matmul hits BLAS; exact for uint8 inputs
        # (all intermediate values < 2^53).
        return tiles.reshape(tiles.shape[0], -1).astype(np.float64)

    def pairwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        sq_a = np.einsum("if,if->i", input_features, input_features)
        sq_b = np.einsum("jf,jf->j", target_features, target_features)
        cross = input_features @ target_features.T
        block = sq_a[:, None] - 2.0 * cross + sq_b[None, :]
        # Guard against -0.0000001 from float rounding of identical rows.
        np.maximum(block, 0.0, out=block)
        return self._as_error(block)

    def rowwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        diff = input_features - target_features
        return self._as_error(np.einsum("if,if->i", diff, diff))
