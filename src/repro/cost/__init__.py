"""Tile-error model: cost metrics and error-matrix computation (Step 2)."""

from __future__ import annotations

from repro.cost.base import CostMetric, get_metric, register_metric
from repro.cost.batch import (
    BATCH_CHUNK_BUDGET,
    BatchedErrorMatrixBuilder,
    BatchJob,
    batch_fingerprint,
)
from repro.cost.color import WeightedColorMetric
from repro.cost.gradient import GradientMetric
from repro.cost.luminance import LuminanceMetric
from repro.cost.matrix import (
    check_tile_stacks,
    error_matrix,
    total_error,
    total_error_of_permutation,
)
from repro.cost.parallel_matrix import error_matrix_parallel
from repro.cost.reference import error_matrix_reference, tile_error_reference
from repro.cost.sad import SADMetric
from repro.cost.sketch import SKETCH_KINDS, sketch_features
from repro.cost.sparse import (
    DEFAULT_TOP_K,
    SparseErrorMatrix,
    sparse_error_matrix,
)
from repro.cost.ssd import SSDMetric

__all__ = [
    "CostMetric",
    "get_metric",
    "register_metric",
    "SADMetric",
    "SSDMetric",
    "LuminanceMetric",
    "WeightedColorMetric",
    "GradientMetric",
    "check_tile_stacks",
    "error_matrix",
    "error_matrix_parallel",
    "total_error",
    "total_error_of_permutation",
    "error_matrix_reference",
    "tile_error_reference",
    "SKETCH_KINDS",
    "sketch_features",
    "DEFAULT_TOP_K",
    "SparseErrorMatrix",
    "sparse_error_matrix",
    "BATCH_CHUNK_BUDGET",
    "BatchJob",
    "BatchedErrorMatrixBuilder",
    "batch_fingerprint",
]
