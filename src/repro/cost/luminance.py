"""Mean-luminance metric: the cheap feature used by classic mosaic systems.

``E(I_u, T_v) = M^2 * |mean(I_u) - mean(T_v)|`` — scaled by the pixel count
so its magnitude is comparable to SAD (SAD >= this value by the triangle
inequality, with equality for constant tiles).  O(S^2) instead of
O(S^2 M^2), at the price of ignoring intra-tile structure; the metric
ablation quantifies that trade.
"""

from __future__ import annotations

import numpy as np

from repro.cost.base import CostMetric, register_metric
from repro.types import TileStack

__all__ = ["LuminanceMetric"]


@register_metric
class LuminanceMetric(CostMetric):
    """Tile error from mean intensities only."""

    name = "luminance"

    def prepare(self, tiles: TileStack) -> np.ndarray:
        tiles = np.asarray(tiles)
        flat = tiles.reshape(tiles.shape[0], -1).astype(np.float64)
        # Keep the *sum* rather than the mean: integer-valued for uint8
        # tiles, so pairwise differences stay exact.
        return flat.sum(axis=1)[:, None]

    def pairwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        diff = np.abs(input_features[:, 0][:, None] - target_features[:, 0][None, :])
        return self._as_error(diff)

    def rowwise(self, input_features: np.ndarray, target_features: np.ndarray) -> np.ndarray:
        return self._as_error(np.abs(input_features[:, 0] - target_features[:, 0]))
