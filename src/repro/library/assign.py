"""Assignment solvers for the many-to-one library workload.

Unlike the paper's bijective rearrangement (``repro.assignment``), a
library mosaic may reuse a tile for many cells — the quality lever is
*how much* reuse to allow.  Solvers here pick, for each target cell, one
tile from that cell's exact-scored candidate shortlist
(:class:`~repro.library.shortlist.CandidateSet`), trading raw match cost
against a repetition penalty in the spirit of the clustering-EP paper.

The registry mirrors :mod:`repro.assignment.base`: concrete solvers
self-register by ``name`` and are looked up with :func:`get_assigner`.

Objective
---------
All solvers minimise::

    sum_s cost(s, choice[s])  +  penalty_unit * lam * sum_t C(count_t, 2)

where ``count_t`` is how many cells chose tile ``t``, ``C(n, 2)`` the
pair count ``n*(n-1)/2``, ``lam`` the configured ``repetition_penalty``
and ``penalty_unit`` the mean shortlist cost (so ``lam`` is scale-free
across metrics and tile sizes).  The pairwise form means the marginal
price of re-using a tile already used ``n`` times is ``n * lam *
penalty_unit`` — exactly what the greedy solver charges incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Type

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.utils.rng import make_rng

__all__ = [
    "LibraryAssignment",
    "LibraryAssigner",
    "GreedyPenaltyAssigner",
    "EvolutionaryAssigner",
    "available_assigners",
    "get_assigner",
    "pair_penalty",
    "register_assigner",
    "reuse_counts",
]


@dataclass(frozen=True)
class LibraryAssignment:
    """Result of a library assignment.

    Attributes
    ----------
    choice:
        ``(S,)`` int64 — library tile index chosen for each cell.
    total_cost:
        Sum of exact match costs of the chosen tiles (penalty excluded,
        so totals are comparable across penalty settings).
    meta:
        Solver diagnostics: ``objective`` (cost + penalty actually
        minimised), ``max_reuse``, ``unique_tiles``, ``iterations``.
    """

    choice: np.ndarray
    total_cost: int
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        choice = np.asarray(self.choice, dtype=np.int64)
        if choice.ndim != 1:
            raise ValidationError(
                f"assignment choice must be 1-D, got shape {choice.shape}"
            )
        object.__setattr__(self, "choice", choice)

    @property
    def max_reuse(self) -> int:
        """Largest number of cells sharing one tile."""
        return int(np.bincount(self.choice).max())

    @property
    def unique_tiles(self) -> int:
        """Number of distinct tiles used."""
        return int(np.unique(self.choice).size)


def reuse_counts(choice: np.ndarray) -> np.ndarray:
    """Per-tile use counts of an assignment (dense, up to max index)."""
    return np.bincount(np.asarray(choice, dtype=np.int64))


def _check_candidates(indices: np.ndarray, costs: np.ndarray):
    indices = np.asarray(indices, dtype=np.int64)
    costs = np.asarray(costs, dtype=np.int64)
    if indices.ndim != 2 or indices.shape != costs.shape:
        raise ValidationError(
            f"candidate indices/costs must be matching (S, k) arrays, got "
            f"{indices.shape} and {costs.shape}"
        )
    if indices.shape[1] < 1:
        raise ValidationError("each cell needs at least one candidate")
    return indices, costs


def _penalty_unit(costs: np.ndarray) -> int:
    """Scale factor turning ``repetition_penalty`` into cost units."""
    return max(1, int(round(float(np.mean(costs)))))


def pair_penalty(counts: np.ndarray) -> int:
    """``sum_t C(count_t, 2)`` — the reuse pair count."""
    counts = counts.astype(np.int64)
    return int(np.sum(counts * (counts - 1) // 2))


class LibraryAssigner:
    """Base class: pick one candidate per cell.

    Subclasses set ``name`` and implement :meth:`solve`, receiving the
    per-cell shortlist ``indices``/``costs`` (both ``(S, k)``), the
    penalty weight and an optional seed.  Registration mirrors
    :mod:`repro.assignment.base`.
    """

    name: str = "base"

    def solve(
        self,
        indices: np.ndarray,
        costs: np.ndarray,
        *,
        repetition_penalty: float = 0.0,
        refine_iters: int = 0,
        seed: int | None = None,
    ) -> LibraryAssignment:
        raise NotImplementedError


_ASSIGNERS: Dict[str, Type[LibraryAssigner]] = {}


def register_assigner(cls: Type[LibraryAssigner]) -> Type[LibraryAssigner]:
    """Class decorator adding an assigner to the registry."""
    if not cls.name or cls.name == "base":
        raise ValidationError(f"assigner {cls.__name__} needs a distinct name")
    _ASSIGNERS[cls.name] = cls
    return cls


def available_assigners() -> tuple[str, ...]:
    """Registered assigner names, sorted."""
    return tuple(sorted(_ASSIGNERS))


def get_assigner(name: str) -> LibraryAssigner:
    """Instantiate an assigner by registry name."""
    try:
        return _ASSIGNERS[name]()
    except KeyError:
        raise SolverError(
            f"unknown library assigner {name!r} "
            f"(available: {available_assigners()})"
        ) from None


@register_assigner
class GreedyPenaltyAssigner(LibraryAssigner):
    """Greedy assignment with an incremental repetition penalty.

    Cells are processed most-confident-first (ascending best-candidate
    cost, stable ties) so cells with a clear winner claim their tile
    before the penalty builds up.  Each cell then picks the candidate
    minimising ``cost + n_uses * lam * penalty_unit`` — the marginal
    price of the pairwise objective above.  Deterministic: no randomness
    is involved, ties break toward the shortlist order (which is itself
    a stable sort by exact cost).
    """

    name = "greedy"

    def solve(
        self,
        indices: np.ndarray,
        costs: np.ndarray,
        *,
        repetition_penalty: float = 0.0,
        refine_iters: int = 0,
        seed: int | None = None,
    ) -> LibraryAssignment:
        indices, costs = _check_candidates(indices, costs)
        cells, _k = costs.shape
        unit = _penalty_unit(costs)
        step = int(round(repetition_penalty * unit))
        order = np.argsort(costs[:, 0], kind="stable")
        choice = np.empty(cells, dtype=np.int64)
        uses: dict[int, int] = {}
        total = 0
        for cell in order:
            row_idx = indices[cell]
            row_cost = costs[cell]
            if step:
                counts = np.fromiter(
                    (uses.get(int(t), 0) for t in row_idx),
                    dtype=np.int64,
                    count=row_idx.size,
                )
                pick = int(np.argmin(row_cost + counts * step))
            else:
                pick = 0
            tile = int(row_idx[pick])
            choice[cell] = tile
            uses[tile] = uses.get(tile, 0) + 1
            total += int(row_cost[pick])
        counts = reuse_counts(choice)
        objective = total + step * pair_penalty(counts)
        return LibraryAssignment(
            choice=choice,
            total_cost=total,
            meta={
                "objective": objective,
                "penalty_unit": unit,
                "max_reuse": int(counts.max()),
                "unique_tiles": int(np.count_nonzero(counts)),
                "iterations": 0,
            },
        )


@register_assigner
class EvolutionaryAssigner(LibraryAssigner):
    """Greedy start plus a seeded EP-style refinement.

    Follows the clustering-EP recipe at single-population scale: start
    from the greedy solution, then for ``refine_iters`` rounds mutate
    the choice of one cell (drawn from the cells contributing most to
    the objective) to another shortlist candidate and keep the move iff
    it lowers the full objective.  Fully deterministic given ``seed``.
    """

    name = "ep"

    def solve(
        self,
        indices: np.ndarray,
        costs: np.ndarray,
        *,
        repetition_penalty: float = 0.0,
        refine_iters: int = 0,
        seed: int | None = None,
    ) -> LibraryAssignment:
        indices, costs = _check_candidates(indices, costs)
        base = GreedyPenaltyAssigner().solve(
            indices,
            costs,
            repetition_penalty=repetition_penalty,
            seed=seed,
        )
        cells, k = costs.shape
        if refine_iters <= 0 or k < 2:
            meta = dict(base.meta)
            meta["iterations"] = 0
            return LibraryAssignment(base.choice, base.total_cost, meta)

        unit = int(base.meta["penalty_unit"])
        step = int(round(repetition_penalty * unit))
        rng = make_rng(seed)
        choice = base.choice.copy()
        # Track, per cell, which shortlist slot is chosen, and per tile,
        # its use count — enough to evaluate a single-cell move in O(k).
        slot = np.zeros(cells, dtype=np.int64)
        for cell in range(cells):
            slot[cell] = int(np.argmax(indices[cell] == choice[cell]))
        counts: dict[int, int] = {}
        for t in choice:
            counts[int(t)] = counts.get(int(t), 0) + 1
        total = base.total_cost
        accepted = 0
        for _ in range(refine_iters):
            cell = int(rng.integers(cells))
            cur_slot = int(slot[cell])
            cur_tile = int(indices[cell, cur_slot])
            cur_cost = int(costs[cell, cur_slot])
            cur_uses = counts[cur_tile]
            best_delta = 0
            best_slot = cur_slot
            for cand in range(k):
                if cand == cur_slot:
                    continue
                tile = int(indices[cell, cand])
                if tile == cur_tile:
                    continue
                # Moving the cell off cur_tile (n -> n-1 uses) refunds
                # (n-1)*step of pair penalty; joining `tile` (m -> m+1)
                # charges m*step.
                delta = int(costs[cell, cand]) - cur_cost
                if step:
                    delta += step * (counts.get(tile, 0) - (cur_uses - 1))
                if delta < best_delta:
                    best_delta = delta
                    best_slot = cand
            if best_slot != cur_slot:
                new_tile = int(indices[cell, best_slot])
                counts[cur_tile] = cur_uses - 1
                counts[new_tile] = counts.get(new_tile, 0) + 1
                total += int(costs[cell, best_slot]) - cur_cost
                slot[cell] = best_slot
                choice[cell] = new_tile
                accepted += 1
        dense = reuse_counts(choice)
        objective = total + step * pair_penalty(dense)
        return LibraryAssignment(
            choice=choice,
            total_cost=total,
            meta={
                "objective": objective,
                "penalty_unit": unit,
                "max_reuse": int(dense.max()),
                "unique_tiles": int(np.count_nonzero(dense)),
                "iterations": refine_iters,
                "accepted_moves": accepted,
            },
        )
