"""Deterministic synthetic libraries and targets.

Tests, goldens, the CI smoke job and the benchmarks all need a "library
of candidate photos" without shipping binary fixtures.  These generators
produce structured, diverse images (gradients at varied orientations,
intensities and contrast, plus mild texture) from a seed — diverse
enough that clustering and shortlisting have real work to do, and fully
reproducible bit-for-bit.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging import save_image
from repro.utils.rng import make_rng

__all__ = [
    "synthetic_library_images",
    "synthetic_target",
    "write_synthetic_library",
]


def synthetic_library_images(
    count: int, *, size: int = 16, seed: int | None = 0
) -> list[np.ndarray]:
    """``count`` distinct ``size x size`` uint8 candidate images.

    Each image is an oriented linear gradient with its own base
    intensity, contrast and angle, overlaid with low-amplitude noise —
    a crude stand-in for a photo collection's spread of brightness and
    structure.
    """
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    rng = make_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    ys = ys / max(1, size - 1) - 0.5
    xs = xs / max(1, size - 1) - 0.5
    images: list[np.ndarray] = []
    for _ in range(count):
        angle = rng.uniform(0.0, 2 * np.pi)
        base = rng.uniform(30.0, 225.0)
        contrast = rng.uniform(20.0, 120.0)
        ramp = np.cos(angle) * xs + np.sin(angle) * ys
        noise = rng.normal(0.0, 4.0, size=(size, size))
        img = base + contrast * ramp + noise
        images.append(np.clip(np.rint(img), 0, 255).astype(np.uint8))
    return images


def synthetic_target(size: int = 64, *, seed: int | None = 0) -> np.ndarray:
    """A ``size x size`` uint8 target with large-scale structure.

    Radial vignette plus two soft blobs and mild noise — smooth regions
    to reward tile reuse and gradients to exercise the shortlister.
    """
    if size < 1:
        raise ValidationError(f"size must be >= 1, got {size}")
    rng = make_rng(seed)
    ys, xs = np.mgrid[0:size, 0:size].astype(np.float64)
    ys = ys / max(1, size - 1) - 0.5
    xs = xs / max(1, size - 1) - 0.5
    r2 = xs**2 + ys**2
    img = 200.0 - 220.0 * r2
    for _ in range(2):
        cy, cx = rng.uniform(-0.35, 0.35, size=2)
        amp = rng.uniform(-80.0, 80.0)
        width = rng.uniform(0.05, 0.15)
        img += amp * np.exp(-((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * width**2))
    img += rng.normal(0.0, 3.0, size=(size, size))
    return np.clip(np.rint(img), 0, 255).astype(np.uint8)


def write_synthetic_library(
    directory: str | os.PathLike[str],
    count: int,
    *,
    size: int = 16,
    seed: int | None = 0,
) -> list[str]:
    """Write a synthetic library to ``directory`` as ``.pgm`` files.

    Returns the written paths (sorted, matching the ingestion scan
    order).  Used by the CLI smoke tests and the CI library-smoke job.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    paths: list[str] = []
    for i, image in enumerate(
        synthetic_library_images(count, size=size, seed=seed)
    ):
        path = os.path.join(directory, f"tile-{i:05d}.pgm")
        save_image(path, image)
        paths.append(path)
    return paths
