"""Per-cell colour adjustment of placed tiles.

The clustering-EP paper improves perceived match quality by nudging each
placed tile's intensities toward its target cell rather than (only)
searching for a closer tile.  Two modes, both cheap and local:

* ``histogram`` — shift the tile's mean onto the target cell's mean
  (a one-parameter histogram translation);
* ``gain_offset`` — fit the full affine map matching both the mean and
  the standard deviation, with the gain clamped so near-flat tiles are
  not blown up into noise.

Adjustments operate on float copies and clip back to uint8, so they
never wrap around and are exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.library.config import COLOR_ADJUST_MODES

__all__ = ["adjust_tiles", "cell_stats"]

#: Gain clamp for ``gain_offset`` — a flat tile matched to a busy cell
#: would otherwise amplify quantisation noise unboundedly.
_MAX_GAIN = 4.0


def cell_stats(cells: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-cell ``(means, stds)`` of a ``(S, M, M)`` stack, float64."""
    cells = np.asarray(cells)
    flat = cells.reshape(cells.shape[0], -1).astype(np.float64)
    return flat.mean(axis=1), flat.std(axis=1)


def adjust_tiles(
    tiles: np.ndarray,
    target_means: np.ndarray,
    target_stds: np.ndarray,
    mode: str,
) -> np.ndarray:
    """Adjust a ``(S, R, R)`` stack of placed tiles toward per-cell stats.

    Returns a new uint8 stack; ``mode="none"`` is a uint8-cast pass-through.
    """
    if mode not in COLOR_ADJUST_MODES:
        raise ValidationError(
            f"unknown color_adjust {mode!r} (use one of {COLOR_ADJUST_MODES})"
        )
    tiles = np.asarray(tiles)
    if tiles.ndim != 3:
        raise ValidationError(
            f"adjust_tiles expects a (S, R, R) stack, got shape {tiles.shape}"
        )
    if mode == "none":
        return tiles.astype(np.uint8, copy=False)
    s = tiles.shape[0]
    target_means = np.asarray(target_means, dtype=np.float64)
    target_stds = np.asarray(target_stds, dtype=np.float64)
    if target_means.shape != (s,) or target_stds.shape != (s,):
        raise ValidationError(
            f"target stats must have shape ({s},), got "
            f"{target_means.shape} and {target_stds.shape}"
        )
    work = tiles.astype(np.float64)
    means, stds = cell_stats(tiles)
    if mode == "histogram":
        shifted = work + (target_means - means)[:, None, None]
    else:  # gain_offset
        gains = np.clip(
            target_stds / np.maximum(stds, 1e-6), 1.0 / _MAX_GAIN, _MAX_GAIN
        )
        shifted = (work - means[:, None, None]) * gains[:, None, None]
        shifted += target_means[:, None, None]
    return np.clip(np.rint(shifted), 0, 255).astype(np.uint8)
