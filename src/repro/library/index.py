"""Persistent, versioned index of a tile library.

A :class:`LibraryIndex` holds, for every candidate image in a library:

* a **match tile** — the image resampled to ``tile_size x tile_size``,
  what the exact cost metric scores against target cells;
* a **render thumb** — the image resampled to ``thumb_size x thumb_size``,
  what the renderer resamples output cells from (so mosaics can be
  rendered well above match resolution without touching the source
  files again);
* a **sketch** — the ``sketch_grid x sketch_grid`` block-mean feature
  vector used by the k-means shortlister.

Ingestion is content-addressed: each source file is fingerprinted by the
SHA-256 of its bytes and its per-tile features land in any
:class:`~repro.service.cache.CacheBackend` under
:func:`library_feature_key` via ``get_or_compute``.  Backed by the
shared :class:`~repro.service.diskcache.DiskCacheStore` this makes
re-ingestion of an unchanged library a pure cache read (single-flight
across processes), which is what the service's warm-ingest hit-rate
guarantee is built on.

The index itself serialises to a single ``.npz`` file with an embedded
JSON header (:meth:`LibraryIndex.save` / :meth:`LibraryIndex.load`),
versioned by :data:`~repro.library.config.INDEX_FORMAT_VERSION` — a
layout change bumps the version and old files are rejected loudly
instead of being reinterpreted.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging import ensure_gray, load_image
from repro.imaging.resize import resize
from repro.library.config import INDEX_FORMAT_VERSION
from repro.tiles.features import tile_features
from repro.utils.validation import check_image

__all__ = [
    "IngestStats",
    "LibraryIndex",
    "library_feature_key",
    "scan_library_dir",
]

#: File extensions ingested from a library directory.
LIBRARY_EXTENSIONS = (".png", ".pgm", ".ppm", ".pnm")


def library_feature_key(
    fingerprint: str, tile_size: int, thumb_size: int, sketch_grid: int
) -> str:
    """Cache key for one library image's ingested features.

    Keyed by source-content fingerprint plus every parameter that shapes
    the payload, and by the index format version so a feature-definition
    change can never resurface stale entries.
    """
    return (
        f"library/{fingerprint}/t{tile_size}/r{thumb_size}"
        f"/g{sketch_grid}/v{INDEX_FORMAT_VERSION}"
    )


def scan_library_dir(path: str | os.PathLike[str]) -> list[str]:
    """Candidate image files under ``path``, sorted for determinism."""
    root = os.fspath(path)
    if not os.path.isdir(root):
        raise ValidationError(f"library source {root!r} is not a directory")
    found: list[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if os.path.splitext(name)[1].lower() in LIBRARY_EXTENSIONS:
                found.append(os.path.join(dirpath, name))
    if not found:
        raise ValidationError(
            f"library source {root!r} contains no images "
            f"(looked for {', '.join(LIBRARY_EXTENSIONS)})"
        )
    return found


@dataclass
class IngestStats:
    """Cache outcomes of one ingestion pass."""

    images: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def as_dict(self) -> dict:
        return {
            "images": self.images,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


def _ingest_one(image: np.ndarray, tile_size: int, thumb_size: int, sketch_grid: int):
    """Features of one candidate image: ``(match_tile, thumb, sketch)``."""
    image = ensure_gray(check_image(image))
    tile = resize(image, tile_size, tile_size)
    thumb = resize(image, thumb_size, thumb_size)
    sketch = tile_features(tile[None], grid=sketch_grid)[0]
    return tile, thumb, sketch


def _file_fingerprint(path: str) -> str:
    """SHA-256 of the file bytes (cheap: no image decode on cache hits)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()[:32]


@dataclass(frozen=True)
class LibraryIndex:
    """Feature index of ``L`` candidate library images.

    Attributes
    ----------
    tiles:
        ``(L, M, M)`` uint8 match-resolution tiles.
    thumbs:
        ``(L, R, R)`` uint8 render-resolution tiles.
    sketches:
        ``(L, G*G)`` float64 block-mean sketches.
    names:
        Per-image source names (file names, or synthetic labels).
    fingerprints:
        Per-image content fingerprints.
    sketch_grid:
        The ``G`` the sketches were computed with.
    """

    tiles: np.ndarray
    thumbs: np.ndarray
    sketches: np.ndarray
    names: tuple[str, ...]
    fingerprints: tuple[str, ...]
    sketch_grid: int

    def __post_init__(self) -> None:
        n = self.tiles.shape[0]
        if self.tiles.ndim != 3 or n == 0:
            raise ValidationError(
                f"index tiles must be a non-empty (L, M, M) stack, "
                f"got shape {self.tiles.shape}"
            )
        if self.thumbs.ndim != 3 or self.thumbs.shape[0] != n:
            raise ValidationError(
                f"index thumbs shape {self.thumbs.shape} does not match "
                f"{n} tiles"
            )
        if self.sketches.shape != (n, self.sketch_grid * self.sketch_grid):
            raise ValidationError(
                f"index sketches shape {self.sketches.shape}, expected "
                f"({n}, {self.sketch_grid * self.sketch_grid})"
            )
        if len(self.names) != n or len(self.fingerprints) != n:
            raise ValidationError(
                f"index names/fingerprints must have {n} entries"
            )

    # -- introspection ---------------------------------------------------

    @property
    def size(self) -> int:
        """Number of library images ``L``."""
        return self.tiles.shape[0]

    @property
    def tile_size(self) -> int:
        """Match resolution ``M``."""
        return self.tiles.shape[1]

    @property
    def thumb_size(self) -> int:
        """Render resolution ``R``."""
        return self.thumbs.shape[1]

    @property
    def means(self) -> np.ndarray:
        """Per-image mean intensity, derived from the sketches.

        Sketch entries are block means over equal-sized blocks, so their
        mean is exactly the tile mean — no extra stored array needed.
        """
        return self.sketches.mean(axis=1)

    def content_fingerprint(self) -> str:
        """Order-sensitive fingerprint of the whole index (for job IDs
        and golden pins)."""
        h = hashlib.sha256()
        h.update(f"v{INDEX_FORMAT_VERSION}/g{self.sketch_grid}".encode())
        for fp in self.fingerprints:
            h.update(fp.encode())
        h.update(np.ascontiguousarray(self.tiles).tobytes())
        return h.hexdigest()[:32]

    # -- construction ----------------------------------------------------

    @classmethod
    def from_images(
        cls,
        images: Iterable[np.ndarray],
        *,
        tile_size: int = 8,
        thumb_size: int = 32,
        sketch_grid: int = 2,
        names: Sequence[str] | None = None,
    ) -> "LibraryIndex":
        """Build an index directly from in-memory images (no cache)."""
        tiles, thumbs, sketches, fps = [], [], [], []
        for image in images:
            image = ensure_gray(check_image(image))
            tile, thumb, sketch = _ingest_one(
                image, tile_size, thumb_size, sketch_grid
            )
            tiles.append(tile)
            thumbs.append(thumb)
            sketches.append(sketch)
            h = hashlib.sha256()
            h.update(repr(image.shape).encode())
            h.update(np.ascontiguousarray(image).tobytes())
            fps.append(h.hexdigest()[:32])
        if not tiles:
            raise ValidationError("library needs at least one image")
        if names is None:
            names = tuple(f"image-{i:05d}" for i in range(len(tiles)))
        return cls(
            tiles=np.stack(tiles),
            thumbs=np.stack(thumbs),
            sketches=np.stack(sketches),
            names=tuple(names),
            fingerprints=tuple(fps),
            sketch_grid=sketch_grid,
        )

    @classmethod
    def from_directory(
        cls,
        path: str | os.PathLike[str],
        *,
        tile_size: int = 8,
        thumb_size: int = 32,
        sketch_grid: int = 2,
        cache=None,
    ) -> tuple["LibraryIndex", IngestStats]:
        """Ingest a directory of images into an index.

        With a cache backend attached, each file's features are fetched
        (or computed once, under the disk store's single-flight lock) by
        content fingerprint — unchanged files never decode twice across
        runs or processes.  Returns ``(index, ingest_stats)``.
        """
        files = scan_library_dir(path)
        stats = IngestStats()
        tiles, thumbs, sketches, fps, names = [], [], [], [], []
        for file_path in files:
            fingerprint = _file_fingerprint(file_path)

            def compute(file_path: str = file_path):
                return _ingest_one(
                    ensure_gray(load_image(file_path)),
                    tile_size,
                    thumb_size,
                    sketch_grid,
                )

            if cache is None:
                payload = compute()
                stats.misses += 1
            else:
                key = library_feature_key(
                    fingerprint, tile_size, thumb_size, sketch_grid
                )
                if cache.contains(key):
                    stats.hits += 1
                else:
                    stats.misses += 1
                payload = cache.get_or_compute(key, compute)
            tile, thumb, sketch = payload
            tiles.append(np.asarray(tile))
            thumbs.append(np.asarray(thumb))
            sketches.append(np.asarray(sketch))
            fps.append(fingerprint)
            names.append(os.path.basename(file_path))
            stats.images += 1
        index = cls(
            tiles=np.stack(tiles),
            thumbs=np.stack(thumbs),
            sketches=np.stack(sketches),
            names=tuple(names),
            fingerprints=tuple(fps),
            sketch_grid=sketch_grid,
        )
        return index, stats

    # -- persistence -----------------------------------------------------

    def save(self, path: str | os.PathLike[str]) -> None:
        """Write the index as one ``.npz`` file (atomic publish)."""
        path = os.fspath(path)
        header = {
            "format_version": INDEX_FORMAT_VERSION,
            "sketch_grid": self.sketch_grid,
            "names": list(self.names),
            "fingerprints": list(self.fingerprints),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    header=np.frombuffer(
                        json.dumps(header, sort_keys=True).encode("utf-8"),
                        dtype=np.uint8,
                    ),
                    tiles=self.tiles,
                    thumbs=self.thumbs,
                    sketches=self.sketches,
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str | os.PathLike[str]) -> "LibraryIndex":
        """Load an index written by :meth:`save`; rejects other versions."""
        path = os.fspath(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                header = json.loads(bytes(data["header"].tobytes()).decode("utf-8"))
                tiles = np.asarray(data["tiles"])
                thumbs = np.asarray(data["thumbs"])
                sketches = np.asarray(data["sketches"])
        except (OSError, KeyError, ValueError, json.JSONDecodeError) as exc:
            raise ValidationError(
                f"cannot load library index {path!r}: {exc}"
            ) from exc
        version = header.get("format_version")
        if version != INDEX_FORMAT_VERSION:
            raise ValidationError(
                f"library index {path!r} has format version {version!r}; "
                f"this build reads version {INDEX_FORMAT_VERSION} — rebuild "
                "the index with `photomosaic library build`"
            )
        return cls(
            tiles=tiles,
            thumbs=thumbs,
            sketches=sketches,
            names=tuple(header["names"]),
            fingerprints=tuple(header["fingerprints"]),
            sketch_grid=int(header["sketch_grid"]),
        )
