"""Configuration for the tile-library (many-to-one) mosaic engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = ["LibraryConfig", "COLOR_ADJUST_MODES", "INDEX_FORMAT_VERSION"]

#: Per-cell colour-adjustment modes applied at render time (the EP paper's
#: "color adjustment of tile images"): ``none`` places tiles verbatim,
#: ``gain_offset`` fits an affine intensity map per cell, ``histogram``
#: shifts each tile's mean onto the target cell's.
COLOR_ADJUST_MODES = ("none", "gain_offset", "histogram")

#: Bumped whenever the persisted :class:`~repro.library.index.LibraryIndex`
#: layout or the ingestion feature definition changes; stale cache entries
#: and index files from older versions are never silently reinterpreted.
INDEX_FORMAT_VERSION = 1


@dataclass(frozen=True)
class LibraryConfig:
    """All knobs of the library-mosaic pipeline.

    Attributes
    ----------
    tile_size:
        Match resolution ``M``: candidate tiles and target cells are
        compared as ``M x M`` patches.
    thumb_size:
        Render resolution ``R`` stored per library image; output cells
        are resampled from these, so the mosaic can be rendered larger
        than the match resolution without re-reading the library.
    sketch_grid:
        Side of the block-mean sketch (``sketch_grid**2`` features) used
        for clustering and candidate pruning.
    metric:
        Cost-metric registry name for the exact shortlist scoring.
    top_k:
        Exact-scored candidates kept per target cell (clamped to the
        library size).
    clusters:
        K-means cluster count over the library sketches; ``0`` derives
        ``~sqrt(L)`` from the library size.
    cluster_probes:
        Nearest clusters searched per cell before falling back to more
        (search widens deterministically until ``top_k`` candidates are
        available).
    repetition_penalty:
        Weight of the tile-reuse penalty, in units of the mean candidate
        cost; ``0`` disables it (pure nearest-tile mosaics).
    assigner:
        Library-assignment solver registry name (``"greedy"`` or
        ``"ep"``; see :mod:`repro.library.assign`).
    refine_iters:
        Refinement budget for the EP-style assigner (ignored by greedy).
    color_adjust:
        One of :data:`COLOR_ADJUST_MODES`.
    out_size:
        Output image side in pixels; ``None`` renders at the target's
        own size.  The actual side is rounded down to a multiple of the
        cell grid.
    array_backend:
        Array backend for the exact-scoring hot path (see
        :mod:`repro.accel.backend`).
    """

    tile_size: int = 8
    thumb_size: int = 32
    sketch_grid: int = 2
    metric: str = "sad"
    top_k: int = 16
    clusters: int = 0
    cluster_probes: int = 2
    repetition_penalty: float = 0.0
    assigner: str = "greedy"
    refine_iters: int = 0
    color_adjust: str = "none"
    out_size: int | None = None
    array_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ValidationError(f"tile_size must be >= 1, got {self.tile_size}")
        if self.thumb_size < 1:
            raise ValidationError(f"thumb_size must be >= 1, got {self.thumb_size}")
        if self.sketch_grid < 1:
            raise ValidationError(
                f"sketch_grid must be >= 1, got {self.sketch_grid}"
            )
        if self.tile_size % self.sketch_grid:
            raise ValidationError(
                f"sketch_grid {self.sketch_grid} does not divide "
                f"tile_size {self.tile_size}"
            )
        if self.top_k < 1:
            raise ValidationError(f"top_k must be >= 1, got {self.top_k}")
        if self.clusters < 0:
            raise ValidationError(f"clusters must be >= 0, got {self.clusters}")
        if self.cluster_probes < 1:
            raise ValidationError(
                f"cluster_probes must be >= 1, got {self.cluster_probes}"
            )
        if self.repetition_penalty < 0:
            raise ValidationError(
                f"repetition_penalty must be >= 0, got {self.repetition_penalty}"
            )
        if self.refine_iters < 0:
            raise ValidationError(
                f"refine_iters must be >= 0, got {self.refine_iters}"
            )
        if self.color_adjust not in COLOR_ADJUST_MODES:
            raise ValidationError(
                f"unknown color_adjust {self.color_adjust!r} "
                f"(use one of {COLOR_ADJUST_MODES})"
            )
        if self.out_size is not None and self.out_size < 1:
            raise ValidationError(f"out_size must be >= 1, got {self.out_size}")
        from repro.cost import get_metric

        get_metric(self.metric)  # raises ValidationError on unknown names
        from repro.library.assign import available_assigners

        if self.assigner not in available_assigners():
            raise ValidationError(
                f"unknown assigner {self.assigner!r} "
                f"(available: {available_assigners()})"
            )
        from repro.accel.backend import backend_names

        if self.array_backend not in backend_names():
            raise ValidationError(
                f"unknown array backend {self.array_backend!r} "
                f"(use one of {backend_names()})"
            )
