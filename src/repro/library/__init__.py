"""Tile-library (many-to-one) mosaic engine.

The paper's rearrangement pipeline composes a target from its *own*
tiles (a bijection); this subsystem composes it from a *library* of
candidate images, the workload of the clustering-EP paper and classic
photomosaic tools.  The pipeline is ingest → shortlist → assign →
render, run by :class:`~repro.library.engine.LibraryMosaicEngine` and
exposed through the job service as ``JobSpec(kind="library")``.
"""

from repro.library.assign import (
    EvolutionaryAssigner,
    GreedyPenaltyAssigner,
    LibraryAssigner,
    LibraryAssignment,
    available_assigners,
    get_assigner,
    pair_penalty,
    register_assigner,
    reuse_counts,
)
from repro.library.color import adjust_tiles, cell_stats
from repro.library.config import (
    COLOR_ADJUST_MODES,
    INDEX_FORMAT_VERSION,
    LibraryConfig,
)
from repro.library.engine import LibraryMosaicEngine, LibraryMosaicResult
from repro.library.index import (
    IngestStats,
    LibraryIndex,
    library_feature_key,
    scan_library_dir,
)
from repro.library.render import render_mosaic, resolve_cell_size
from repro.library.shortlist import CandidateSet, ClusterShortlister, kmeans
from repro.library.synthetic import (
    synthetic_library_images,
    synthetic_target,
    write_synthetic_library,
)

__all__ = [
    "COLOR_ADJUST_MODES",
    "INDEX_FORMAT_VERSION",
    "CandidateSet",
    "ClusterShortlister",
    "EvolutionaryAssigner",
    "GreedyPenaltyAssigner",
    "IngestStats",
    "LibraryAssigner",
    "LibraryAssignment",
    "LibraryConfig",
    "LibraryIndex",
    "LibraryMosaicEngine",
    "LibraryMosaicResult",
    "adjust_tiles",
    "available_assigners",
    "cell_stats",
    "get_assigner",
    "kmeans",
    "library_feature_key",
    "pair_penalty",
    "register_assigner",
    "reuse_counts",
    "render_mosaic",
    "resolve_cell_size",
    "scan_library_dir",
    "synthetic_library_images",
    "synthetic_target",
    "write_synthetic_library",
]
