"""Cluster-pruned candidate shortlisting.

Scoring every target cell against every library tile is ``O(S * L)``
exact metric evaluations — the library analogue of the dense Step-2
matrix the ROADMAP wants sublinear.  The shortlister cuts this the way
the clustering-EP paper does: k-means over the cheap block-mean sketches
partitions the library once, each target cell probes only its nearest
clusters, and the exact (integer) metric runs on that small candidate
pool.  The output is a :class:`CandidateSet` — per-cell ``top_k``
library indices with their exact costs, sorted best-first — which is the
sparse cost structure the assignment solvers consume.

Everything here is bit-deterministic for a given seed: the k-means is a
plain seeded Lloyd's iteration written with explicit broadcast
arithmetic (no BLAS reductions, whose summation order varies across
builds), empty clusters are reseeded from the farthest point, and all
sorts are stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accel.backend import get_backend
from repro.exceptions import ValidationError
from repro.utils.rng import make_rng

__all__ = ["CandidateSet", "ClusterShortlister", "kmeans"]


@dataclass(frozen=True)
class CandidateSet:
    """Per-cell exact-scored shortlist.

    Attributes
    ----------
    indices:
        ``(S, k)`` int64 library tile indices, best-first per row.
    costs:
        ``(S, k)`` int64 exact metric costs aligned with ``indices``.
    meta:
        Pruning diagnostics (``clusters``, ``scanned_mean`` — the mean
        number of exact evaluations per cell before truncation).
    """

    indices: np.ndarray
    costs: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.indices.shape != self.costs.shape or self.indices.ndim != 2:
            raise ValidationError(
                f"candidate indices/costs must be matching (S, k) arrays, "
                f"got {self.indices.shape} and {self.costs.shape}"
            )

    @property
    def cells(self) -> int:
        return self.indices.shape[0]

    @property
    def top_k(self) -> int:
        return self.indices.shape[1]


def _sq_dist(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """``(N, K)`` squared distances via explicit broadcast.

    Deliberately not the ``|x|^2 - 2xy + |y|^2`` BLAS form: matmul
    summation order varies across library builds, and bit-identical
    cluster labels are what make the whole pipeline goldenable.
    """
    diff = points[:, None, :] - centers[None, :, :]
    return np.einsum("nkf,nkf->nk", diff, diff)


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    seed: int | None = None,
    iters: int = 25,
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded Lloyd's k-means; returns ``(centroids (k, F), labels (N,))``.

    Initialisation samples ``k`` distinct points; an iteration that
    empties a cluster reseeds it from the point farthest from its
    assigned centroid (deterministic, stable under ties).  Converges or
    stops after ``iters`` rounds — for shortlist pruning, an imperfect
    clustering only costs a few extra exact evaluations, never quality.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValidationError(
            f"kmeans needs a non-empty (N, F) matrix, got shape {points.shape}"
        )
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValidationError(f"k must be in 1..{n}, got {k}")
    rng = make_rng(seed)
    centers = points[rng.permutation(n)[:k]].copy()
    labels: np.ndarray | None = None
    for _ in range(iters):
        dist = _sq_dist(points, centers)
        new_labels = np.argmin(dist, axis=1)
        # Reseed empty clusters from the worst-served points, excluding
        # points already drafted so k empties get k distinct seeds.
        served = dist[np.arange(n), new_labels]
        for c in range(k):
            if not np.any(new_labels == c):
                worst = int(np.argmax(served))
                new_labels[worst] = c
                served[worst] = -1.0
        if labels is not None and np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(k):
            members = points[labels == c]
            if members.size:
                centers[c] = members.mean(axis=0)
    return centers, labels


class ClusterShortlister:
    """Prunes a library to per-cell candidate pools via sketch clusters.

    Built once per (library, metric, seed); :meth:`shortlist` then
    serves any number of target tile stacks.
    """

    def __init__(
        self,
        sketches: np.ndarray,
        library_features: np.ndarray,
        metric,
        *,
        clusters: int = 0,
        probes: int = 2,
        seed: int | None = None,
        backend=None,
    ) -> None:
        sketches = np.asarray(sketches, dtype=np.float64)
        if sketches.ndim != 2 or sketches.shape[0] == 0:
            raise ValidationError(
                f"sketches must be a non-empty (L, F) matrix, got "
                f"shape {sketches.shape}"
            )
        if library_features.shape[0] != sketches.shape[0]:
            raise ValidationError(
                f"{library_features.shape[0]} feature rows for "
                f"{sketches.shape[0]} sketches"
            )
        size = sketches.shape[0]
        if clusters == 0:
            clusters = max(1, int(round(size**0.5)))
        clusters = min(clusters, size)
        self.metric = metric
        self.probes = max(1, min(probes, clusters))
        self.library_features = library_features
        # The exact-scoring kernel runs on the configured array backend
        # (same NEP-18 dispatch as cost.error_matrix); results come back
        # as host arrays so callers stay backend-agnostic.
        self.backend = get_backend(backend)
        self._device_features = (
            library_features
            if self.backend.is_numpy
            else self.backend.asarray(library_features)
        )
        self.centroids, self.labels = kmeans(sketches, clusters, seed=seed)
        # Members stored ascending so candidate order (and thus exact-cost
        # tie-breaking) is independent of cluster iteration details.
        self.members = [
            np.flatnonzero(self.labels == c) for c in range(clusters)
        ]

    @property
    def clusters(self) -> int:
        return self.centroids.shape[0]

    def _candidates_for(self, cell_sketch: np.ndarray, need: int) -> np.ndarray:
        """Library indices from the nearest clusters, widening to ``need``."""
        diff = self.centroids - cell_sketch[None, :]
        dist = np.einsum("kf,kf->k", diff, diff)
        order = np.argsort(dist, kind="stable")
        pools: list[np.ndarray] = []
        have = 0
        for rank, c in enumerate(order):
            pools.append(self.members[c])
            have += self.members[c].size
            if rank + 1 >= self.probes and have >= need:
                break
        return np.concatenate(pools)

    def shortlist(
        self, target_tiles: np.ndarray, target_sketches: np.ndarray, top_k: int
    ) -> CandidateSet:
        """Exact-score each cell against its pruned pool.

        ``target_tiles`` is the ``(S, M, M)`` cell stack, ``target_sketches``
        its block-mean features (same grid as the library sketches).
        Rows come back best-first under a stable sort, so the assigners'
        slot-0 fallback is the true nearest tile.
        """
        if top_k < 1:
            raise ValidationError(f"top_k must be >= 1, got {top_k}")
        size = self.library_features.shape[0]
        top_k = min(top_k, size)
        target_features = self.metric.prepare(np.asarray(target_tiles))
        cells = target_features.shape[0]
        if target_sketches.shape[0] != cells:
            raise ValidationError(
                f"{target_sketches.shape[0]} sketches for {cells} cells"
            )
        indices = np.empty((cells, top_k), dtype=np.int64)
        costs = np.empty((cells, top_k), dtype=np.int64)
        scanned = 0
        xb = self.backend
        device_targets = (
            target_features if xb.is_numpy else xb.asarray(target_features)
        )
        for cell in range(cells):
            pool = self._candidates_for(target_sketches[cell], top_k)
            scanned += pool.size
            pool_dev = pool if xb.is_numpy else xb.asarray(pool)
            row = np.asarray(
                xb.to_numpy(
                    self.metric.pairwise(
                        device_targets[cell : cell + 1],
                        self._device_features[pool_dev],
                    )
                )
            )[0]
            best = np.argsort(row, kind="stable")[:top_k]
            indices[cell] = pool[best]
            costs[cell] = row[best]
        return CandidateSet(
            indices=indices,
            costs=costs,
            meta={
                "clusters": self.clusters,
                "probes": self.probes,
                "scanned_mean": scanned / cells if cells else 0.0,
                "scanned_total": int(scanned),
                "library_size": size,
                "backend": self.backend.name,
            },
        )
