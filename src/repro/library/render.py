"""Mosaic rendering from stored render-resolution tiles.

Matching runs at ``tile_size`` (small, fast) but every library image
also carries a ``thumb_size`` render tile, so the output mosaic can be
produced at an arbitrary resolution — PhotoQuilt-style — without going
back to the source files.  Each output cell is the chosen tile's thumb,
resampled to the cell size and optionally colour-adjusted toward the
target cell (:mod:`repro.library.color`).

Resampling happens once per *distinct* tile, not once per cell: with a
repetition penalty of zero a 4096-cell mosaic may use a handful of
tiles, and the gather afterwards is a plain fancy-index.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging.resize import resize
from repro.library.color import adjust_tiles
from repro.tiles.grid import TileGrid

__all__ = ["render_mosaic", "resolve_cell_size"]


def resolve_cell_size(
    rows: int, cols: int, tile_size: int, out_size: int | None
) -> int:
    """Output cell side for a requested output size.

    ``out_size`` is the requested longer output side; ``None`` keeps the
    match resolution.  The cell side is floored to keep the grid exact,
    so the actual output is ``(rows * cell, cols * cell)``.
    """
    if out_size is None:
        return tile_size
    cell = out_size // max(rows, cols)
    if cell < 1:
        raise ValidationError(
            f"out_size {out_size} too small for a {rows}x{cols} grid"
        )
    return cell


def render_mosaic(
    thumbs: np.ndarray,
    choice: np.ndarray,
    rows: int,
    cols: int,
    cell_size: int,
    *,
    target_means: np.ndarray | None = None,
    target_stds: np.ndarray | None = None,
    color_adjust: str = "none",
) -> np.ndarray:
    """Assemble the output image from chosen tiles.

    Parameters
    ----------
    thumbs:
        ``(L, R, R)`` uint8 render-resolution library tiles.
    choice:
        ``(rows * cols,)`` chosen library index per cell, row-major.
    cell_size:
        Output cell side in pixels (see :func:`resolve_cell_size`).
    target_means, target_stds:
        Per-cell target statistics, required when ``color_adjust`` is
        not ``"none"``.
    """
    thumbs = np.asarray(thumbs)
    choice = np.asarray(choice, dtype=np.int64)
    cells = rows * cols
    if choice.shape != (cells,):
        raise ValidationError(
            f"choice shape {choice.shape}, expected ({cells},)"
        )
    if choice.size and (choice.min() < 0 or choice.max() >= thumbs.shape[0]):
        raise ValidationError(
            f"choice indexes outside library of {thumbs.shape[0]} tiles"
        )
    used = np.unique(choice)
    if cell_size == thumbs.shape[1]:
        resampled = thumbs[used]
    else:
        resampled = np.stack(
            [resize(thumbs[t], cell_size, cell_size) for t in used]
        )
    # Map library index -> slot in `resampled`, then gather per cell.
    slot = np.searchsorted(used, choice)
    placed = resampled[slot]
    if color_adjust != "none":
        if target_means is None or target_stds is None:
            raise ValidationError(
                "color adjustment needs per-cell target statistics"
            )
        placed = adjust_tiles(placed, target_means, target_stds, color_adjust)
    grid = TileGrid(rows * cell_size, cols * cell_size, cell_size)
    return grid.assemble(placed.astype(np.uint8, copy=False))
