"""The many-to-one library mosaic pipeline.

:class:`LibraryMosaicEngine` runs the four phases of a library mosaic —
**ingest** (or accept a prebuilt :class:`~repro.library.index.LibraryIndex`),
**shortlist** (cluster-pruned exact scoring), **assign** (a registered
:class:`~repro.library.assign.LibraryAssigner`) and **render** — with the
same observer / timing / ``meta`` conventions as
:class:`~repro.mosaic.generator.PhotomosaicGenerator`, so the job
service, gateway events and metrics fold-in all work unchanged on
:class:`LibraryMosaicResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cost import get_metric
from repro.exceptions import ValidationError
from repro.imaging import ensure_gray
from repro.library.assign import get_assigner
from repro.library.color import cell_stats
from repro.library.config import LibraryConfig
from repro.library.index import IngestStats, LibraryIndex
from repro.library.render import render_mosaic, resolve_cell_size
from repro.library.shortlist import ClusterShortlister
from repro.tiles.features import tile_features
from repro.tiles.grid import TileGrid
from repro.types import AnyImage
from repro.utils.timing import TimingBreakdown
from repro.utils.validation import check_image

__all__ = ["LibraryMosaicEngine", "LibraryMosaicResult"]

#: Phase names, in pipeline order (also the gateway event vocabulary).
PHASES = ("ingest", "shortlist", "assign", "render")


@dataclass(frozen=True)
class LibraryMosaicResult:
    """Everything a caller needs about one library mosaic.

    Mirrors :class:`~repro.mosaic.result.MosaicResult` closely enough
    that :meth:`repro.service.jobs.JobRecord.summary` renders either:
    ``total_error``, ``timings``, ``meta`` and a ``sweeps`` property are
    all present.

    Attributes
    ----------
    image:
        The rendered mosaic (uint8, grayscale).
    choice:
        ``(S,)`` chosen library tile index per target cell, row-major.
    total_error:
        Sum of exact match costs of the chosen tiles (penalty excluded).
    timings:
        Phase breakdown keyed by :data:`PHASES`.
    config:
        The :class:`LibraryConfig` that produced this result.
    meta:
        ``meta["library"]`` carries the service-facing stats: ingest
        hits/misses/hit-rate, shortlist diagnostics, reuse profile.
    """

    image: AnyImage
    choice: np.ndarray
    total_error: int
    timings: TimingBreakdown
    config: LibraryConfig
    meta: dict = field(default_factory=dict)

    @property
    def sweeps(self) -> int | None:
        """Always ``None`` — library assignment has no sweep loop."""
        return None

    @property
    def max_reuse(self) -> int:
        return int(np.bincount(self.choice).max())

    @property
    def unique_tiles(self) -> int:
        return int(np.unique(self.choice).size)


class LibraryMosaicEngine:
    """Configured library-mosaic pipeline.

    ``cache`` is any :class:`~repro.service.cache.CacheBackend`; it is
    handed to :meth:`LibraryIndex.from_directory` so ingestion features
    are content-addressed and shared across runs and processes.
    """

    def __init__(self, config: LibraryConfig | None = None, *, cache=None) -> None:
        self.config = config or LibraryConfig()
        self.cache = cache

    # -- phase 1: ingest -------------------------------------------------

    def ingest(self, source) -> tuple[LibraryIndex, IngestStats]:
        """Resolve ``source`` into an index.

        ``source`` may already be a :class:`LibraryIndex` (stats report
        zero lookups), a path to a saved ``.npz`` index, or a directory
        of candidate images (cache-backed ingestion).
        """
        cfg = self.config
        if isinstance(source, LibraryIndex):
            return source, IngestStats(images=source.size)
        source = str(source)
        if source.endswith(".npz"):
            index = LibraryIndex.load(source)
            return index, IngestStats(images=index.size)
        return LibraryIndex.from_directory(
            source,
            tile_size=cfg.tile_size,
            thumb_size=cfg.thumb_size,
            sketch_grid=cfg.sketch_grid,
            cache=self.cache,
        )

    # -- full pipeline ---------------------------------------------------

    def generate(
        self,
        library,
        target_image: AnyImage,
        *,
        seed: int | None = None,
        observer: Callable[[str, dict], None] | None = None,
    ) -> LibraryMosaicResult:
        """Compose ``target_image`` from tiles of ``library``.

        ``observer(kind, payload)`` receives a ``("phase", {...})`` event
        after each of :data:`PHASES` completes, with per-phase stats in
        the payload — the job runner forwards these to the gateway so
        HTTP clients watch ingest/shortlist/assign/render live.
        Exceptions from the observer propagate and abort the pipeline.
        """
        cfg = self.config
        timings = TimingBreakdown()

        def emit(phase: str, **stats) -> None:
            if observer is not None:
                payload = {"phase": phase, "seconds": timings.get(phase)}
                payload.update(stats)
                observer("phase", payload)

        target_image = ensure_gray(check_image(target_image, "target_image"))
        grid = TileGrid.for_image(target_image, cfg.tile_size)

        with timings.measure("ingest"):
            index, ingest_stats = self.ingest(library)
        if index.tile_size != cfg.tile_size:
            raise ValidationError(
                f"library index tile size {index.tile_size} does not match "
                f"configured tile_size {cfg.tile_size}"
            )
        if index.sketch_grid != cfg.sketch_grid:
            raise ValidationError(
                f"library index sketch grid {index.sketch_grid} does not "
                f"match configured sketch_grid {cfg.sketch_grid}"
            )
        emit("ingest", **ingest_stats.as_dict())

        metric = get_metric(cfg.metric)
        with timings.measure("shortlist"):
            shortlister = ClusterShortlister(
                index.sketches,
                metric.prepare(index.tiles),
                metric,
                clusters=cfg.clusters,
                probes=cfg.cluster_probes,
                seed=seed,
                backend=cfg.array_backend,
            )
            target_tiles = grid.split(target_image)
            target_sketches = tile_features(target_tiles, grid=cfg.sketch_grid)
            candidates = shortlister.shortlist(
                target_tiles, target_sketches, cfg.top_k
            )
        emit("shortlist", cells=candidates.cells, top_k=candidates.top_k,
             **candidates.meta)

        with timings.measure("assign"):
            assignment = get_assigner(cfg.assigner).solve(
                candidates.indices,
                candidates.costs,
                repetition_penalty=cfg.repetition_penalty,
                refine_iters=cfg.refine_iters,
                seed=seed,
            )
        emit("assign", total_cost=assignment.total_cost, **assignment.meta)

        with timings.measure("render"):
            cell = resolve_cell_size(
                grid.rows, grid.cols, cfg.tile_size, cfg.out_size
            )
            means, stds = cell_stats(target_tiles)
            image = render_mosaic(
                index.thumbs,
                assignment.choice,
                grid.rows,
                grid.cols,
                cell,
                target_means=means,
                target_stds=stds,
                color_adjust=cfg.color_adjust,
            )
        emit("render", height=image.shape[0], width=image.shape[1],
             cell_size=cell)

        meta = {
            "library": {
                "library_size": index.size,
                "ingest_images": ingest_stats.images,
                "ingest_hits": ingest_stats.hits,
                "ingest_misses": ingest_stats.misses,
                "ingest_hit_rate": ingest_stats.hit_rate,
                "shortlist_k": candidates.top_k,
                "shortlist_scanned_mean": candidates.meta["scanned_mean"],
                "clusters": candidates.meta["clusters"],
                "max_reuse": assignment.max_reuse,
                "unique_tiles": assignment.unique_tiles,
                "assigner": cfg.assigner,
                "backend": candidates.meta["backend"],
            },
            "assignment": dict(assignment.meta),
            # Kind-level shortlist stats, same shape as the mosaic
            # pipeline's meta["shortlist"] (repro.cost.sparse): the
            # worker pool folds both into shortlist_pairs_evaluated /
            # shortlist_fallback_total without caring which engine ran.
            "shortlist": {
                "top_k": candidates.top_k,
                "pairs_evaluated": int(candidates.meta["scanned_total"]),
                "pairs_total": int(candidates.cells) * int(index.size),
                "fallback": 0,
            },
        }
        return LibraryMosaicResult(
            image=image,
            choice=assignment.choice,
            total_error=assignment.total_cost,
            timings=timings,
            config=cfg,
            meta=meta,
        )
