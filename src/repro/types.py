"""Shared type aliases and dtype conventions.

The whole library standardises on:

* grayscale images: ``uint8`` arrays of shape ``(H, W)``;
* colour images: ``uint8`` arrays of shape ``(H, W, 3)``;
* error matrices: ``int64`` arrays of shape ``(S, S)`` where entry
  ``E[u, v]`` is the error of placing *input* tile ``u`` at *target*
  position ``v`` (the paper's ``w_{u,v}``);
* permutations: ``intp`` arrays ``p`` of length ``S`` where ``p[v] = u``
  means input tile ``u`` is placed at target position ``v``.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = [
    "GrayImage",
    "ColorImage",
    "AnyImage",
    "ErrorMatrix",
    "PermutationArray",
    "TileStack",
    "PIXEL_DTYPE",
    "ERROR_DTYPE",
    "INDEX_DTYPE",
]

#: Pixel storage dtype for all images.
PIXEL_DTYPE = np.uint8

#: Accumulator dtype for tile errors; ``2048**2 * 255 < 2**40`` so int64 is
#: safe for any image size this library supports.
ERROR_DTYPE = np.int64

#: Index dtype for permutations and tile ids.
INDEX_DTYPE = np.intp

GrayImage: TypeAlias = npt.NDArray[np.uint8]
ColorImage: TypeAlias = npt.NDArray[np.uint8]
AnyImage: TypeAlias = npt.NDArray[np.uint8]
ErrorMatrix: TypeAlias = npt.NDArray[np.int64]
PermutationArray: TypeAlias = npt.NDArray[np.intp]

#: Stack of S tiles, shape ``(S, M, M)`` (gray) or ``(S, M, M, 3)`` (colour).
TileStack: TypeAlias = npt.NDArray[np.uint8]
