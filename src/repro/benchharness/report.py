"""Report generation: regenerate the paper's tables as text.

Each ``table_*`` function returns a formatted string with (a) the paper's
published numbers (for reference), (b) the calibrated model prediction for
the paper's hardware, and (c) measurements of this repository's
implementations on the current machine at the active profile.  The CLI
(``python -m repro.cli bench``) and EXPERIMENTS.md are built from these.
"""

from __future__ import annotations

from repro.benchharness.runner import (
    measure_error_matrix,
    measure_rearrangement,
    measure_total_pipeline,
    quality_comparison,
)
from repro.benchharness.tables import format_table
from repro.benchharness.workloads import paper_grid, workload_pair
from repro.gpusim.perfmodel import PerformanceModel

__all__ = ["table1", "table2", "table3", "table4", "all_tables"]

from repro.benchharness.paper_data import TABLE1_TOTAL_ERROR

_MODEL = PerformanceModel()

#: Paper Table I keyed by tiles-per-side (the CLI table's row label).
PAPER_TABLE1 = {16: TABLE1_TOTAL_ERROR[256], 32: TABLE1_TOTAL_ERROR[1024],
                64: TABLE1_TOTAL_ERROR[4096]}


def table1(profile: str | None = None) -> str:
    """Total error: optimization vs approximation (CPU and GPU order)."""
    rows = []
    if (profile or "default") == "full":
        grid = [(512, t) for t in (16, 32, 64)]
    else:
        grid = [(256, t) for t in (4, 8, 16)]
    for n, tiles in grid:
        q = quality_comparison(workload_pair(n, tiles))
        paper = PAPER_TABLE1.get(tiles, ("-", "-", "-")) if n == 512 else ("-", "-", "-")
        rows.append(
            [
                f"{tiles}x{tiles}",
                q["optimization"],
                q["approximation_cpu"],
                q["approximation_gpu"],
                paper[0],
                paper[1],
                paper[2],
            ]
        )
    return format_table(
        "Table I reproduction - total error (measured | paper)",
        ["S", "opt", "approx CPU-order", "approx GPU-order",
         "paper opt", "paper apx CPU", "paper apx GPU"],
        rows,
    )


def table2(profile: str | None = None) -> str:
    """Step-2 error-matrix time: CPU model vs GPU model vs paper model."""
    rows = []
    for n, tiles in paper_grid(profile):
        m = measure_error_matrix(workload_pair(n, tiles))
        rows.append(
            [
                f"{n}x{n}",
                f"{tiles}x{tiles}",
                m.cpu_seconds,
                m.gpu_seconds,
                m.measured_speedup,
                m.model_cpu_seconds,
                m.model_gpu_seconds,
                m.model_speedup,
            ]
        )
    return format_table(
        "Table II reproduction - Step 2 error values computation",
        ["size", "S", "CPU[s]", "GPU[s]", "speedup",
         "model CPU[s]", "model GPU[s]", "model speedup"],
        rows,
    )


def table3(profile: str | None = None) -> str:
    """Step-3 rearrangement time for both algorithms."""
    rows = []
    for n, tiles in paper_grid(profile):
        m = measure_rearrangement(workload_pair(n, tiles))
        opt, apx = m["optimization"], m["approximation"]
        rows.append(
            [
                f"{n}x{n}",
                f"{tiles}x{tiles}",
                opt.cpu_seconds,
                apx.cpu_seconds,
                apx.gpu_seconds,
                apx.measured_speedup,
                opt.model_cpu_seconds,
                apx.model_speedup,
            ]
        )
    return format_table(
        "Table III reproduction - Step 3 rearrangement of tiles",
        ["size", "S", "opt CPU[s]", "apx CPU[s]", "apx GPU[s]",
         "apx speedup", "model opt[s]", "model apx speedup"],
        rows,
    )


def table4(profile: str | None = None) -> str:
    """End-to-end generation time for both algorithms."""
    rows = []
    for n, tiles in paper_grid(profile):
        m = measure_total_pipeline(workload_pair(n, tiles))
        opt, apx = m["optimization"], m["approximation"]
        rows.append(
            [
                f"{n}x{n}",
                f"{tiles}x{tiles}",
                opt.cpu_seconds,
                opt.gpu_seconds,
                opt.measured_speedup,
                apx.cpu_seconds,
                apx.gpu_seconds,
                apx.measured_speedup,
                opt.model_speedup,
                apx.model_speedup,
            ]
        )
    return format_table(
        "Table IV reproduction - total photomosaic generation time",
        ["size", "S", "opt CPU[s]", "opt CPU+GPU[s]", "opt spdup",
         "apx CPU[s]", "apx GPU[s]", "apx spdup",
         "model opt spdup", "model apx spdup"],
        rows,
    )


def all_tables(profile: str | None = None) -> str:
    """All four tables, separated by blank lines."""
    return "\n\n".join(fn(profile) for fn in (table1, table2, table3, table4))
