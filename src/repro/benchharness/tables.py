"""Plain-text table formatting in the style of the paper's tables."""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "speedup"]


def speedup(cpu_seconds: float, gpu_seconds: float) -> float:
    """CPU/GPU ratio, the paper's "Speed-up" column."""
    if gpu_seconds <= 0:
        return float("inf")
    return cpu_seconds / gpu_seconds


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.3f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an aligned monospace table with a title line."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
