"""Benchmark harness: workloads, experiment runners and table formatting
for the paper's Tables I-IV and figures."""

from __future__ import annotations

from repro.benchharness.runner import (
    measure_error_matrix,
    measure_rearrangement,
    measure_total_pipeline,
    quality_comparison,
)
from repro.benchharness.tables import format_table, speedup
from repro.benchharness.workloads import (
    PAPER_IMAGE_SIZES,
    PAPER_PAIRS,
    PAPER_TILE_GRIDS,
    Workload,
    default_profile,
    paper_grid,
    workload_pair,
)

__all__ = [
    "Workload",
    "workload_pair",
    "paper_grid",
    "default_profile",
    "PAPER_IMAGE_SIZES",
    "PAPER_TILE_GRIDS",
    "PAPER_PAIRS",
    "measure_error_matrix",
    "measure_rearrangement",
    "measure_total_pipeline",
    "quality_comparison",
    "format_table",
    "speedup",
]
