"""Workload definitions mirroring the paper's evaluation grid.

The paper evaluates on image sizes 512/1024/2048 with 16^2/32^2/64^2 tiles
and four image pairs (Figs. 7-8).  Pure-Python baselines make the largest
cells impractically slow on CI, so the harness exposes two profiles (see
DESIGN.md section 5): ``default`` (scaled down, same shape) and ``full``
(the paper grid, enabled with ``REPRO_BENCH_FULL=1``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.imaging.synthetic import standard_image
from repro.tiles.grid import TileGrid
from repro.types import GrayImage, TileStack

__all__ = [
    "Workload",
    "workload_pair",
    "paper_grid",
    "default_profile",
    "PAPER_IMAGE_SIZES",
    "PAPER_TILE_GRIDS",
    "PAPER_PAIRS",
]

#: The paper's evaluation grid (Tables II-IV).
PAPER_IMAGE_SIZES: tuple[int, ...] = (512, 1024, 2048)
#: Tiles per side: S = 16^2, 32^2, 64^2.
PAPER_TILE_GRIDS: tuple[int, ...] = (16, 32, 64)

#: The four (input -> target) pairs of Figs. 7-8, with ``portrait``
#: standing in for Lena (see DESIGN.md substitutions).
PAPER_PAIRS: tuple[tuple[str, str], ...] = (
    ("portrait", "sailboat"),
    ("airplane", "portrait"),
    ("peppers", "barbara"),
    ("tiffany", "baboon"),
)

#: Scaled-down grid with the same sweep shape: sizes shrink 8x, tile counts
#: 4x.  The cap keeps the pure-Python "serial CPU" baselines (O(S * N^2)
#: scalar operations for Step 2) within seconds per cell.
_DEFAULT_IMAGE_SIZES: tuple[int, ...] = (64, 128, 256)
_DEFAULT_TILE_GRIDS: tuple[int, ...] = (4, 8, 16)


@dataclass(frozen=True)
class Workload:
    """One experiment cell: an image pair at a given size and tiling."""

    input_name: str
    target_name: str
    n: int
    tiles_per_side: int

    @property
    def tile_count(self) -> int:
        return self.tiles_per_side**2

    @property
    def tile_size(self) -> int:
        return self.n // self.tiles_per_side

    @property
    def label(self) -> str:
        return (
            f"{self.input_name}->{self.target_name} "
            f"{self.n}x{self.n} S={self.tiles_per_side}^2"
        )

    def images(self) -> tuple[GrayImage, GrayImage]:
        """Deterministic (input, target) images for this cell."""
        return (
            standard_image(self.input_name, self.n),
            standard_image(self.target_name, self.n),
        )

    def tiles(self) -> tuple[TileStack, TileStack]:
        """Pre-split tile stacks for this cell."""
        inp, tgt = self.images()
        grid = TileGrid.from_tile_count(self.n, self.tiles_per_side)
        return grid.split(inp), grid.split(tgt)


def default_profile() -> str:
    """Active profile name: ``"full"`` when ``REPRO_BENCH_FULL=1``."""
    return "full" if os.environ.get("REPRO_BENCH_FULL", "") == "1" else "default"


def paper_grid(profile: str | None = None) -> list[tuple[int, int]]:
    """The ``(N, tiles_per_side)`` grid for ``profile``.

    ``full`` is the paper's own grid; ``default`` shrinks every axis while
    preserving the sweep shape so crossovers stay visible.
    """
    profile = profile or default_profile()
    if profile == "full":
        sizes, grids = PAPER_IMAGE_SIZES, PAPER_TILE_GRIDS
    elif profile == "default":
        sizes, grids = _DEFAULT_IMAGE_SIZES, _DEFAULT_TILE_GRIDS
    else:
        raise ValueError(f"unknown profile {profile!r} (use default|full)")
    return [(n, t) for n in sizes for t in grids]


def workload_pair(
    n: int, tiles_per_side: int, pair_index: int = 0
) -> Workload:
    """Workload for one of the paper's image pairs."""
    input_name, target_name = PAPER_PAIRS[pair_index % len(PAPER_PAIRS)]
    return Workload(
        input_name=input_name,
        target_name=target_name,
        n=n,
        tiles_per_side=tiles_per_side,
    )
