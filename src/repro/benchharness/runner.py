"""Experiment runners for the table reproductions.

Each runner measures this machine's "CPU model" (scalar pure-Python
implementation) against the "GPU model" (vectorised / virtual-GPU
implementation) and, where relevant, attaches the calibrated
:class:`~repro.gpusim.perfmodel.PerformanceModel` prediction for the
paper's hardware.  The measured pair reproduces the *shape* of the paper's
speedups; the model reproduces the magnitudes (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.assignment import get_solver
from repro.benchharness.workloads import Workload
from repro.cost.matrix import error_matrix, total_error
from repro.cost.reference import error_matrix_reference
from repro.gpusim.perfmodel import PerformanceModel
from repro.imaging.histogram import match_histogram
from repro.localsearch import local_search_parallel, local_search_serial
from repro.utils.timing import Stopwatch

__all__ = [
    "StepMeasurement",
    "measure_error_matrix",
    "measure_rearrangement",
    "measure_total_pipeline",
    "quality_comparison",
]

_MODEL = PerformanceModel()


@dataclass(frozen=True)
class StepMeasurement:
    """Measured + modelled times for one experiment cell."""

    workload: Workload
    cpu_seconds: float
    gpu_seconds: float
    model_cpu_seconds: float
    model_gpu_seconds: float
    extras: dict = field(default_factory=dict)

    @property
    def measured_speedup(self) -> float:
        return self.cpu_seconds / self.gpu_seconds if self.gpu_seconds > 0 else float("inf")

    @property
    def model_speedup(self) -> float:
        return (
            self.model_cpu_seconds / self.model_gpu_seconds
            if self.model_gpu_seconds > 0
            else float("inf")
        )


def _prepared_tiles(workload: Workload) -> tuple[np.ndarray, np.ndarray]:
    """Histogram-matched tile stacks for a workload (paper Section II)."""
    inp, tgt = workload.images()
    adjusted = match_histogram(inp, tgt)
    from repro.tiles.grid import TileGrid

    grid = TileGrid.from_tile_count(workload.n, workload.tiles_per_side)
    return grid.split(adjusted), grid.split(tgt)


def measure_error_matrix(workload: Workload) -> StepMeasurement:
    """Table II cell: Step-2 time, scalar loop vs vectorised kernel."""
    tiles_in, tiles_tg = _prepared_tiles(workload)
    with Stopwatch() as sw_cpu:
        m_cpu = error_matrix_reference(tiles_in, tiles_tg)
    with Stopwatch() as sw_gpu:
        m_gpu = error_matrix(tiles_in, tiles_tg, "sad")
    if not (m_cpu == m_gpu).all():
        raise AssertionError("CPU and GPU-model error matrices disagree")
    s = workload.tile_count
    return StepMeasurement(
        workload=workload,
        cpu_seconds=sw_cpu.elapsed,
        gpu_seconds=sw_gpu.elapsed,
        model_cpu_seconds=_MODEL.error_matrix_time(workload.n, s, "cpu"),
        model_gpu_seconds=_MODEL.error_matrix_time(workload.n, s, "gpu"),
    )


def measure_rearrangement(
    workload: Workload, *, solver: str = "scipy"
) -> dict[str, StepMeasurement]:
    """Table III cell: Step-3 times for optimization and approximation.

    Returns ``{"optimization": ..., "approximation": ...}``; the
    optimization entry reports the exact-matching time in both measured
    columns (the paper never runs matching on the GPU).
    """
    tiles_in, tiles_tg = _prepared_tiles(workload)
    matrix = error_matrix(tiles_in, tiles_tg, "sad")
    s = workload.tile_count

    with Stopwatch() as sw_opt:
        opt = get_solver(solver).solve(matrix)
    with Stopwatch() as sw_serial:
        serial = local_search_serial(matrix)
    with Stopwatch() as sw_parallel:
        parallel = local_search_parallel(matrix)

    optimization = StepMeasurement(
        workload=workload,
        cpu_seconds=sw_opt.elapsed,
        gpu_seconds=sw_opt.elapsed,  # matching stays on the CPU (Section V)
        model_cpu_seconds=_MODEL.matching_time(s),
        model_gpu_seconds=_MODEL.matching_time(s),
        extras={"total_error": opt.total, "solver": solver},
    )
    approximation = StepMeasurement(
        workload=workload,
        cpu_seconds=sw_serial.elapsed,
        gpu_seconds=sw_parallel.elapsed,
        model_cpu_seconds=_MODEL.approximation_time(s, "cpu", sweeps=serial.sweeps),
        model_gpu_seconds=_MODEL.approximation_time(s, "gpu", sweeps=parallel.sweeps),
        extras={
            "serial_error": serial.total,
            "parallel_error": parallel.total,
            "optimal_error": opt.total,
            "serial_sweeps": serial.sweeps,
            "parallel_sweeps": parallel.sweeps,
        },
    )
    return {"optimization": optimization, "approximation": approximation}


def measure_total_pipeline(
    workload: Workload, *, solver: str = "scipy"
) -> dict[str, StepMeasurement]:
    """Table IV cell: end-to-end Step 2 + Step 3 for both algorithms.

    The "CPU" column uses the scalar Step 2 plus serial Step 3; the "GPU"
    column uses the vectorised Step 2 plus (for the approximation) the
    parallel Step 3 — exactly the paper's accelerated configuration.
    """
    step2 = measure_error_matrix(workload)
    step3 = measure_rearrangement(workload, solver=solver)
    s = workload.tile_count
    out: dict[str, StepMeasurement] = {}
    for algorithm in ("optimization", "approximation"):
        part = step3[algorithm]
        out[algorithm] = StepMeasurement(
            workload=workload,
            cpu_seconds=step2.cpu_seconds + part.cpu_seconds,
            gpu_seconds=step2.gpu_seconds + part.gpu_seconds,
            model_cpu_seconds=_MODEL.pipeline_time(workload.n, s, algorithm, "cpu"),
            model_gpu_seconds=_MODEL.pipeline_time(workload.n, s, algorithm, "gpu"),
            extras=part.extras,
        )
    return out


def quality_comparison(workload: Workload, *, solver: str = "scipy") -> dict[str, int]:
    """Table I cell: total error for the three algorithms on one pair."""
    tiles_in, tiles_tg = _prepared_tiles(workload)
    matrix = error_matrix(tiles_in, tiles_tg, "sad")
    opt = get_solver(solver).solve(matrix)
    serial = local_search_serial(matrix)
    parallel = local_search_parallel(matrix)
    if not (opt.total <= serial.total and opt.total <= parallel.total):
        raise AssertionError("optimization must lower-bound the approximations")
    return {
        "optimization": opt.total,
        "approximation_cpu": serial.total,
        "approximation_gpu": parallel.total,
        "serial_sweeps": serial.sweeps,
        "parallel_sweeps": parallel.sweeps,
        "total_error_check": total_error(matrix, opt.permutation),
    }
