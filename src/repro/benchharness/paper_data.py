"""The paper's published numbers, transcribed once, used everywhere.

Single source of truth for Tables I-IV and the Section IV-A sweep counts
of Yang, Ito & Nakano (2017).  The export/report generators, the
performance-model calibration tests and the benchmark assertions all read
from here, so a transcription fix propagates everywhere at once.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_TOTAL_ERROR",
    "TABLE2_STEP2_TIME",
    "TABLE3_STEP3_TIME",
    "TABLE4_SPEEDUP",
    "SWEEP_COUNTS",
    "IMAGE_SIZES",
    "TILE_COUNTS",
    "headline_speedups",
]

#: The paper's evaluation grid.
IMAGE_SIZES: tuple[int, ...] = (512, 1024, 2048)
TILE_COUNTS: tuple[int, ...] = (256, 1024, 4096)  # 16^2, 32^2, 64^2

#: Table I (portrait->sailboat at N=512):
#: S -> (optimization, approximation CPU order, approximation GPU order).
TABLE1_TOTAL_ERROR: dict[int, tuple[int, int, int]] = {
    256: (7529146, 7701450, 7676311),
    1024: (5410140, 5520554, 5506782),
    4096: (3877820, 3945836, 4047410),
}

#: Table II: (N, S) -> (CPU seconds, GPU seconds, speedup).
TABLE2_STEP2_TIME: dict[tuple[int, int], tuple[float, float, float]] = {
    (512, 256): (0.397, 0.005, 78.30),
    (512, 1024): (1.599, 0.017, 92.12),
    (512, 4096): (6.253, 0.107, 58.22),
    (1024, 256): (1.574, 0.020, 77.28),
    (1024, 1024): (6.178, 0.077, 80.00),
    (1024, 4096): (24.890, 0.269, 92.70),
    (2048, 256): (6.238, 0.079, 78.56),
    (2048, 1024): (20.980, 0.316, 66.39),
    (2048, 4096): (98.485, 1.230, 80.08),
}

#: Table III: (N, S) -> (optimization CPU s, approx CPU s, approx GPU s,
#: approx speedup).
TABLE3_STEP3_TIME: dict[tuple[int, int], tuple[float, float, float, float]] = {
    (512, 256): (0.062, 0.006, 0.012, 0.50),
    (512, 1024): (15.686, 0.179, 0.063, 2.84),
    (512, 4096): (1209.082, 6.660, 0.343, 19.42),
    (1024, 256): (0.070, 0.006, 0.011, 0.55),
    (1024, 1024): (15.518, 0.180, 0.069, 2.61),
    (1024, 4096): (1280.027, 6.906, 0.372, 18.56),
    (2048, 256): (0.070, 0.008, 0.014, 0.57),
    (2048, 1024): (15.877, 0.169, 0.065, 2.60),
    (2048, 4096): (1304.024, 7.467, 0.352, 21.21),
}

#: Table IV: (N, S) -> (optimization end-to-end speedup, approximation
#: end-to-end speedup).
TABLE4_SPEEDUP: dict[tuple[int, int], tuple[float, float]] = {
    (512, 256): (6.76, 23.24),
    (512, 1024): (1.10, 21.98),
    (512, 4096): (1.01, 28.67),
    (1024, 256): (17.89, 47.79),
    (1024, 1024): (1.39, 43.04),
    (1024, 4096): (1.02, 49.45),
    (2048, 256): (40.74, 63.57),
    (2048, 1024): (2.28, 54.75),
    (2048, 4096): (1.07, 66.76),
}

#: Section IV-A: maximum sweep count k per tile count.
SWEEP_COUNTS: dict[int, int] = {256: 9, 1024: 8, 4096: 16}


def headline_speedups() -> tuple[float, float]:
    """The abstract's claims: (optimization 40x, approximation 66x)."""
    optimization = max(v[0] for v in TABLE4_SPEEDUP.values())
    approximation = max(v[1] for v in TABLE4_SPEEDUP.values())
    return optimization, approximation
