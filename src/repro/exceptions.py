"""Exception hierarchy for :mod:`repro`.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors from NumPy or the standard library.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ImageFormatError",
    "TilingError",
    "SolverError",
    "ConvergenceError",
    "GpuSimError",
    "JobError",
    "JobTimeout",
    "JobCancelled",
    "AdmissionRejected",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (shape, dtype, range or semantics)."""


class ImageFormatError(ReproError, ValueError):
    """An image file or byte stream could not be parsed or encoded."""


class TilingError(ReproError, ValueError):
    """An image cannot be divided into the requested tile grid."""


class SolverError(ReproError, RuntimeError):
    """An assignment solver failed to produce a valid perfect matching."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm exceeded its iteration budget."""


class GpuSimError(ReproError, RuntimeError):
    """The virtual GPU was misused (bad launch config, memory fault, ...)."""


class JobError(ReproError, RuntimeError):
    """A mosaic job failed: bad manifest entry, runner crash, or pool misuse."""


class JobTimeout(JobError):
    """A job attempt exceeded its wall-clock budget."""


class JobCancelled(JobError):
    """A job was cancelled before (or while) running."""


class AdmissionRejected(JobError):
    """The streaming gateway's bounded admission queue is full.

    Raised by :meth:`repro.service.gateway.MosaicGateway.submit` as typed
    backpressure: the caller decides whether to retry later, shed the job,
    or block — the gateway never queues beyond its bound silently.
    """
