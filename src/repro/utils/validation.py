"""Argument-validation helpers.

All public entry points of the library validate their inputs through these
functions so error messages are uniform and failures happen at the API
boundary, not deep inside a vectorised kernel.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import ValidationError
from repro.types import ERROR_DTYPE, PIXEL_DTYPE

__all__ = [
    "check_positive_int",
    "check_image",
    "check_gray_image",
    "check_error_matrix",
    "check_permutation",
    "check_power_compatible",
]


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an ``int`` after checking it is a positive integer.

    Accepts Python ints and NumPy integer scalars; rejects bools, floats and
    anything non-positive.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return value


def check_image(image: Any, name: str = "image") -> np.ndarray:
    """Validate a grayscale or colour image and return it as ``uint8``.

    A valid image is a ``(H, W)`` or ``(H, W, 3)`` ``uint8`` array with
    ``H, W >= 1``.  Arrays of other integer dtypes are accepted if their
    values fit in ``[0, 255]`` and are copied to ``uint8``.
    """
    if not isinstance(image, np.ndarray):
        raise ValidationError(f"{name} must be a numpy array, got {type(image).__name__}")
    if image.ndim not in (2, 3):
        raise ValidationError(f"{name} must have 2 or 3 dimensions, got shape {image.shape}")
    if image.ndim == 3 and image.shape[2] != 3:
        raise ValidationError(f"{name} colour images must have 3 channels, got {image.shape[2]}")
    if image.size == 0:
        raise ValidationError(f"{name} must be non-empty, got shape {image.shape}")
    if image.dtype == PIXEL_DTYPE:
        return image
    if not np.issubdtype(image.dtype, np.integer):
        raise ValidationError(f"{name} must have an integer dtype, got {image.dtype}")
    if image.min() < 0 or image.max() > 255:
        raise ValidationError(f"{name} values must lie in [0, 255] to convert to uint8")
    return image.astype(PIXEL_DTYPE)


def check_gray_image(image: Any, name: str = "image") -> np.ndarray:
    """Validate a grayscale image; reject colour arrays."""
    image = check_image(image, name)
    if image.ndim != 2:
        raise ValidationError(f"{name} must be grayscale (2-D), got shape {image.shape}")
    return image


def check_error_matrix(matrix: Any, name: str = "error_matrix") -> np.ndarray:
    """Validate a square, non-negative error matrix; return it as ``int64``."""
    if not isinstance(matrix, np.ndarray):
        raise ValidationError(f"{name} must be a numpy array, got {type(matrix).__name__}")
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.issubdtype(matrix.dtype, np.integer) and not np.issubdtype(
        matrix.dtype, np.floating
    ):
        raise ValidationError(f"{name} must be numeric, got dtype {matrix.dtype}")
    if np.issubdtype(matrix.dtype, np.floating):
        if not np.isfinite(matrix).all():
            raise ValidationError(f"{name} must be finite")
        matrix = np.rint(matrix)
    if (matrix < 0).any():
        raise ValidationError(f"{name} must be non-negative")
    return matrix.astype(ERROR_DTYPE, copy=False)


def check_permutation(perm: Any, size: int | None = None, name: str = "permutation") -> np.ndarray:
    """Validate that ``perm`` is a permutation of ``0..len(perm)-1``.

    When ``size`` is given the permutation must additionally have exactly
    that length.  Returns the permutation as an ``intp`` array.
    """
    perm = np.asarray(perm)
    if perm.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {perm.shape}")
    if not np.issubdtype(perm.dtype, np.integer):
        raise ValidationError(f"{name} must be integer, got dtype {perm.dtype}")
    n = perm.shape[0]
    if size is not None and n != size:
        raise ValidationError(f"{name} must have length {size}, got {n}")
    if n == 0:
        raise ValidationError(f"{name} must be non-empty")
    seen = np.zeros(n, dtype=bool)
    if perm.min() < 0 or perm.max() >= n:
        raise ValidationError(f"{name} entries must lie in [0, {n - 1}]")
    seen[perm] = True
    if not seen.all():
        raise ValidationError(f"{name} is not a bijection: some indices repeat")
    return perm.astype(np.intp, copy=False)


def check_power_compatible(image_side: int, tile_side: int) -> int:
    """Check ``tile_side`` evenly divides ``image_side``; return tiles/side."""
    image_side = check_positive_int(image_side, "image_side")
    tile_side = check_positive_int(tile_side, "tile_side")
    if image_side % tile_side != 0:
        raise ValidationError(
            f"tile size {tile_side} does not evenly divide image side {image_side}"
        )
    return image_side // tile_side
