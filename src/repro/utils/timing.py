"""Timing primitives for the benchmark harness.

``Stopwatch`` is a context manager around :func:`time.perf_counter`;
``TimingBreakdown`` accumulates named phase durations, mirroring the paper's
separation of Step 2 (error matrix) and Step 3 (rearrangement) times.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, TypeVar

__all__ = ["Stopwatch", "TimingBreakdown", "time_callable"]

T = TypeVar("T")


class Stopwatch:
    """Context-manager stopwatch measuring wall-clock seconds.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class TimingBreakdown:
    """Accumulates named phase durations (seconds).

    Phases repeat-add, so calling :meth:`add` twice for the same phase sums
    the durations — convenient for iterative algorithms.  :meth:`add` is
    thread-safe, so one breakdown can collect phases from a pool of workers
    (the job service merges per-job breakdowns this way).
    """

    phases: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks don't pickle; breakdowns cross process boundaries inside
        # MosaicResult when the job service runs with a process executor.
        return {"phases": dict(self.phases)}

    def __setstate__(self, state: dict) -> None:
        self.phases = state["phases"]
        self._lock = threading.Lock()

    def add(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to the accumulated time of ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative duration for phase {phase!r}: {seconds}")
        with self._lock:
            self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def measure(self, phase: str) -> "_PhaseTimer":
        """Return a context manager that times a block into ``phase``."""
        return _PhaseTimer(self, phase)

    @property
    def total(self) -> float:
        """Sum of all phase durations."""
        return sum(self.phases.values())

    def __getitem__(self, phase: str) -> float:
        return self.phases[phase]

    def get(self, phase: str, default: float = 0.0) -> float:
        return self.phases.get(phase, default)

    def merged(self, other: "TimingBreakdown") -> "TimingBreakdown":
        """Return a new breakdown with phase-wise sums of ``self`` and ``other``."""
        out = TimingBreakdown(dict(self.phases))
        for phase, seconds in other.phases.items():
            out.add(phase, seconds)
        return out

    @classmethod
    def merge_all(cls, breakdowns: Iterable["TimingBreakdown"]) -> "TimingBreakdown":
        """Phase-wise sum of any number of breakdowns (empty input → empty)."""
        out = cls()
        for breakdown in breakdowns:
            for phase, seconds in breakdown.phases.items():
                out.add(phase, seconds)
        return out

    def as_dict(self) -> dict[str, float]:
        """Snapshot copy of the phase table (safe to mutate or serialise)."""
        with self._lock:
            return dict(self.phases)


class _PhaseTimer:
    def __init__(self, breakdown: TimingBreakdown, phase: str) -> None:
        self._breakdown = breakdown
        self._phase = phase
        self._sw = Stopwatch()

    def __enter__(self) -> "_PhaseTimer":
        self._sw.__enter__()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._sw.__exit__(*exc_info)
        self._breakdown.add(self._phase, self._sw.elapsed)


def time_callable(fn: Callable[[], T], repeats: int = 1) -> tuple[T, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best wall time).

    Taking the minimum over repeats follows the standard ``timeit``
    recommendation: the minimum is the least noisy estimator of the true
    cost because all noise is additive.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: T
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best
