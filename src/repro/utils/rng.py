"""Deterministic random-number-generator helpers.

Every randomised component of the library takes either an integer seed or an
existing :class:`numpy.random.Generator`; :func:`make_rng` normalises both
forms. Passing ``None`` yields a generator seeded from entropy — allowed but
never the default anywhere in this library, so examples and benches are
reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_seeds"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``Generator`` instances pass through unchanged so callers can thread one
    generator through a pipeline and keep a single random stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int | None, n: int) -> list[int]:
    """Derive ``n`` independent child seeds from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning, so the children are
    statistically independent and the whole family is reproducible from the
    parent seed.  The job service hands each queued job its own child seed
    this way: a batch re-run with the same manifest seed replays every job's
    random stream exactly, regardless of worker count or completion order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = np.random.SeedSequence(seed)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in parent.spawn(n)]
