"""Deterministic random-number-generator helpers.

Every randomised component of the library takes either an integer seed or an
existing :class:`numpy.random.Generator`; :func:`make_rng` normalises both
forms. Passing ``None`` yields a generator seeded from entropy — allowed but
never the default anywhere in this library, so examples and benches are
reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``Generator`` instances pass through unchanged so callers can thread one
    generator through a pipeline and keep a single random stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
