"""Shared infrastructure: validation, timing, RNG and logging helpers."""

from __future__ import annotations

from repro.utils.rng import make_rng, spawn_seeds
from repro.utils.timing import Stopwatch, TimingBreakdown, time_callable
from repro.utils.validation import (
    check_error_matrix,
    check_gray_image,
    check_image,
    check_permutation,
    check_positive_int,
    check_power_compatible,
)

__all__ = [
    "make_rng",
    "spawn_seeds",
    "Stopwatch",
    "TimingBreakdown",
    "time_callable",
    "check_error_matrix",
    "check_gray_image",
    "check_image",
    "check_permutation",
    "check_positive_int",
    "check_power_compatible",
]
