"""Small shared array helpers for the hot paths."""

from __future__ import annotations

import functools
import io
import mmap
import os
import struct
import zipfile

import numpy as np
from numpy.lib import format as _npformat

__all__ = ["cached_positions", "mmap_npz_arrays"]


@functools.lru_cache(maxsize=128)
def cached_positions(size: int) -> np.ndarray:
    """Read-only ``arange(size)`` shared across calls.

    The sweep loops and Eq.-(2) evaluations used to allocate a fresh
    ``np.arange(S)`` per call (per sweep, even); for video/batch
    workloads that is thousands of identical allocations.  The returned
    array is marked read-only so one caller cannot corrupt another's
    view — callers that need to mutate must copy.
    """
    positions = np.arange(size, dtype=np.intp)
    positions.setflags(write=False)
    return positions


def mmap_npz_arrays(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Memory-map the members of an *uncompressed* ``.npz`` file.

    ``np.load`` ignores ``mmap_mode`` for zipped files, so a warm cache
    hit through it always heap-copies the whole payload.  ``np.savez``
    stores members uncompressed (``ZIP_STORED``), which means each
    member's ``.npy`` bytes sit contiguously in the file — this maps the
    file once and returns read-only ``np.frombuffer`` views over the
    mapping, so repeated reads of a multi-hundred-MB error matrix cost
    page-table entries, not copies.  The mapping stays alive through the
    arrays' ``base`` references.

    Raises :class:`ValueError` for compressed, object-dtype, or
    otherwise unmappable members — callers fall back to a copying read.
    """
    with open(path, "rb") as fh:
        mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    out: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:  # central directory only
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"member {info.filename!r} is compressed")
            # The local file header's name/extra lengths may differ from
            # the central directory's; read them from the header itself.
            header = mapping[info.header_offset : info.header_offset + 30]
            if len(header) != 30 or header[:4] != b"PK\x03\x04":
                raise ValueError(f"bad local header for {info.filename!r}")
            name_len, extra_len = struct.unpack("<HH", header[26:30])
            start = info.header_offset + 30 + name_len + extra_len
            member = io.BytesIO(mapping[start : start + min(info.file_size, 4096)])
            version = _npformat.read_magic(member)
            if version == (1, 0):
                shape, fortran, dtype = _npformat.read_array_header_1_0(member)
            elif version == (2, 0):
                shape, fortran, dtype = _npformat.read_array_header_2_0(member)
            else:
                raise ValueError(f"unsupported npy format version {version}")
            if dtype.hasobject:
                raise ValueError(f"member {info.filename!r} has object dtype")
            count = int(np.prod(shape, dtype=np.int64))
            array = np.frombuffer(
                mapping, dtype=dtype, count=count, offset=start + member.tell()
            )
            array = array.reshape(shape, order="F" if fortran else "C")
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            out[name] = array
    return out
