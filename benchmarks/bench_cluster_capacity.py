#!/usr/bin/env python
"""Cluster capacity curves: jobs/sec and stream lag at 1/2/3 nodes (PR 10).

Stands up a real coordinator + N ``serve-node`` worker processes (the
same CLI entrypoints operators run), drives them with the seeded
mixed-traffic load generator, and records aggregate throughput and the
p50/p99 replicate->serve stream lag per topology size.  The acceptance
envelope: three nodes must clear >= 1.6x the single-node jobs/sec under
the identical load.

Honesty note for small hosts: each job's wall-clock is floored by
``PacedRunner`` (``serve-node --job-floor-seconds``), a GIL-releasing
sleep that emulates realistically sized jobs so capacity scales with
worker slots rather than with one box's arithmetic throughput.  The
floor is disclosed in every record (``job_floor_seconds``) and in the
summary (``paced``).

The harness is **resumable** (same JSON-lines idiom as
``bench_batched_step2.py``): one record per experiment key, re-runs skip
finished keys, ``--no-resume`` truncates first.

CI (the cluster-smoke job) and local use::

    # tiny fresh sweep (1 vs 2 nodes, loose floor); exits 1 on failure
    PYTHONPATH=src python benchmarks/bench_cluster_capacity.py \
        --out /tmp/bench10.jsonl --no-resume --smoke

    # committed-record envelope: >= 1.6x aggregate throughput at 3 nodes
    PYTHONPATH=src python benchmarks/bench_cluster_capacity.py \
        --check benchmarks/BENCH_10.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.service.client import MosaicServiceClient  # noqa: E402
from repro.service.cluster.loadgen import LoadConfig, run_load  # noqa: E402

SCHEMA = "repro-cluster-capacity/1"

#: Acceptance envelope (ISSUE 10): three nodes must reach >= 1.6x the
#: single-node aggregate jobs/sec under the identical seeded load.
ENVELOPE_NODES = 3
ENVELOPE_MIN_SPEEDUP = 1.6

#: Looser floor for the tiny CI smoke run (1 vs 2 nodes on a noisy
#: shared runner; the committed record carries the real envelope).
SMOKE_MIN_SPEEDUP = 1.15

#: A stream-lag p99 above this means the replication fabric is stalling,
#: not merely busy — fail the envelope rather than ship the number.
MAX_LAG_P99_S = 10.0

DEFAULT_NODES_LIST = (1, 2, 3)
DEFAULT_FLOOR = 0.5
DEFAULT_CLIENTS = 6
DEFAULT_JOBS_PER_CLIENT = 4
DEFAULT_WORKERS = 2
SEED = 10


def _read_listening(process: subprocess.Popen) -> dict:
    line = process.stdout.readline()
    if not line:
        raise RuntimeError(
            f"process exited early: {process.stderr.read()[-2000:]}"
        )
    info = json.loads(line)
    assert info["kind"] == "listening", info
    return info


def _spawn(argv: list[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("PHOTOMOSAIC_TOKEN", None)  # benches run the open topology
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _stop(process: subprocess.Popen, timeout: float = 30.0) -> None:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
        try:
            process.communicate(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.communicate()


class Topology:
    """A coordinator plus N worker-node subprocesses, torn down in order."""

    def __init__(self, nodes: int, floor: float, workers: int, root: str):
        self.coordinator = _spawn(
            ["serve-cluster", "--port", "0", "--heartbeat-deadline", "5.0"]
        )
        self.port = _read_listening(self.coordinator)["port"]
        self.nodes = []
        for index in range(nodes):
            node_root = os.path.join(root, f"n{index}")
            node = _spawn(
                [
                    "serve-node",
                    "--coordinator", f"127.0.0.1:{self.port}",
                    "--node-id", f"n{index}",
                    "--port", "0",
                    "--workers", str(workers),
                    "--job-floor-seconds", str(floor),
                    "--outdir", os.path.join(node_root, "out"),
                    "--cache-dir", os.path.join(node_root, "cache"),
                    "--heartbeat-interval", "0.5",
                ]
            )
            _read_listening(node)
            self.nodes.append(node)
        client = MosaicServiceClient(f"http://127.0.0.1:{self.port}")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.health().get("nodes_up") == nodes:
                break
            time.sleep(0.1)
        else:
            raise RuntimeError(f"{nodes} nodes never registered")

    def close(self) -> None:
        for node in self.nodes:
            _stop(node)
        _stop(self.coordinator)


def run_capacity(
    nodes: int,
    clients: int,
    jobs_per_client: int,
    floor: float,
    workers: int,
) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench10-") as root:
        topology = Topology(nodes, floor, workers, root)
        try:
            report = run_load(
                LoadConfig(
                    base_url=f"http://127.0.0.1:{topology.port}",
                    clients=clients,
                    jobs_per_client=jobs_per_client,
                    cancel_fraction=0.0,  # pure completion throughput
                    sparse_fraction=0.5,
                    seed=SEED,
                )
            )
        finally:
            topology.close()
    record = {
        "kind": "capacity",
        "nodes": nodes,
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "job_floor_seconds": floor,
        "workers_per_node": workers,
    }
    record.update(report.as_dict())
    return record


def _key(record: dict) -> str:
    if record["kind"] == "capacity":
        return (
            f"capacity|nodes={record['nodes']}|clients={record['clients']}"
            f"|jobs={record['jobs_per_client']}"
            f"|floor={record['job_floor_seconds']}"
            f"|workers={record['workers_per_node']}"
        )
    return record["kind"]


def _load_records(path: str) -> list[dict]:
    records = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def summarize(records: list[dict]) -> dict:
    """Envelope derived from the widest topology sweep on record."""
    capacity = [r for r in records if r["kind"] == "capacity"]
    peak = max(capacity, key=lambda r: r["nodes"], default=None)
    base = None
    speedup = None
    if peak is not None:
        base = next(
            (
                r
                for r in capacity
                if r["nodes"] == 1
                and r["clients"] == peak["clients"]
                and r["jobs_per_client"] == peak["jobs_per_client"]
                and r["job_floor_seconds"] == peak["job_floor_seconds"]
                and r["workers_per_node"] == peak["workers_per_node"]
            ),
            None,
        )
        if base is not None and base["jobs_per_second"] > 0:
            speedup = peak["jobs_per_second"] / base["jobs_per_second"]
    return {
        "kind": "summary",
        "schema": SCHEMA,
        "peak_nodes": peak["nodes"] if peak else None,
        "base_jobs_per_second": base["jobs_per_second"] if base else None,
        "peak_jobs_per_second": peak["jobs_per_second"] if peak else None,
        "speedup": speedup,
        "peak_stream_lag_p99_s": peak["stream_lag_p99_s"] if peak else None,
        "paced": bool(peak and peak["job_floor_seconds"] > 0),
        "clean": all(
            r["failed"] == 0 and r["errors"] == 0 for r in capacity
        ),
    }


def check_invariants(records: list[dict], min_speedup: float) -> list[str]:
    failures = []
    summary = summarize(records)
    if summary["peak_nodes"] is None:
        failures.append("no capacity records in the sweep")
        return failures
    if summary["base_jobs_per_second"] is None:
        failures.append(
            "no single-node baseline matching the widest topology's config"
        )
    elif summary["speedup"] < min_speedup:
        failures.append(
            f"aggregate speedup {summary['speedup']:.2f}x at "
            f"{summary['peak_nodes']} nodes < required {min_speedup:.2f}x"
        )
    if not summary["clean"]:
        failures.append("a load run saw failed jobs or submit errors")
    for record in records:
        if record["kind"] != "capacity":
            continue
        p99 = record["stream_lag_p99_s"]
        if p99 is None:
            failures.append(
                f"{_key(record)}: no stream-lag samples (ts never stamped?)"
            )
        elif p99 > MAX_LAG_P99_S:
            failures.append(
                f"{_key(record)}: stream lag p99 {p99:.2f}s > "
                f"{MAX_LAG_P99_S:.0f}s — replication fabric stalling"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_10.json", help="JSON-lines report")
    parser.add_argument(
        "--no-resume", action="store_true",
        help="truncate the report instead of skipping finished experiments",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"tiny CI sweep (1 vs 2 nodes, {SMOKE_MIN_SPEEDUP}x floor)",
    )
    parser.add_argument(
        "--check", default=None, metavar="PATH",
        help="no sweep: verify the envelope of a committed report and exit",
    )
    parser.add_argument("--nodes-list", type=int, nargs="+", default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--jobs-per-client", type=int, default=None)
    parser.add_argument("--floor", type=float, default=None)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)

    if args.check:
        records = _load_records(args.check)
        failures = check_invariants(records, ENVELOPE_MIN_SPEEDUP)
        summary = summarize(records)
        speedup = summary["speedup"]
        print(
            f"{args.check}: {speedup:.2f}x aggregate jobs/sec at "
            f"{summary['peak_nodes']} nodes vs 1 "
            f"(p99 stream lag {summary['peak_stream_lag_p99_s']}s, "
            f"paced={summary['paced']})"
            if speedup is not None
            else f"{args.check}: incomplete record"
        )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    if args.smoke:
        nodes_list = args.nodes_list or (1, 2)
        clients = args.clients or 4
        jobs_per_client = args.jobs_per_client or 2
        floor = args.floor if args.floor is not None else 0.3
        workers = args.workers or 2
        min_speedup = SMOKE_MIN_SPEEDUP
    else:
        nodes_list = args.nodes_list or DEFAULT_NODES_LIST
        clients = args.clients or DEFAULT_CLIENTS
        jobs_per_client = args.jobs_per_client or DEFAULT_JOBS_PER_CLIENT
        floor = args.floor if args.floor is not None else DEFAULT_FLOOR
        workers = args.workers or DEFAULT_WORKERS
        min_speedup = ENVELOPE_MIN_SPEEDUP

    if args.no_resume and os.path.exists(args.out):
        os.unlink(args.out)
    records = [r for r in _load_records(args.out) if r["kind"] != "summary"]
    finished = {_key(r) for r in records}

    def emit(record: dict) -> None:
        records.append(record)
        with open(args.out, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        lag = record["stream_lag_p99_s"]
        print(
            f"  nodes={record['nodes']}  "
            f"{record['jobs_per_second']:6.2f} jobs/s  "
            f"p99 lag {lag * 1e3:7.1f}ms  "
            f"({record['completed']} done, {record['failed']} failed, "
            f"{record['errors']} errors)"
            if lag is not None
            else f"  nodes={record['nodes']}  "
            f"{record['jobs_per_second']:6.2f} jobs/s  (no lag samples)"
        )

    print(
        f"cluster capacity sweep: nodes={list(nodes_list)} "
        f"clients={clients} jobs/client={jobs_per_client} "
        f"floor={floor}s workers/node={workers}"
    )
    for nodes in nodes_list:
        probe = {
            "kind": "capacity", "nodes": nodes, "clients": clients,
            "jobs_per_client": jobs_per_client, "job_floor_seconds": floor,
            "workers_per_node": workers,
        }
        if _key(probe) in finished:
            continue
        emit(run_capacity(nodes, clients, jobs_per_client, floor, workers))

    summary = summarize(records)
    with open(args.out, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(summary, sort_keys=True) + "\n")
    failures = check_invariants(records, min_speedup)
    if summary["speedup"] is not None:
        print(
            f"aggregate: {summary['speedup']:.2f}x at "
            f"{summary['peak_nodes']} nodes "
            f"(floor {min_speedup:.2f}x, paced={summary['paced']})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
