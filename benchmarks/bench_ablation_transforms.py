"""Ablation: dihedral tile transforms (extension beyond the paper).

Allowing each tile to be rotated/flipped multiplies Step-2 work by 8 and
buys a strictly lower optimal error.  This bench measures both sides of
the trade across the profile's tile grids.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_tiles, profile_grid
from repro.assignment import get_solver
from repro.cost.matrix import error_matrix
from repro.cost.transformed import transformed_error_matrix
from repro.utils.timing import Stopwatch

_N = max(n for n, _ in profile_grid())
_TILE_GRIDS = sorted({t for _, t in profile_grid()})


@pytest.mark.parametrize("tiles_per_side", _TILE_GRIDS)
def test_transformed_step2_timing(benchmark, tiles_per_side):
    tiles_in, tiles_tg = prepared_tiles(_N, tiles_per_side)
    matrix, codes = benchmark(
        lambda: transformed_error_matrix(tiles_in, tiles_tg)
    )
    with Stopwatch() as sw:
        plain = error_matrix(tiles_in, tiles_tg)
    benchmark.extra_info.update(
        {
            "S": tiles_per_side**2,
            "plain_step2_seconds": sw.elapsed,
            "work_ratio": benchmark.stats["mean"] / max(sw.elapsed, 1e-9),
            "transformed_entry_fraction": float((codes != 0).mean()),
        }
    )
    assert (matrix <= plain).all()


def test_transforms_improve_optimal_error(benchmark):
    t = _TILE_GRIDS[-1]
    tiles_in, tiles_tg = prepared_tiles(_N, t)

    def run():
        plain = get_solver("scipy").solve(error_matrix(tiles_in, tiles_tg)).total
        best, _ = transformed_error_matrix(tiles_in, tiles_tg)
        transformed = get_solver("scipy").solve(best).total
        return plain, transformed

    plain, transformed = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "plain_optimal": plain,
            "transformed_optimal": transformed,
            "improvement_pct": 100.0 * (plain - transformed) / plain,
        }
    )
    assert transformed <= plain
