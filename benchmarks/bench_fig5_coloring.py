"""Figure 5 / Section IV-B reproduction: edge-group construction cost.

The paper precomputes the colour classes P_1..P_S once per tile count and
reuses them across images.  This bench times that construction at each S of
the profile and verifies the Theorem-1 structure, plus the amortisation
claim: building groups once and running many searches must beat rebuilding
per search.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.coloring.groups import build_edge_groups
from repro.coloring.round_robin import edge_coloring_complete
from repro.coloring.verify import verify_color_classes
from repro.localsearch import local_search_parallel
from repro.utils.timing import Stopwatch

_TILE_GRIDS = sorted({t for _, t in profile_grid()})


@pytest.mark.parametrize("tiles_per_side", _TILE_GRIDS)
def test_fig5_coloring_construction(benchmark, tiles_per_side):
    s = tiles_per_side**2
    classes = benchmark(lambda: edge_coloring_complete(s))
    verify_color_classes(classes, s)
    nonempty = sum(1 for c in classes if c)
    benchmark.extra_info.update({"S": s, "color_classes": nonempty})
    assert nonempty == (s - 1 if s % 2 == 0 else s)


def test_fig5_precomputation_amortises(benchmark):
    """Groups built once (cached) vs rebuilt per run."""
    t = _TILE_GRIDS[-1]
    s = t * t
    matrix = prepared_matrix(max(n for n, _ in profile_grid()), t)

    def run():
        build_edge_groups.cache_clear()
        with Stopwatch() as sw_build:
            groups = build_edge_groups(s)
        with Stopwatch() as sw_search:
            local_search_parallel(matrix, groups=groups)
        return sw_build.elapsed, sw_search.elapsed

    build_s, search_s = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"build_seconds": build_s, "search_seconds": search_s}
    )
    # Rebuilding per frame would add build_s to every search; the cached
    # path must make the construction a one-off comparable to (or cheaper
    # than) a few searches.
    with Stopwatch() as sw_cached:
        build_edge_groups(s)
    assert sw_cached.elapsed < build_s / 10
