#!/usr/bin/env python
"""Quality-vs-speed frontier of the sparse Step-2 pipeline (PR 8).

Runs the canonical portrait/sailboat instance at poster scale (S=1024
tiles by default) through the 2-opt parallel pipeline — once exact
(dense Step 2) and once per shortlist width — and records the frontier:
pairs exact-scored, end-to-end seconds, total mosaic error, and the
error ratio against the exact run.  Written to ``BENCH_8.json``.

Invariants asserted on every run:

* the complete shortlist (``top_k = S``, checked at reduced scale to
  keep the run fast) is **bit-identical** to the dense pipeline;
* at ``S >= 1024``, ``top_k = 32`` exact-scores <= 10% of the S^2 pairs
  while landing within 2% of the exact total error, with zero fallback
  rows (the acceptance envelope pinned by ISSUE 8);
* sparse runs get faster than exact as the shortlist narrows.

Wall-clock fields are additionally compared against a committed record
with ``--baseline`` (the CI sparse-smoke job fails on a > 2x
regression)::

    PYTHONPATH=src python benchmarks/bench_sparse_step2.py --out BENCH_8.json
    PYTHONPATH=src python benchmarks/bench_sparse_step2.py \
        --baseline benchmarks/BENCH_8.json --max-ratio 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.imaging import standard_image
from repro.mosaic.generator import generate_photomosaic

SCHEMA = "repro-sparse-step2/1"

#: Shortlist widths swept for the frontier (the envelope is pinned at 32).
TOP_KS = (8, 16, 32, 64)

#: Seed for the shortlister's k-means, fixed so the record is reproducible.
SHORTLIST_SEED = 11

#: Acceptance envelope at S >= 1024, top_k = 32 (ISSUE 8).
ENVELOPE_TOP_K = 32
ENVELOPE_MAX_PAIRS_FRAC = 0.10
ENVELOPE_MAX_ERROR_RATIO = 1.02

#: Timing fields checked against the baseline (quality numbers are
#: machine-independent and asserted directly instead).
TIMED_FIELDS = ("exact_seconds",)


def _instance(s: int, tile: int):
    side = int(round(s**0.5))
    if side * side != s:
        raise SystemExit(f"--s must be a perfect square, got {s}")
    size = side * tile
    return (
        standard_image("portrait", size),
        standard_image("sailboat", size),
    )


def _run(inp, tgt, tile: int, top_k: int = 0):
    start = time.perf_counter()
    result = generate_photomosaic(
        inp,
        tgt,
        tile_size=tile,
        algorithm="parallel",
        shortlist_top_k=top_k,
        shortlist_seed=SHORTLIST_SEED,
    )
    return result, time.perf_counter() - start


def bench_frontier(s: int, tile: int) -> dict:
    inp, tgt = _instance(s, tile)
    exact, exact_seconds = _run(inp, tgt, tile)
    frontier = []
    for top_k in TOP_KS:
        sparse, seconds = _run(inp, tgt, tile, top_k=top_k)
        shortlist = sparse.meta["shortlist"]
        frontier.append(
            {
                "top_k": top_k,
                "seconds": seconds,
                "speedup": exact_seconds / seconds,
                "total_error": int(sparse.total_error),
                "error_ratio": sparse.total_error / exact.total_error,
                "pairs_evaluated": int(shortlist["pairs_evaluated"]),
                "pairs_frac": shortlist["pairs_evaluated"]
                / shortlist["pairs_total"],
                "fallback": int(shortlist["fallback"]),
            }
        )
    return {
        "s": s,
        "tile": tile,
        "algorithm": "parallel",
        "sketch": "mean",
        "shortlist_seed": SHORTLIST_SEED,
        "exact_seconds": exact_seconds,
        "exact_total_error": int(exact.total_error),
        "frontier": frontier,
    }


def bench_bit_identity(tile: int, size: int = 128) -> dict:
    """``top_k = S`` must reproduce the dense pipeline bit for bit."""
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    s = (size // tile) ** 2
    dense, _ = _run(inp, tgt, tile)
    complete, _ = _run(inp, tgt, tile, top_k=s)
    return {
        "s": s,
        "identical": bool(
            dense.total_error == complete.total_error
            and (dense.permutation == complete.permutation).all()
            and (np.asarray(dense.image) == np.asarray(complete.image)).all()
        ),
    }


def check_invariants(report: dict) -> list[str]:
    failures = []
    if not report["bit_identity"]["identical"]:
        failures.append("complete shortlist is not bit-identical to dense")
    frontier = report["frontier"]["frontier"]
    if report["frontier"]["s"] >= 1024:
        row = next(
            (r for r in frontier if r["top_k"] == ENVELOPE_TOP_K), None
        )
        if row is None:
            failures.append(f"frontier is missing top_k={ENVELOPE_TOP_K}")
        else:
            if row["pairs_frac"] > ENVELOPE_MAX_PAIRS_FRAC:
                failures.append(
                    f"top_k={ENVELOPE_TOP_K} exact-scored "
                    f"{row['pairs_frac']:.1%} of pairs "
                    f"(envelope: <= {ENVELOPE_MAX_PAIRS_FRAC:.0%})"
                )
            if row["error_ratio"] > ENVELOPE_MAX_ERROR_RATIO:
                failures.append(
                    f"top_k={ENVELOPE_TOP_K} total error ratio "
                    f"{row['error_ratio']:.4f} "
                    f"(envelope: <= {ENVELOPE_MAX_ERROR_RATIO})"
                )
            if row["fallback"] != 0:
                failures.append(
                    f"top_k={ENVELOPE_TOP_K} left {row['fallback']} "
                    "fallback rows (degree-capped selection should leave 0)"
                )
        narrowest = min(frontier, key=lambda r: r["top_k"])
        if narrowest["speedup"] < 1.0:
            failures.append(
                f"top_k={narrowest['top_k']} is not faster than exact "
                f"({narrowest['speedup']:.2f}x)"
            )
    return failures


def check_baseline(report: dict, baseline: dict, max_ratio: float) -> list[str]:
    failures = []
    for field in TIMED_FIELDS:
        old = baseline.get("frontier", {}).get(field)
        new = report.get("frontier", {}).get(field)
        if not old or not new:
            continue
        if new > old * max_ratio:
            failures.append(
                f"frontier.{field}: {new:.3f}s vs baseline {old:.3f}s "
                f"(> {max_ratio:.1f}x regression)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--s", type=int, default=1024, help="grid tiles S")
    parser.add_argument("--tile", type=int, default=8, help="tile side M")
    parser.add_argument("--out", default="BENCH_8.json", help="report path")
    parser.add_argument(
        "--baseline", default=None, help="compare timings against this report"
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when a timing exceeds baseline by this factor",
    )
    args = parser.parse_args(argv)

    report = {
        "schema": SCHEMA,
        "frontier": bench_frontier(args.s, args.tile),
        "bit_identity": bench_bit_identity(args.tile),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    frontier = report["frontier"]
    print(
        f"  exact         : {frontier['exact_seconds']:.3f}s, "
        f"total {frontier['exact_total_error']} at S={frontier['s']}"
    )
    for row in frontier["frontier"]:
        print(
            f"  top_k={row['top_k']:<4}    : {row['seconds']:.3f}s "
            f"({row['speedup']:.2f}x), ratio {row['error_ratio']:.4f}, "
            f"{row['pairs_frac']:.1%} of pairs, {row['fallback']} fallback"
        )

    failures = check_invariants(report)
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            failures += check_baseline(report, json.load(fh), args.max_ratio)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
