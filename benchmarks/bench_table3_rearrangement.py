"""Table III reproduction: Step-3 rearrangement time.

Paper Table III shows, per (N, S) cell:

* optimization (matching) time on the CPU — large, grows steeply with S,
  independent of N;
* approximation time, CPU (Algorithm 1 serial) vs GPU (Algorithm 2); the
  GPU loses at S=16^2 (0.5x) and wins at S>=32^2 (2.6-21x).

Here "CPU" is the scalar Algorithm-1 loop and "GPU" the vectorised
colour-class Algorithm 2.  Asserted shapes: matching time dominates local
search, Step-3 time depends on S not N, and the parallel implementation
overtakes the serial one as S grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.assignment import get_solver
from repro.gpusim.perfmodel import PerformanceModel
from repro.localsearch import local_search_parallel, local_search_serial
from repro.utils.timing import Stopwatch

_MODEL = PerformanceModel()
_N = max(n for n, _ in profile_grid())
_TILE_GRIDS = sorted({t for _, t in profile_grid()})


@pytest.mark.parametrize("tiles_per_side", _TILE_GRIDS)
def test_table3_optimization_row(benchmark, tiles_per_side):
    matrix = prepared_matrix(_N, tiles_per_side)
    solver = get_solver("scipy")
    result = benchmark(lambda: solver.solve(matrix))
    s = tiles_per_side**2
    benchmark.extra_info.update(
        {
            "S": s,
            "total_error": result.total,
            "model_paper_matching_seconds": _MODEL.matching_time(s),
        }
    )


@pytest.mark.parametrize("tiles_per_side", _TILE_GRIDS)
def test_table3_approximation_row(benchmark, tiles_per_side):
    matrix = prepared_matrix(_N, tiles_per_side)
    # Benchmark the GPU-model (Algorithm 2); time the serial once for the ratio.
    result = benchmark(lambda: local_search_parallel(matrix))
    with Stopwatch() as sw:
        serial = local_search_serial(matrix)
    gpu_seconds = benchmark.stats["mean"]
    s = tiles_per_side**2
    benchmark.extra_info.update(
        {
            "S": s,
            "serial_seconds": sw.elapsed,
            "measured_speedup": sw.elapsed / gpu_seconds,
            "serial_sweeps": serial.sweeps,
            "parallel_sweeps": result.sweeps,
            "model_paper_speedup": _MODEL.approximation_time(s, "cpu")
            / _MODEL.approximation_time(s, "gpu"),
        }
    )


def test_table3_matching_outgrows_local_search(benchmark):
    """The paper's core motivation: matching cost explodes with S
    (O(S^3)-class) while the parallel local search scales near-O(k S^2/p) —
    so the matching/local-search time ratio must grow as S grows.  (At the
    paper's S=64^2 the ratio exceeds 3000x; at reduced scale only the
    monotone growth is assertable, since SciPy's LAP solver is far faster
    than Blossom V at small S.)"""
    from repro.coloring.groups import build_edge_groups
    from repro.utils.timing import time_callable

    ratios = []

    def run():
        solver = get_solver("scipy")
        for t in (_TILE_GRIDS[0], _TILE_GRIDS[-1]):
            matrix = prepared_matrix(_N, t)
            # Pre-warm the per-S edge-group cache so its one-off
            # construction cost does not pollute the micro-timings.
            build_edge_groups(t * t)
            _, match_s = time_callable(lambda: solver.solve(matrix), repeats=5)
            _, local_s = time_callable(
                lambda: local_search_parallel(matrix), repeats=5
            )
            ratios.append(match_s / local_s)
        return ratios

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["matching_over_local_ratio"] = {
        "smallest_S": ratios[0],
        "largest_S": ratios[1],
        "model_paper_ratio_S4096": _MODEL.matching_time(4096)
        / _MODEL.approximation_time(4096, "gpu"),
    }
    assert ratios[1] > ratios[0]
    # And at paper scale the calibrated model shows the explosion itself.
    assert _MODEL.matching_time(4096) / _MODEL.approximation_time(4096, "gpu") > 1000


def test_table3_speedup_grows_with_s(benchmark):
    """Paper: GPU speedup of the approximation rises from 0.5x (S=16^2) to
    ~20x (S=64^2).  Measured equivalent: serial/parallel ratio must grow
    monotonically across the profile's S values."""
    ratios = []

    def run():
        for t in _TILE_GRIDS:
            matrix = prepared_matrix(_N, t)
            with Stopwatch() as sw_serial:
                local_search_serial(matrix)
            with Stopwatch() as sw_parallel:
                local_search_parallel(matrix)
            ratios.append(sw_serial.elapsed / sw_parallel.elapsed)
        return ratios

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ratios_by_s"] = dict(zip(_TILE_GRIDS, ratios))
    assert ratios[-1] > ratios[0]


def test_table3_time_independent_of_n(benchmark):
    """Paper: 'the computing time of rearrangement does not depend on the
    size of image but on the number of tiles'."""
    sizes = sorted({n for n, _ in profile_grid()})
    t = _TILE_GRIDS[len(_TILE_GRIDS) // 2]
    times = []

    def run():
        for n in sizes:
            matrix = prepared_matrix(n, t)
            with Stopwatch() as sw:
                local_search_parallel(matrix)
            times.append(sw.elapsed)
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["seconds_by_n"] = dict(zip(sizes, times))
    # 16x pixel growth between first and last size; Step-3 time must grow
    # far less than the pixel count (allow generous noise).
    assert max(times) < 6 * min(times) + 0.05
