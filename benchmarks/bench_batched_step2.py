#!/usr/bin/env python
"""Batched-vs-solo Step-2 throughput sweep and backend crossover (PR 9).

Measures what the cross-job batch planner actually buys: for each
``(S, metric, dense/sparse)`` configuration it times ``B`` solo Step-2
builds against one :class:`~repro.cost.batch.BatchedErrorMatrixBuilder`
launch covering the same ``B`` jobs, spot-checking bit-identity on the
way.  A second sweep pins the backend crossover the tiering policy
routes by: measured NumPy seconds per dense matrix against the
calibrated K40 model (:class:`~repro.gpusim.perfmodel.PerformanceModel`)
— the first grid where the modeled GPU wins sets the pinned
``threshold_pairs``.

The harness is **resumable** (modeled on the XLA experiment-runner
idiom): results stream to a JSON-lines file, one record per experiment,
and a re-run skips every experiment key already present — so a sweep
interrupted mid-way continues instead of restarting, and a tiny CI run
can extend a committed record without recomputing it.  ``--no-resume``
truncates first.

CI (the batched-step2-smoke job) uses two invocations::

    # tiny fresh sweep; exits 1 if batching fails to pay off at B=4
    PYTHONPATH=src python benchmarks/bench_batched_step2.py \
        --out /tmp/bench9.jsonl --no-resume --smoke

    # committed-record envelope: >= 1.5x at B >= 4, threshold pinned
    PYTHONPATH=src python benchmarks/bench_batched_step2.py \
        --check benchmarks/BENCH_9.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.cost import BatchJob, BatchedErrorMatrixBuilder, error_matrix, sparse_error_matrix
from repro.gpusim.perfmodel import PerformanceModel
from repro.service.tiering import DEFAULT_TIER_THRESHOLD

SCHEMA = "repro-batched-step2/1"

#: Tile side for every experiment (paper Table II uses M = N / sqrt(S)).
TILE = 8

#: Shortlist width for the sparse-mode experiments.
SPARSE_TOP_K = 32

#: Fixed seeds: experiment records must be reproducible.
SEED = 9
SHORTLIST_SEED = 11

#: Acceptance envelope (ISSUE 9): a batch of >= 4 concurrent same-grid
#: jobs must reach >= 1.5x Step-2 throughput over solo launches.
ENVELOPE_BATCH = 4
ENVELOPE_MIN_SPEEDUP = 1.5
ENVELOPE_S = 1024

#: Looser floor for the tiny CI smoke run (shared machines are noisy;
#: the committed record carries the real envelope).
SMOKE_MIN_SPEEDUP = 1.2

DEFAULT_S_LIST = (256, 1024)
DEFAULT_BATCHES = (1, 2, 4, 8)
DEFAULT_METRICS = ("sad", "ssd")
DEFAULT_MODES = ("dense", "sparse")
CROSSOVER_S_LIST = (16, 64, 256, 1024, 4096)


def _stacks(s: int, count: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """``count`` independent (input, target) tile-stack pairs at grid S."""
    rng = np.random.default_rng(SEED)
    return [
        (
            rng.integers(0, 256, size=(s, TILE, TILE), dtype=np.uint8),
            rng.integers(0, 256, size=(s, TILE, TILE), dtype=np.uint8),
        )
        for _ in range(count)
    ]


def _solo(pairs, metric: str, mode: str):
    results = []
    start = time.perf_counter()
    for inp, tgt in pairs:
        if mode == "sparse":
            results.append(
                sparse_error_matrix(
                    inp, tgt, metric, top_k=SPARSE_TOP_K, seed=SHORTLIST_SEED
                )
            )
        else:
            results.append(error_matrix(inp, tgt, metric))
    return results, time.perf_counter() - start


def _batched(pairs, metric: str, mode: str):
    builder = BatchedErrorMatrixBuilder(metric)
    if mode == "sparse":
        jobs = [
            BatchJob(inp, tgt, top_k=SPARSE_TOP_K, seed=SHORTLIST_SEED)
            for inp, tgt in pairs
        ]
        start = time.perf_counter()
        results = builder.compute_sparse(jobs)
    else:
        jobs = [BatchJob(inp, tgt) for inp, tgt in pairs]
        start = time.perf_counter()
        results = builder.compute_dense(jobs)
    return results, time.perf_counter() - start


def _identical(solo, batched, mode: str) -> bool:
    for a, b in zip(solo, batched):
        if mode == "sparse":
            if not (
                (a.indices == b.indices).all() and (a.costs == b.costs).all()
            ):
                return False
        elif not (np.asarray(a) == np.asarray(b)).all():
            return False
    return True


def run_throughput(s: int, metric: str, mode: str, batch: int) -> dict:
    pairs = _stacks(s, batch)
    # Warm both paths once (allocator + import costs), then best of 3.
    _solo(pairs[:1], metric, mode)
    _batched(pairs[:1], metric, mode)
    solo_seconds, batched_seconds = float("inf"), float("inf")
    solo = batched = None
    for _ in range(3):
        solo_run, t = _solo(pairs, metric, mode)
        if t < solo_seconds:
            solo, solo_seconds = solo_run, t
        batched_run, t = _batched(pairs, metric, mode)
        if t < batched_seconds:
            batched, batched_seconds = batched_run, t
    return {
        "kind": "throughput",
        "s": s,
        "tile": TILE,
        "metric": metric,
        "mode": mode,
        "batch": batch,
        "top_k": SPARSE_TOP_K if mode == "sparse" else 0,
        "solo_seconds": solo_seconds,
        "batched_seconds": batched_seconds,
        "speedup": solo_seconds / batched_seconds,
        "jobs_per_second": batch / batched_seconds,
        "identical": _identical(solo, batched, mode),
    }


def run_crossover(s: int) -> dict:
    """Measured NumPy vs modeled-K40 seconds for one dense SAD matrix."""
    pairs = _stacks(s, 1)
    _solo(pairs, "sad", "dense")  # warm
    numpy_seconds = min(_solo(pairs, "sad", "dense")[1] for _ in range(3))
    side = int(round(s**0.5))
    model = PerformanceModel()
    gpu_seconds = model.error_matrix_time(side * TILE, s, "gpu")
    return {
        "kind": "crossover",
        "s": s,
        "tile": TILE,
        "pairs": s * s,
        "numpy_seconds": numpy_seconds,
        "gpu_modeled_seconds": gpu_seconds,
        "gpu_wins": gpu_seconds < numpy_seconds,
    }


def _key(record: dict) -> str:
    if record["kind"] == "throughput":
        return (
            f"throughput|s={record['s']}|metric={record['metric']}"
            f"|mode={record['mode']}|batch={record['batch']}"
        )
    if record["kind"] == "crossover":
        return f"crossover|s={record['s']}"
    return record["kind"]


def _load_records(path: str) -> list[dict]:
    records = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    return records


def summarize(records: list[dict]) -> dict:
    """Envelope + pinned threshold derived from every record so far."""
    throughput = [r for r in records if r["kind"] == "throughput"]
    crossover = sorted(
        (r for r in records if r["kind"] == "crossover"), key=lambda r: r["s"]
    )
    envelope = [
        r
        for r in throughput
        if r["s"] >= ENVELOPE_S
        and r["batch"] >= ENVELOPE_BATCH
        and r["mode"] == "dense"
        and r["metric"] == "sad"
    ]
    first_gpu_win = next((r for r in crossover if r["gpu_wins"]), None)
    return {
        "kind": "summary",
        "schema": SCHEMA,
        "envelope_speedup": min((r["speedup"] for r in envelope), default=None),
        "envelope_records": len(envelope),
        "all_identical": all(r["identical"] for r in throughput),
        "crossover_pairs": first_gpu_win["pairs"] if first_gpu_win else None,
        "pinned_threshold_pairs": DEFAULT_TIER_THRESHOLD,
    }


def check_invariants(records: list[dict], min_speedup: float) -> list[str]:
    failures = []
    summary = summarize(records)
    if not summary["all_identical"]:
        failures.append("a batched run was not bit-identical to solo")
    if summary["envelope_records"] == 0:
        failures.append(
            f"no envelope records (dense sad, S>={ENVELOPE_S}, "
            f"B>={ENVELOPE_BATCH}) in the sweep"
        )
    elif summary["envelope_speedup"] < min_speedup:
        failures.append(
            f"envelope speedup {summary['envelope_speedup']:.2f}x "
            f"< required {min_speedup:.2f}x"
        )
    if summary["crossover_pairs"] is None:
        failures.append("modeled GPU never won: crossover not pinned")
    elif summary["crossover_pairs"] > DEFAULT_TIER_THRESHOLD:
        failures.append(
            f"measured crossover ({summary['crossover_pairs']} pairs) lies "
            f"above the pinned DEFAULT_TIER_THRESHOLD "
            f"({DEFAULT_TIER_THRESHOLD}) — re-pin repro.service.tiering"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_9.json", help="JSON-lines report")
    parser.add_argument(
        "--no-resume", action="store_true",
        help="truncate the report instead of skipping finished experiments",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"tiny CI grid with the loose {SMOKE_MIN_SPEEDUP}x floor",
    )
    parser.add_argument(
        "--check", default=None, metavar="PATH",
        help="no sweep: verify the envelope of a committed report and exit",
    )
    parser.add_argument("--s-list", type=int, nargs="+", default=None)
    parser.add_argument("--batches", type=int, nargs="+", default=None)
    parser.add_argument("--metrics", nargs="+", default=None)
    parser.add_argument("--modes", nargs="+", default=None)
    args = parser.parse_args(argv)

    if args.check:
        records = _load_records(args.check)
        failures = check_invariants(records, ENVELOPE_MIN_SPEEDUP)
        summary = summarize(records)
        print(
            f"{args.check}: envelope {summary['envelope_speedup']:.2f}x over "
            f"{summary['envelope_records']} records, crossover at "
            f"{summary['crossover_pairs']} pairs "
            f"(threshold {summary['pinned_threshold_pairs']})"
        )
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    if args.smoke:
        s_list = args.s_list or (ENVELOPE_S,)
        batches = args.batches or (1, ENVELOPE_BATCH)
        metrics = args.metrics or ("sad",)
        modes = args.modes or ("dense",)
        crossover_s = (256, ENVELOPE_S)
        min_speedup = SMOKE_MIN_SPEEDUP
    else:
        s_list = args.s_list or DEFAULT_S_LIST
        batches = args.batches or DEFAULT_BATCHES
        metrics = args.metrics or DEFAULT_METRICS
        modes = args.modes or DEFAULT_MODES
        crossover_s = CROSSOVER_S_LIST
        min_speedup = ENVELOPE_MIN_SPEEDUP

    if args.no_resume and os.path.exists(args.out):
        os.unlink(args.out)
    records = [r for r in _load_records(args.out) if r["kind"] != "summary"]
    finished = {_key(r) for r in records}

    def emit(record: dict) -> None:
        records.append(record)
        with open(args.out, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        if record["kind"] == "throughput":
            print(
                f"  S={record['s']:<5} {record['metric']:<4} "
                f"{record['mode']:<7} B={record['batch']:<2} "
                f"{record['speedup']:5.2f}x  "
                f"({record['jobs_per_second']:7.1f} jobs/s)"
                + ("" if record["identical"] else "  NOT IDENTICAL")
            )
        else:
            winner = "gpu" if record["gpu_wins"] else "numpy"
            print(
                f"  crossover S={record['s']:<5} {record['pairs']:>9} pairs: "
                f"numpy {record['numpy_seconds'] * 1e3:8.2f}ms vs "
                f"K40 model {record['gpu_modeled_seconds'] * 1e3:8.2f}ms "
                f"-> {winner}"
            )

    for s in s_list:
        for metric in metrics:
            for mode in modes:
                for batch in batches:
                    probe = {
                        "kind": "throughput", "s": s, "metric": metric,
                        "mode": mode, "batch": batch,
                    }
                    if _key(probe) in finished:
                        continue
                    emit(run_throughput(s, metric, mode, batch))
    for s in crossover_s:
        if _key({"kind": "crossover", "s": s}) in finished:
            continue
        emit(run_crossover(s))

    summary = summarize(records)
    with open(args.out, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(summary, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    print(
        f"  envelope: {summary['envelope_speedup']:.2f}x "
        f"(need >= {min_speedup}x at B>={ENVELOPE_BATCH}, S>={ENVELOPE_S}); "
        f"crossover at {summary['crossover_pairs']} pairs"
    )
    failures = check_invariants(records, min_speedup)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
