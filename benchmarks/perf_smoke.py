#!/usr/bin/env python
"""Machine-readable perf smoke for the acceleration layer (PR 4).

Measures the four quantities the hot-path acceleration layer promises —
error-matrix build time, 2-opt sweep time, pair evaluations saved by
active-pair pruning, and bytes copied on warm cache hits — and writes
them to ``BENCH_4.json``.  Invariants (bit-identical pruning, >= 3x fewer
pair evaluations at S >= 1024, >= 5x smaller per-worker serialisation,
zero warm-hit copies under mmap) are asserted on every run; wall-clock
numbers are additionally compared against a committed baseline with
``--baseline`` (used by the CI perf-smoke job, which fails on a > 2x
regression).

Run from the repo root::

    PYTHONPATH=src python benchmarks/perf_smoke.py --out BENCH_4.json
    PYTHONPATH=src python benchmarks/perf_smoke.py \
        --baseline benchmarks/BENCH_4_baseline.json
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
import tempfile
import time

import numpy as np

from repro.accel.shm import SharedArrayPlane, shared_memory_available
from repro.cost.base import get_metric
from repro.cost.matrix import error_matrix
from repro.imaging import standard_image
from repro.localsearch import local_search_parallel
from repro.mosaic.config import MosaicConfig
from repro.mosaic.generator import PhotomosaicGenerator
from repro.service.diskcache import DiskCacheStore

SCHEMA = "repro-perf-smoke/1"

#: Timing fields checked against the baseline (counters and ratios are
#: machine-independent and asserted directly instead).
TIMED_FIELDS = (
    ("error_matrix", "seconds"),
    ("sweeps", "pruned_seconds"),
    ("sweeps", "unpruned_seconds"),
)


def build_instance(s: int, tile: int) -> np.ndarray:
    """Pipeline-built error matrix with ``s`` tiles per image."""
    side = int(round(s**0.5))
    if side * side != s:
        raise SystemExit(f"--s must be a perfect square, got {s}")
    size = side * tile
    gen = PhotomosaicGenerator(MosaicConfig(tile_size=tile))
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    start = time.perf_counter()
    _, matrix = gen.build_error_matrix(inp, tgt)
    elapsed = time.perf_counter() - start
    return matrix, elapsed


def bench_sweeps(matrix: np.ndarray) -> dict:
    s = matrix.shape[0]
    start = time.perf_counter()
    unpruned = local_search_parallel(matrix, prune=False)
    unpruned_seconds = time.perf_counter() - start
    start = time.perf_counter()
    pruned = local_search_parallel(matrix, prune=True)
    pruned_seconds = time.perf_counter() - start
    identical = bool(
        (pruned.permutation == unpruned.permutation).all()
        and pruned.trace.totals == unpruned.trace.totals
    )
    sweeps = len(pruned.trace.swap_counts)
    pairs_full = sweeps * s * (s - 1) // 2
    pairs_pruned = pruned.meta["pairs_evaluated"]
    return {
        "s": s,
        "sweeps": sweeps,
        "pruned_seconds": pruned_seconds,
        "unpruned_seconds": unpruned_seconds,
        "pairs_evaluated_unpruned": pairs_full,
        "pairs_evaluated_pruned": pairs_pruned,
        "pairs_skipped": pruned.meta["pairs_skipped"],
        "eval_ratio": pairs_full / max(1, pairs_pruned),
        "bit_identical": identical,
        "total_error": int(pruned.total),
    }


def bench_serialization(matrix: np.ndarray) -> dict:
    """Per-worker bytes: pickled feature payload vs shared-memory handle."""
    tiles = np.zeros((matrix.shape[0], 8, 8), dtype=np.uint8)
    features = get_metric("sad").prepare(tiles)
    payload_bytes = len(pickle.dumps(features, protocol=pickle.HIGHEST_PROTOCOL))
    if not shared_memory_available():
        return {
            "payload_bytes": payload_bytes,
            "handle_bytes": None,
            "ratio": None,
        }
    with SharedArrayPlane() as plane:
        handle = plane.publish("bench-features", features)
        handle_bytes = len(pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL))
    return {
        "payload_bytes": payload_bytes,
        "handle_bytes": handle_bytes,
        "ratio": payload_bytes / handle_bytes,
    }


def bench_warm_cache(matrix: np.ndarray) -> dict:
    """Bytes heap-copied by a warm cache hit, mmap on vs off."""
    out: dict = {}
    for label, mode in (("mmap", "r"), ("copy", None)):
        with tempfile.TemporaryDirectory(prefix="perf-smoke-") as root:
            store = DiskCacheStore(root, mmap_mode=mode)
            store.put("matrix/bench", matrix)
            warm = store.get("matrix/bench")
            assert np.array_equal(warm, matrix)
            out[f"{label}_copied_bytes"] = store.stats.copied_bytes
            out[f"{label}_mmap_hits"] = store.stats.mmap_hits
    return out


def check_invariants(report: dict) -> list[str]:
    failures = []
    sweeps = report["sweeps"]
    if not sweeps["bit_identical"]:
        failures.append("pruned sweep result differs from unpruned")
    if sweeps["s"] >= 1024 and sweeps["eval_ratio"] < 3.0:
        failures.append(
            f"pruning saved only {sweeps['eval_ratio']:.2f}x pair "
            f"evaluations at S={sweeps['s']} (need >= 3x)"
        )
    ser = report["serialization"]
    if ser["ratio"] is not None and ser["ratio"] < 5.0:
        failures.append(
            f"shm handle is only {ser['ratio']:.1f}x smaller than the "
            "pickled payload (need >= 5x)"
        )
    cache = report["warm_cache"]
    if cache["mmap_copied_bytes"] != 0:
        failures.append(
            f"warm mmap hit copied {cache['mmap_copied_bytes']} bytes"
        )
    if cache["copy_copied_bytes"] <= 0:
        failures.append("copying read measured no bytes (instrumentation bug)")
    return failures


def check_baseline(report: dict, baseline: dict, max_ratio: float) -> list[str]:
    failures = []
    for section, field in TIMED_FIELDS:
        old = baseline.get(section, {}).get(field)
        new = report.get(section, {}).get(field)
        if not old or not new:
            continue
        if new > old * max_ratio:
            failures.append(
                f"{section}.{field}: {new:.3f}s vs baseline {old:.3f}s "
                f"(> {max_ratio:.1f}x regression)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--s", type=int, default=1024, help="grid tiles S")
    parser.add_argument("--tile", type=int, default=8, help="tile side M")
    parser.add_argument("--out", default="BENCH_4.json", help="report path")
    parser.add_argument(
        "--baseline", default=None, help="compare timings against this report"
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=2.0,
        help="fail when a timing exceeds baseline by this factor",
    )
    args = parser.parse_args(argv)

    matrix, matrix_seconds = build_instance(args.s, args.tile)
    report = {
        "schema": SCHEMA,
        "s": args.s,
        "tile": args.tile,
        "error_matrix": {"seconds": matrix_seconds, "backend": "numpy"},
        "sweeps": bench_sweeps(matrix),
        "serialization": bench_serialization(matrix),
        "warm_cache": bench_warm_cache(matrix),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    print(
        f"  error matrix  : {matrix_seconds:.3f}s at S={args.s}\n"
        f"  sweeps        : pruned {report['sweeps']['pruned_seconds']:.3f}s, "
        f"unpruned {report['sweeps']['unpruned_seconds']:.3f}s, "
        f"{report['sweeps']['eval_ratio']:.2f}x fewer pair evaluations\n"
        f"  serialization : {report['serialization']['payload_bytes']} B payload"
        f" vs {report['serialization']['handle_bytes']} B handle\n"
        f"  warm cache    : {report['warm_cache']['mmap_copied_bytes']} B copied"
        " under mmap"
    )

    failures = check_invariants(report)
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            failures += check_baseline(report, json.load(fh), args.max_ratio)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
