"""Shared fixtures and reporting helpers for the benchmark suite.

Benchmarks run at the profile selected by ``REPRO_BENCH_FULL`` (see
DESIGN.md section 5): the default profile shrinks the paper's grid so the
whole suite finishes in minutes while preserving every comparison's shape.

Each bench both times its subject with pytest-benchmark and attaches the
paper-facing quantities (total errors, speedups, sweep counts) as
``benchmark.extra_info`` so the JSON export carries the full reproduction
record.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchharness.workloads import default_profile, paper_grid, workload_pair
from repro.cost.matrix import error_matrix
from repro.imaging.histogram import match_histogram
from repro.tiles.grid import TileGrid

#: The single seed every benchmark RNG derives from.  Benchmarks never
#: call ``np.random`` directly — randomness flows through the ``rng``
#: fixture below (mirroring ``tests/conftest.py``), so a run is
#: reproducible end to end and two profiles compare like for like.
BENCH_SEED = 12345


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG; benchmarks that need randomness draw from this."""
    return np.random.default_rng(BENCH_SEED)


def profile_grid() -> list[tuple[int, int]]:
    """The active (N, tiles_per_side) grid."""
    return paper_grid(default_profile())


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return default_profile()


def prepared_matrix(n: int, tiles_per_side: int) -> np.ndarray:
    """Histogram-matched error matrix for the canonical pair at (n, tiles)."""
    w = workload_pair(n, tiles_per_side)
    inp, tgt = w.images()
    grid = TileGrid.from_tile_count(n, tiles_per_side)
    return error_matrix(grid.split(match_histogram(inp, tgt)), grid.split(tgt))


def prepared_tiles(n: int, tiles_per_side: int) -> tuple[np.ndarray, np.ndarray]:
    """Histogram-matched tile stacks for the canonical pair."""
    w = workload_pair(n, tiles_per_side)
    inp, tgt = w.images()
    grid = TileGrid.from_tile_count(n, tiles_per_side)
    return grid.split(match_histogram(inp, tgt)), grid.split(tgt)
