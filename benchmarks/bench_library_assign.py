"""Library shortlist + assignment: time and quality vs size and knobs.

Three questions the tile-library engine must answer with numbers:

* how does shortlist+assign wall-clock scale with the library size
  (clustering should keep exact evaluations near ``S * top_k``, not
  ``S * L``);
* what does widening ``top_k`` buy in match cost, and what does it cost
  in time;
* how much does the repetition penalty reduce max tile reuse, and what
  match-cost premium does that diversity carry (the penalty-on/off
  comparison the acceptance criteria pin).

All workloads are seeded synthetic libraries/targets, so the numbers are
reproducible run to run; quality quantities ride along in
``benchmark.extra_info``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import get_metric
from repro.library import (
    ClusterShortlister,
    GreedyPenaltyAssigner,
    LibraryIndex,
    get_assigner,
    synthetic_library_images,
    synthetic_target,
)
from repro.tiles.features import tile_features
from repro.tiles.grid import TileGrid

_TILE = 8
_TARGET_SIZE = 128  # 16x16 grid = 256 cells


def _library(size: int) -> LibraryIndex:
    return LibraryIndex.from_images(
        synthetic_library_images(size, size=16, seed=100),
        tile_size=_TILE,
        thumb_size=16,
    )


def _target_cells() -> tuple[np.ndarray, np.ndarray]:
    target = synthetic_target(_TARGET_SIZE, seed=21)
    cells = TileGrid.for_image(target, _TILE).split(target)
    return cells, tile_features(cells, grid=2)


@pytest.mark.parametrize("library_size", [250, 500, 1000])
def test_shortlist_scaling(benchmark, library_size):
    """Cluster-pruned shortlist+assign time as the library grows."""
    index = _library(library_size)
    metric = get_metric("sad")
    features = metric.prepare(index.tiles)
    cells, sketches = _target_cells()

    def run():
        shortlister = ClusterShortlister(
            index.sketches, features, metric, seed=0
        )
        cand = shortlister.shortlist(cells, sketches, top_k=16)
        return cand, GreedyPenaltyAssigner().solve(cand.indices, cand.costs)

    cand, result = benchmark(run)
    benchmark.extra_info["library_size"] = library_size
    benchmark.extra_info["scanned_mean"] = round(cand.meta["scanned_mean"], 1)
    benchmark.extra_info["scan_fraction"] = round(
        cand.meta["scanned_mean"] / library_size, 3
    )
    benchmark.extra_info["total_cost"] = int(result.total_cost)


@pytest.mark.parametrize("top_k", [4, 16, 64])
def test_top_k_tradeoff(benchmark, top_k):
    """Shortlist width: match quality bought per unit of assign time."""
    index = _library(500)
    metric = get_metric("sad")
    features = metric.prepare(index.tiles)
    cells, sketches = _target_cells()
    shortlister = ClusterShortlister(index.sketches, features, metric, seed=0)

    def run():
        cand = shortlister.shortlist(cells, sketches, top_k=top_k)
        return GreedyPenaltyAssigner().solve(
            cand.indices, cand.costs, repetition_penalty=1.0
        )

    result = benchmark(run)
    benchmark.extra_info["top_k"] = top_k
    benchmark.extra_info["total_cost"] = int(result.total_cost)
    benchmark.extra_info["max_reuse"] = result.max_reuse


@pytest.mark.parametrize(
    "assigner,penalty,refine_iters",
    [
        ("greedy", 0.0, 0),
        ("greedy", 1.0, 0),
        ("ep", 1.0, 2000),
    ],
    ids=["greedy-off", "greedy-on", "ep-on"],
)
def test_penalty_and_refinement(benchmark, assigner, penalty, refine_iters):
    """Penalty on/off (and EP refinement) on a fixed 500-tile shortlist.

    ``greedy-off`` vs ``greedy-on`` is the acceptance comparison: the
    penalty must measurably lower ``max_reuse``; ``extra_info`` records
    the cost premium paid for that diversity.
    """
    index = _library(500)
    metric = get_metric("sad")
    shortlister = ClusterShortlister(
        index.sketches, metric.prepare(index.tiles), metric, seed=0
    )
    cells, sketches = _target_cells()
    cand = shortlister.shortlist(cells, sketches, top_k=16)
    solver = get_assigner(assigner)

    def run():
        return solver.solve(
            cand.indices,
            cand.costs,
            repetition_penalty=penalty,
            refine_iters=refine_iters,
            seed=5,
        )

    result = benchmark(run)
    benchmark.extra_info["assigner"] = assigner
    benchmark.extra_info["repetition_penalty"] = penalty
    benchmark.extra_info["max_reuse"] = result.max_reuse
    benchmark.extra_info["unique_tiles"] = result.unique_tiles
    benchmark.extra_info["total_cost"] = int(result.total_cost)
    benchmark.extra_info["objective"] = int(result.meta["objective"])
    if penalty == 0.0:
        # Pin the baseline the penalty comparison is made against.
        assert result.max_reuse == int(
            np.bincount(cand.indices[:, 0]).max()
        )
