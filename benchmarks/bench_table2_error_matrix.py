"""Table II reproduction: Step-2 error-matrix computation time.

Paper Table II compares a scalar single-thread CPU loop against the GPU
kernel across N in {512, 1024, 2048} x S in {16^2, 32^2, 64^2}, reporting
58-93x speedups.  Here:

* "CPU" = the pure-Python triple loop (`cost.reference`),
* "GPU" = the vectorised kernel (`cost.matrix`), the same data-parallel
  arithmetic the paper's kernel performs,

and the calibrated performance model supplies the paper-scale prediction
recorded in extra_info.  Asserted shape: the data-parallel implementation
wins everywhere, and the gap is large (>= 5x even at toy sizes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_tiles, profile_grid
from repro.cost.matrix import error_matrix
from repro.cost.reference import error_matrix_reference
from repro.gpusim.perfmodel import PerformanceModel
from repro.utils.timing import Stopwatch

_MODEL = PerformanceModel()


@pytest.mark.parametrize("n,tiles_per_side", profile_grid())
def test_table2_gpu_model_row(benchmark, n, tiles_per_side):
    """Times the vectorised (GPU-model) Step 2 and records the CPU ratio."""
    tiles_in, tiles_tg = prepared_tiles(n, tiles_per_side)
    result = benchmark(lambda: error_matrix(tiles_in, tiles_tg))
    with Stopwatch() as sw:
        reference = error_matrix_reference(tiles_in, tiles_tg)
    assert (reference == result).all()
    gpu_seconds = benchmark.stats["mean"]
    s = tiles_per_side**2
    benchmark.extra_info.update(
        {
            "N": n,
            "S": s,
            "cpu_seconds": sw.elapsed,
            "measured_speedup": sw.elapsed / gpu_seconds,
            "model_cpu_seconds": _MODEL.error_matrix_time(n, s, "cpu"),
            "model_gpu_seconds": _MODEL.error_matrix_time(n, s, "gpu"),
            "model_speedup": _MODEL.error_matrix_time(n, s, "cpu")
            / _MODEL.error_matrix_time(n, s, "gpu"),
        }
    )
    assert sw.elapsed / gpu_seconds >= 5.0


def test_table2_time_scales_with_image_and_tiles(benchmark):
    """Paper: 'When the size of images is larger, the computing time is
    longer. Also, when the number of tiles is larger, the computing time
    is longer.'  Checked on the exact work term S * N^2 of the model and
    the measured vectorised times."""
    grid = profile_grid()
    times: dict[tuple[int, int], float] = {}

    def run():
        for n, t in grid:
            tiles_in, tiles_tg = prepared_tiles(n, t)
            with Stopwatch() as sw:
                error_matrix(tiles_in, tiles_tg)
            times[(n, t)] = sw.elapsed
        return times

    benchmark.pedantic(run, rounds=1, iterations=1)
    sizes = sorted({n for n, _ in grid})
    tile_grids = sorted({t for _, t in grid})
    # Fixing S, time grows with N (strict on the model, lenient measured).
    for t in tile_grids:
        model = [_MODEL.error_matrix_time(n, t * t, "cpu") for n in sizes]
        assert model == sorted(model)
        measured = [times[(n, t)] for n in sizes]
        assert measured[-1] > measured[0]
    benchmark.extra_info["measured_seconds"] = {str(k): v for k, v in times.items()}
