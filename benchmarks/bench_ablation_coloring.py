"""Ablation: colour-class schedule for Algorithm 2.

The circle-method classes can be visited in the paper's published order or
in plain rotation order; both are valid 1-factorisations, so the parallel
local search must converge either way.  This bench checks that schedule
choice changes neither correctness nor quality materially, and compares
sweep counts — the only thing the visit order can affect.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.assignment import get_solver
from repro.coloring.groups import build_edge_groups
from repro.localsearch import local_search_parallel

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]


@pytest.fixture(scope="module")
def matrix():
    return prepared_matrix(_N, _T)


@pytest.mark.parametrize("order", ["paper", "round"])
def test_schedule_timing(benchmark, order, matrix):
    groups = build_edge_groups(matrix.shape[0], order=order)
    result = benchmark(lambda: local_search_parallel(matrix, groups=groups))
    benchmark.extra_info.update(
        {"order": order, "total": result.total, "sweeps": result.sweeps}
    )


def test_schedules_equivalent_quality(benchmark, matrix):
    optimum = get_solver("scipy").solve(matrix).total

    def run():
        return {
            order: local_search_parallel(
                matrix, groups=build_edge_groups(matrix.shape[0], order=order)
            ).total
            for order in ("paper", "round")
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["totals"] = totals
    for total in totals.values():
        assert optimum <= total <= 1.10 * optimum
    lo, hi = min(totals.values()), max(totals.values())
    assert (hi - lo) <= 0.03 * lo
