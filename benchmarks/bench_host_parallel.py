"""Host-side parallel Step 2: the multicore counterpart of the GPU kernel.

The paper notes its serial baselines could be multithreaded but leaves CPU
parallelism out of scope; this bench fills that gap for the reproduction:
the process-pool error-matrix computation against the single-process
vectorised one, plus the correctness guarantee that parallelisation is
bit-exact.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import prepared_tiles, profile_grid
from repro.cost.matrix import error_matrix
from repro.cost.parallel_matrix import error_matrix_parallel

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]
_WORKERS = min(4, os.cpu_count() or 1)


def test_serial_vectorized_baseline(benchmark):
    tiles_in, tiles_tg = prepared_tiles(_N, _T)
    matrix = benchmark(lambda: error_matrix(tiles_in, tiles_tg))
    benchmark.extra_info["S"] = matrix.shape[0]


def test_process_pool_step2(benchmark):
    tiles_in, tiles_tg = prepared_tiles(_N, _T)
    serial = error_matrix(tiles_in, tiles_tg)
    matrix = benchmark(
        lambda: error_matrix_parallel(
            tiles_in, tiles_tg, workers=_WORKERS, force=True
        )
    )
    benchmark.extra_info.update({"S": matrix.shape[0], "workers": _WORKERS})
    assert (matrix == serial).all()


def test_small_problem_fallback_avoids_pool_cost(benchmark):
    """Below the work threshold the adaptive path must match the serial
    path's performance class (no multi-hundred-ms pool spin-up)."""
    tiles_in, tiles_tg = prepared_tiles(min(n for n, _ in profile_grid()), 4)

    def run():
        return error_matrix_parallel(tiles_in, tiles_tg, workers=_WORKERS)

    benchmark(run)
    # Pool startup costs ~100ms+; the fallback must keep this tiny cell fast.
    assert benchmark.stats["mean"] < 0.05
