"""HTTP front overhead: network round-trips and stream fan-out.

Answers two serving questions against the in-process gateway numbers in
:mod:`bench_gateway_stream`:

* what one ``POST /v1/jobs`` → NDJSON-stream-to-terminal round trip
  costs through the whole stack — parser, router, broker replay,
  chunked writer, loopback TCP — versus awaiting the same gateway
  stream in-process;
* how event throughput holds up when one chatty job fans out to many
  concurrent NDJSON subscribers (the broker replays its event log to
  each, so subscribers cost reads, not re-runs).

Uses a cheap scripted runner, so the numbers isolate transport overhead
rather than mosaic compute.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service import JobSpec, MosaicGateway, WorkerPool
from repro.service.client import MosaicServiceClient
from repro.service.http import HttpFront, HttpFrontConfig

_WORKERS = 2
_SWEEPS = 50


class ChattyRunner:
    accepts_context = True

    def __call__(self, spec: JobSpec, ctx=None) -> str:
        if ctx is not None:
            for step in range(_SWEEPS):
                ctx.emit("sweep", {"sweep": step, "swaps": 0, "total": 0})
        return spec.name


class FrontHarness:
    """A served front on a background loop thread, reusable per round.

    The benchmark body runs blocking client calls on the pytest thread,
    so the asyncio loop serving the front gets a thread of its own —
    the same separation a real deployment has.
    """

    def __init__(self, *, max_pending: int = 64, max_streams: int = 256):
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.pool = WorkerPool(workers=_WORKERS, runner=ChattyRunner(), seed=0)

        async def start():
            self.gateway = MosaicGateway(self.pool, max_pending=max_pending)
            self.front = HttpFront(
                self.gateway,
                config=HttpFrontConfig(
                    port=0, max_concurrent_streams=max_streams
                ),
            )
            await self.front.start()

        self.run(start())
        self.client = MosaicServiceClient(
            f"http://127.0.0.1:{self.front.port}"
        )

    def run(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(60)

    def close(self) -> None:
        async def stop():
            await self.gateway.aclose(drain=True)
            await self.front.broker.drain()
            await self.front.aclose()

        self.run(stop())
        self.pool.shutdown()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def front():
    harness = FrontHarness()
    yield harness
    harness.close()


def _spec_dict(name: str) -> dict:
    return {"input": "x", "target": "y", "name": name}


def test_inprocess_gateway_baseline(benchmark):
    """Reference: submit+collect through the gateway, no network."""
    jobs = 8

    def run():
        async def go():
            pool = WorkerPool(workers=_WORKERS, runner=ChattyRunner(), seed=0)
            total = 0
            async with MosaicGateway(pool, max_pending=jobs) as gateway:
                streams = [
                    await gateway.submit(JobSpec(**_spec_dict(f"j{i}")))
                    for i in range(jobs)
                ]
                for stream in streams:
                    total += len(await stream.collect())
            pool.shutdown()
            return total

        return asyncio.run(go())

    total = benchmark(run)
    assert total == jobs * (_SWEEPS + 3)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["events_per_round"] = total


def test_http_submit_and_stream_round_trip(benchmark, front):
    """The same batch over loopback HTTP: POST + NDJSON to terminal."""
    jobs = 8
    rounds = [0]

    def run():
        rounds[0] += 1
        submitted = [
            front.client.submit(_spec_dict(f"r{rounds[0]}j{i}"))
            for i in range(jobs)
        ]
        total = 0
        for job in submitted:
            events = list(front.client.events(job["job_id"]))
            assert events[-1]["terminal"]
            total += len(events)
        return total

    total = benchmark(run)
    assert total == jobs * (_SWEEPS + 3)
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["events_per_round"] = total


def test_http_stream_fanout(benchmark, front):
    """One job's event log replayed to many concurrent subscribers."""
    subscribers = 16
    job = front.client.submit(_spec_dict("fanout"))
    first = list(front.client.events(job["job_id"]))
    assert first[-1]["terminal"]

    def run():
        results = [None] * subscribers

        def read(index: int) -> None:
            results[index] = len(
                list(front.client.events(job["job_id"]))
            )

        threads = [
            threading.Thread(target=read, args=(i,))
            for i in range(subscribers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [len(first)] * subscribers
        return sum(results)

    total = benchmark(run)
    benchmark.extra_info["subscribers"] = subscribers
    benchmark.extra_info["events_per_round"] = total
