"""Table I reproduction: total error of the three algorithms.

Paper Table I (portrait->sailboat, N=512):

    S        optimization   approx (CPU)   approx (GPU)
    16x16         7529146        7701450        7676311
    32x32         5410140        5520554        5506782
    64x64         3877820        3945836        4047410

The *shape* asserted here: optimization strictly lower-bounds both
approximations; the two approximation orders differ by a small margin; the
total error decreases as S grows.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.assignment import get_solver
from repro.localsearch import local_search_parallel, local_search_serial

# Table I varies S at fixed N: take the largest N of the active profile.
_N = max(n for n, _ in profile_grid())
_TILE_GRIDS = sorted({t for _, t in profile_grid()})


@pytest.mark.parametrize("tiles_per_side", _TILE_GRIDS)
def test_table1_quality_row(benchmark, tiles_per_side):
    matrix = prepared_matrix(_N, tiles_per_side)

    def run():
        opt = get_solver("scipy").solve(matrix)
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        return opt.total, serial.total, parallel.total

    opt, serial, parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "N": _N,
            "S": tiles_per_side**2,
            "optimization": opt,
            "approximation_cpu_order": serial,
            "approximation_gpu_order": parallel,
            "gap_serial_pct": 100.0 * (serial - opt) / opt,
            "gap_parallel_pct": 100.0 * (parallel - opt) / opt,
        }
    )
    # Paper shape: optimum below both approximations, both within a few %.
    assert opt <= serial
    assert opt <= parallel
    assert serial <= 1.10 * opt
    assert parallel <= 1.10 * opt


def test_table1_error_decreases_with_s(benchmark):
    def run():
        return [
            get_solver("scipy").solve(prepared_matrix(_N, t)).total
            for t in _TILE_GRIDS
        ]

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["totals_by_s"] = dict(zip(_TILE_GRIDS, totals))
    assert totals == sorted(totals, reverse=True)
