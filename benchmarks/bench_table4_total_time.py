"""Table IV reproduction: end-to-end photomosaic generation time.

Paper Table IV: with GPU acceleration, the optimization pipeline speeds up
by up to 40x — but only where Step 2 dominates (small S); once matching
dominates (large S) the speedup collapses to ~1.  The approximation
pipeline accelerates both steps and reaches up to 66x, growing with N.

Measured equivalents here: scalar-everything vs vectorised-everything
pipelines; model predictions for the paper's hardware attach to each row.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_tiles, profile_grid
from repro.assignment import get_solver
from repro.cost.matrix import error_matrix
from repro.cost.reference import error_matrix_reference
from repro.gpusim.perfmodel import PerformanceModel
from repro.localsearch import local_search_parallel, local_search_serial
from repro.utils.timing import Stopwatch

_MODEL = PerformanceModel()


@pytest.mark.parametrize("n,tiles_per_side", profile_grid())
def test_table4_approximation_row(benchmark, n, tiles_per_side):
    """End-to-end approximation pipeline, accelerated configuration."""
    tiles_in, tiles_tg = prepared_tiles(n, tiles_per_side)

    def accelerated():
        matrix = error_matrix(tiles_in, tiles_tg)
        return local_search_parallel(matrix)

    benchmark(accelerated)
    with Stopwatch() as sw_cpu:
        matrix = error_matrix_reference(tiles_in, tiles_tg)
        local_search_serial(matrix)
    s = tiles_per_side**2
    gpu_seconds = benchmark.stats["mean"]
    benchmark.extra_info.update(
        {
            "N": n,
            "S": s,
            "cpu_pipeline_seconds": sw_cpu.elapsed,
            "measured_speedup": sw_cpu.elapsed / gpu_seconds,
            "model_paper_speedup": _MODEL.speedup(n, s, "approximation"),
        }
    )
    assert sw_cpu.elapsed / gpu_seconds > 3.0


@pytest.mark.parametrize("n,tiles_per_side", profile_grid())
def test_table4_optimization_row(benchmark, n, tiles_per_side):
    """End-to-end optimization pipeline: only Step 2 accelerates."""
    tiles_in, tiles_tg = prepared_tiles(n, tiles_per_side)
    solver = get_solver("scipy")

    def accelerated():
        matrix = error_matrix(tiles_in, tiles_tg)
        return solver.solve(matrix)

    benchmark(accelerated)
    with Stopwatch() as sw_step2:
        matrix = error_matrix_reference(tiles_in, tiles_tg)
    with Stopwatch() as sw_step3:
        solver.solve(matrix)
    s = tiles_per_side**2
    gpu_seconds = benchmark.stats["mean"]
    cpu_seconds = sw_step2.elapsed + sw_step3.elapsed
    benchmark.extra_info.update(
        {
            "N": n,
            "S": s,
            "cpu_pipeline_seconds": cpu_seconds,
            "measured_speedup": cpu_seconds / gpu_seconds,
            "model_paper_speedup": _MODEL.speedup(n, s, "optimization"),
        }
    )


def test_table4_optimization_speedup_collapses_with_s(benchmark):
    """Paper: optimization speedup falls from ~40x (S=16^2) toward 1 as the
    un-accelerated matching dominates.  Checked on the calibrated model at
    the paper's own grid."""

    def run():
        return {
            t: _MODEL.speedup(2048, t * t, "optimization") for t in (16, 32, 64)
        }

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["model_speedups"] = speedups
    assert speedups[16] > 30
    assert speedups[64] < 1.5
    assert speedups[16] > speedups[32] > speedups[64]


def test_table4_approximation_speedup_grows_with_n(benchmark):
    """Paper: approximation speedup grows with N at every S (23x -> 66x)."""

    def run():
        return {
            (n, t): _MODEL.speedup(n, t * t, "approximation")
            for n in (512, 1024, 2048)
            for t in (16, 32, 64)
        }

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["model_speedups"] = {str(k): v for k, v in speedups.items()}
    for t in (16, 32, 64):
        series = [speedups[(n, t)] for n in (512, 1024, 2048)]
        assert series == sorted(series)
    assert max(speedups.values()) > 55  # paper's 66.76 peak, with slack
