"""Section IV-A claim: the local search converges in few sweeps.

Paper: 'the value k takes at most 9, 8, and 16 for S = 16x16, 32x32, and
64x64' — i.e. k stays in the low double digits and does not explode with
S.  Reproduced across the profile's S grid for both sweep orders, plus the
convergence-curve property that most of the error drop happens in the
first sweep.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.localsearch import local_search_parallel, local_search_serial

_N = max(n for n, _ in profile_grid())
_TILE_GRIDS = sorted({t for _, t in profile_grid()})


@pytest.mark.parametrize("tiles_per_side", _TILE_GRIDS)
def test_sweep_count_stays_small(benchmark, tiles_per_side):
    matrix = prepared_matrix(_N, tiles_per_side)

    def run():
        serial = local_search_serial(matrix)
        parallel = local_search_parallel(matrix)
        return serial.sweeps, parallel.sweeps

    serial_k, parallel_k = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"S": tiles_per_side**2, "serial_k": serial_k, "parallel_k": parallel_k}
    )
    assert serial_k <= 20
    assert parallel_k <= 20


def test_first_sweep_does_most_of_the_work(benchmark):
    matrix = prepared_matrix(_N, _TILE_GRIDS[-1])

    def run():
        return local_search_serial(matrix)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    import numpy as np

    start = int(matrix[np.arange(matrix.shape[0]), np.arange(matrix.shape[0])].sum())
    after_first = result.trace.totals[0]
    final = result.total
    benchmark.extra_info.update(
        {"start": start, "after_first_sweep": after_first, "final": final}
    )
    # The bulk (>= 80%) of the total improvement lands in sweep 1.
    assert (start - after_first) >= 0.8 * (start - final)
