"""Ablation: the Section-II histogram adjustment.

The paper motivates matching the input's intensity distribution to the
target's before rearranging ("this adjustment is effective when the
distribution is concentrated to the certain range").  This bench runs the
same pipeline with and without the adjustment across all four image pairs
and quantifies the error reduction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import profile_grid
from repro import generate_photomosaic, standard_image
from repro.benchharness.workloads import PAPER_PAIRS
from repro.imaging.metrics import psnr

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]


@pytest.mark.parametrize("matched", [True, False], ids=["with", "without"])
def test_histogram_adjustment_timing(benchmark, matched):
    inp = standard_image("tiffany", _N)  # concentrated bright distribution
    tgt = standard_image("sailboat", _N)
    result = benchmark(
        lambda: generate_photomosaic(
            inp, tgt, tile_size=_N // _T, algorithm="parallel",
            histogram_match=matched,
        )
    )
    benchmark.extra_info.update(
        {"histogram_match": matched, "total_error": result.total_error}
    )


def test_adjustment_reduces_error_on_every_pair(benchmark):
    def run():
        out = {}
        for src, dst in PAPER_PAIRS:
            inp = standard_image(src, _N)
            tgt = standard_image(dst, _N)
            with_adj = generate_photomosaic(
                inp, tgt, tile_size=_N // _T, histogram_match=True
            )
            without = generate_photomosaic(
                inp, tgt, tile_size=_N // _T, histogram_match=False
            )
            out[f"{src}->{dst}"] = {
                "with": with_adj.total_error,
                "without": without.total_error,
                "psnr_with": psnr(with_adj.image, tgt),
                "psnr_without": psnr(without.image, tgt),
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["per_pair"] = results
    improved = sum(1 for r in results.values() if r["with"] < r["without"])
    # The adjustment must help on (at least) the clear majority of pairs.
    assert improved >= len(results) - 1
