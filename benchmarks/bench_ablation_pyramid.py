"""Ablation: hierarchical coarse-to-fine vs flat Step 3.

The pyramid replaces the flat local search's cold start with an exact
coarse assignment expanded to the fine grid.  This bench measures whether
the warm start pays for the coarse stage: fine-sweep counts, totals and
end-to-end Step-3 time for both strategies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_tiles, profile_grid
from repro.cost.matrix import error_matrix
from repro.localsearch import local_search_parallel
from repro.mosaic.pyramid import coarse_to_fine_rearrange
from repro.tiles.grid import TileGrid
from repro.utils.timing import Stopwatch

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]


@pytest.fixture(scope="module")
def setup():
    tiles_in, tiles_tg = prepared_tiles(_N, _T)
    grid = TileGrid.from_tile_count(_N, _T)
    matrix = error_matrix(tiles_in, tiles_tg)
    return grid, tiles_in, tiles_tg, matrix


def test_flat_step3(benchmark, setup):
    _, _, _, matrix = setup
    result = benchmark(lambda: local_search_parallel(matrix))
    benchmark.extra_info.update({"total": result.total, "sweeps": result.sweeps})


@pytest.mark.parametrize("factor", [2, 4])
def test_pyramid_step3(benchmark, setup, factor):
    grid, tiles_in, tiles_tg, matrix = setup
    result = benchmark(
        lambda: coarse_to_fine_rearrange(
            tiles_in, tiles_tg, grid, factor=factor, fine_matrix=matrix
        )
    )
    benchmark.extra_info.update(
        {
            "factor": factor,
            "total": result.total,
            "coarse_total": result.coarse_total,
            "warm_start_total": result.warm_start_total,
            "fine_sweeps": result.fine_sweeps,
        }
    )


def test_pyramid_quality_and_convergence(benchmark, setup):
    grid, tiles_in, tiles_tg, matrix = setup

    def run():
        flat = local_search_parallel(matrix)
        pyramid = coarse_to_fine_rearrange(
            tiles_in, tiles_tg, grid, factor=2, fine_matrix=matrix
        )
        return flat, pyramid

    flat, pyramid = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "flat_total": flat.total,
            "pyramid_total": pyramid.total,
            "flat_sweeps": flat.sweeps,
            "pyramid_fine_sweeps": pyramid.fine_sweeps,
        }
    )
    # The warm start must not cost quality and must not add sweeps.
    assert pyramid.total <= 1.05 * flat.total
    assert pyramid.fine_sweeps <= flat.sweeps
