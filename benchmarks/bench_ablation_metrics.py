"""Ablation: cost-metric choice.

The paper fixes SAD (Eq. 1).  This bench compares SAD against SSD (GEMM
expansion) and the luminance-only metric on Step-2 time and final mosaic
quality, exposing the trade the error function makes: luminance is orders
of magnitude cheaper but ignores intra-tile structure.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_tiles, profile_grid
from repro import generate_photomosaic, standard_image
from repro.cost.matrix import error_matrix
from repro.imaging.metrics import psnr

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]

METRICS = ("sad", "ssd", "luminance", "gradient")


@pytest.mark.parametrize("metric", METRICS)
def test_metric_step2_timing(benchmark, metric):
    tiles_in, tiles_tg = prepared_tiles(_N, _T)
    matrix = benchmark(lambda: error_matrix(tiles_in, tiles_tg, metric))
    benchmark.extra_info.update({"S": matrix.shape[0], "metric": metric})
    assert (matrix >= 0).all()


def test_metric_quality_comparison(benchmark):
    """Mosaic quality (PSNR vs target) per metric, optimization algorithm."""
    inp = standard_image("portrait", _N)
    tgt = standard_image("sailboat", _N)

    def run():
        return {
            metric: psnr(
                generate_photomosaic(
                    inp,
                    tgt,
                    tile_size=_N // _T,
                    algorithm="optimization",
                    metric=metric,
                ).image,
                tgt,
            )
            for metric in METRICS
        }

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["psnr_by_metric"] = scores
    # Pixel-structure-aware metrics must beat the mean-only metric.
    assert scores["sad"] > scores["luminance"]
    assert scores["ssd"] > scores["luminance"]


def test_luminance_is_cheapest(benchmark):
    """The O(S^2) metric must beat the O(S^2 M^2) metrics on time."""
    from repro.utils.timing import Stopwatch

    tiles_in, tiles_tg = prepared_tiles(_N, _T)

    def run():
        times = {}
        for metric in METRICS:
            with Stopwatch() as sw:
                error_matrix(tiles_in, tiles_tg, metric)
            times[metric] = sw.elapsed
        return times

    times = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["seconds_by_metric"] = times
    assert times["luminance"] < times["sad"]
