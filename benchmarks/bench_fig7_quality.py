"""Figures 2 & 7 reproduction: output quality across algorithms and S.

The paper's visual claims, quantified:

* S=16^2 'does not reproduce the target image well', S=32^2 'becomes
  better', S=64^2 'very similar to the target' -> PSNR/SSIM vs the target
  must increase monotonically with S;
* optimization and approximation outputs are 'virtually the same' ->
  cross-algorithm SSIM stays high at every S.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import profile_grid
from repro import generate_photomosaic, standard_image
from repro.imaging.metrics import psnr, ssim

_N = max(n for n, _ in profile_grid())
_TILE_GRIDS = sorted({t for _, t in profile_grid()})


@pytest.mark.parametrize("algorithm", ["optimization", "parallel"])
def test_fig7_quality_improves_with_s(benchmark, algorithm):
    inp = standard_image("portrait", _N)
    tgt = standard_image("sailboat", _N)

    def run():
        scores = {}
        for t in _TILE_GRIDS:
            result = generate_photomosaic(
                inp, tgt, tile_size=_N // t, algorithm=algorithm
            )
            scores[t] = (psnr(result.image, tgt), ssim(result.image, tgt))
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["scores_by_s"] = {
        str(t): {"psnr": p, "ssim": s} for t, (p, s) in scores.items()
    }
    psnrs = [scores[t][0] for t in _TILE_GRIDS]
    ssims = [scores[t][1] for t in _TILE_GRIDS]
    assert psnrs == sorted(psnrs)
    assert ssims == sorted(ssims)


def test_fig7_algorithms_visually_equivalent(benchmark):
    inp = standard_image("portrait", _N)
    tgt = standard_image("sailboat", _N)
    t = _TILE_GRIDS[-1]

    def run():
        opt = generate_photomosaic(
            inp, tgt, tile_size=_N // t, algorithm="optimization"
        )
        apx = generate_photomosaic(inp, tgt, tile_size=_N // t, algorithm="parallel")
        return ssim(opt.image, apx.image)

    similarity = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cross_algorithm_ssim"] = similarity
    assert similarity > 0.9


def test_fig8_gallery_pairs(benchmark):
    """Fig. 8: the three extra pairs at 32x32 tiles all reproduce their
    targets better than the unrearranged input does."""
    pairs = [("airplane", "portrait"), ("peppers", "barbara"), ("tiffany", "baboon")]
    n = min(_N, 256)

    def run():
        out = {}
        for src, dst in pairs:
            inp = standard_image(src, n)
            tgt = standard_image(dst, n)
            result = generate_photomosaic(
                inp, tgt, tile_size=n // 32, algorithm="optimization"
            )
            out[f"{src}->{dst}"] = (psnr(result.image, tgt), psnr(inp, tgt))
        return out

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["psnr_mosaic_vs_input"] = {
        k: {"mosaic": a, "input": b} for k, (a, b) in scores.items()
    }
    for mosaic_psnr, input_psnr in scores.values():
        assert mosaic_psnr > input_psnr
