"""Streaming-gateway overhead and event throughput.

Two questions matter for serving:

* how much latency does routing a batch through the async gateway —
  per-event trampoline onto the loop, per-job asyncio queues, NDJSON
  bookkeeping — add over driving the same :class:`WorkerPool` directly;
* how many events per second can one gateway loop dispatch when jobs
  stream fine-grained sweep progress.

Both run on thread workers with the real mosaic runner, so the numbers
include genuine per-sweep emissions, not synthetic no-op events.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    ArtifactCache,
    JobSpec,
    MosaicGateway,
    MosaicJobRunner,
    WorkerPool,
)

_INPUTS = ["portrait", "peppers", "barbara", "baboon"]
_SIZE = 64
_TILE = 8
_WORKERS = 2


def _specs() -> list[JobSpec]:
    return [
        JobSpec(input=name, target="sailboat", name=f"job{i}",
                size=_SIZE, tile_size=_TILE, seed=i)
        for i, name in enumerate(_INPUTS)
    ]


def _pool(cache) -> WorkerPool:
    return WorkerPool(workers=_WORKERS, runner=MosaicJobRunner(cache=cache),
                      cache=cache, seed=0)


def test_pool_direct_baseline(benchmark):
    """Reference: the same batch via WorkerPool.run, no streaming."""

    def run():
        with _pool(ArtifactCache(max_bytes=256 << 20)) as pool:
            records = pool.run(_specs())
        assert all(r.state.value == "DONE" for r in records)
        return records

    records = benchmark(run)
    benchmark.extra_info["jobs"] = len(records)


def test_gateway_streamed_batch(benchmark):
    """The same batch through the gateway, consuming every event."""
    counts = {}

    def run():
        async def go():
            pool = _pool(ArtifactCache(max_bytes=256 << 20))
            events = 0
            async with MosaicGateway(pool, max_pending=8) as gateway:
                streams = [await gateway.submit(spec) for spec in _specs()]
                for stream in streams:
                    events += len(await stream.collect())
            pool.shutdown()
            assert all(s.record.state.value == "DONE" for s in streams)
            return events

        counts["events"] = asyncio.run(go())

    benchmark(run)
    benchmark.extra_info["jobs"] = len(_INPUTS)
    benchmark.extra_info["events_per_batch"] = counts["events"]
    assert counts["events"] >= len(_INPUTS) * 4  # admitted+running+phases+done


@pytest.mark.parametrize("jobs", [16])
def test_event_dispatch_throughput(benchmark, jobs):
    """Events/sec through the loop with a cheap, chatty runner."""

    class ChattyRunner:
        accepts_context = True

        def __call__(self, spec, ctx=None):
            if ctx is not None:
                for step in range(50):
                    ctx.emit("sweep", {"sweep": step, "swaps": 0, "total": 0})
            return spec.name

    def run():
        async def go():
            pool = WorkerPool(workers=_WORKERS, runner=ChattyRunner(), seed=0)
            total = 0
            async with MosaicGateway(pool, max_pending=jobs) as gateway:
                streams = [
                    await gateway.submit(
                        JobSpec(input="x", target="y", name=f"j{i}")
                    )
                    for i in range(jobs)
                ]
                for stream in streams:
                    total += len(await stream.collect())
            pool.shutdown()
            return total

        return asyncio.run(go())

    total = benchmark(run)
    # 50 sweeps + admitted + RUNNING + DONE per job.
    assert total == jobs * 53
    benchmark.extra_info["events_per_round"] = total
