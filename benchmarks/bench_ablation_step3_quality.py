"""Ablation: how much quality each Step-3 method buys per unit time.

The paper offers two points on the quality/time curve: exact matching
(optimal, slow) and 2-opt local search (~2% gap, fast).  This bench places
the repository's extensions on the same curve — windowed search (cheaper
sweeps), multi-start, and simulated annealing — quantifying each method's
gap to the optimum.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, prepared_tiles, profile_grid
from repro.assignment import get_solver
from repro.localsearch import (
    local_search_serial,
    local_search_windowed,
    multi_start_local_search,
    refine_three_opt,
    simulated_annealing,
)
from repro.tiles.features import mean_luminance

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]


@pytest.fixture(scope="module")
def matrix():
    return prepared_matrix(_N, _T)


@pytest.fixture(scope="module")
def luminance():
    tiles_in, _ = prepared_tiles(_N, _T)
    return mean_luminance(tiles_in)


@pytest.fixture(scope="module")
def optimum(matrix):
    return get_solver("scipy").solve(matrix).total


def _two_opt_plus_three_opt(m):
    base = local_search_serial(m)
    return refine_three_opt(m, base.permutation, seed=0).total


def _methods(luminance):
    return {
        "local_search": lambda m: local_search_serial(m).total,
        "windowed_16": lambda m: local_search_windowed(m, luminance, window=16).total,
        "multistart_4": lambda m: multi_start_local_search(m, restarts=4).total,
        "annealing": lambda m: simulated_annealing(m, seed=0).total,
        "three_opt": _two_opt_plus_three_opt,
        "exact": lambda m: get_solver("scipy").solve(m).total,
    }


@pytest.mark.parametrize(
    "method",
    ["local_search", "windowed_16", "multistart_4", "annealing", "three_opt", "exact"],
)
def test_step3_method(benchmark, method, matrix, luminance, optimum):
    run = _methods(luminance)[method]
    total = benchmark(lambda: run(matrix))
    gap = 100.0 * (total - optimum) / optimum
    benchmark.extra_info.update(
        {"S": matrix.shape[0], "total": total, "gap_to_optimal_pct": gap}
    )
    assert total >= optimum
    # Every method stays within the usable band.
    assert gap <= 10.0


def test_quality_ordering(benchmark, matrix, luminance, optimum):
    """The expected dominance order: exact <= annealing/multistart <= plain
    local search; windowed within a small premium of plain."""

    def run():
        methods = _methods(luminance)
        return {name: fn(matrix) for name, fn in methods.items()}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["totals"] = totals
    assert totals["exact"] == optimum
    assert totals["annealing"] <= totals["local_search"]
    assert totals["multistart_4"] <= totals["local_search"]
    assert totals["three_opt"] <= totals["local_search"]
    # The window covers 16/256 of each sweep's candidates; a high-single-
    # digit premium over the full sweep is the expected trade.
    assert totals["windowed_16"] <= 1.10 * totals["local_search"]
