"""Throughput of the batch job service under a repeated-target workload.

Serving traffic is dominated by many inputs mosaicked against few
targets, so the artifact cache should collapse most Step-1/Step-2 work
after the first job per (input, target) pair.  This bench measures
jobs/sec at 1 and 4 workers and records the cache hit-rate alongside,
so the JSON export shows both the parallel speedup and how much of it
the cache is responsible for.
"""

from __future__ import annotations

import pytest

from repro.service import ArtifactCache, JobSpec, MosaicJobRunner, WorkerPool

_INPUTS = ["portrait", "peppers", "portrait", "barbara",
           "portrait", "peppers", "baboon", "portrait"]
_SIZE = 64
_TILE = 8
# Thread workers, not processes: oversubscribing cores is harmless and
# the 1-vs-4 comparison still shows queueing/cache interplay on any box.
_WORKER_COUNTS = (1, 4)


def _specs() -> list[JobSpec]:
    return [
        JobSpec(input=name, target="sailboat", name=f"job{i}",
                size=_SIZE, tile_size=_TILE, seed=i)
        for i, name in enumerate(_INPUTS)
    ]


def _run_batch(workers: int, cache: ArtifactCache | None):
    specs = _specs()
    with WorkerPool(workers=workers, kind="thread",
                    runner=MosaicJobRunner(cache=cache), cache=cache,
                    seed=0) as pool:
        records = pool.run(specs)
    assert all(r.state.value == "DONE" for r in records), [
        (r.spec.name, r.state, r.error) for r in records
    ]
    return records


@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_jobs_per_second(benchmark, workers):
    stats_holder = {}

    def run():
        # Fresh cache per round so the measured hit-rate is the
        # within-batch rate, not an artifact of benchmark repetition.
        cache = ArtifactCache(max_bytes=256 << 20)
        _run_batch(workers, cache)
        stats_holder["cache"] = cache.stats.as_dict()

    benchmark(run)
    jobs_per_sec = len(_INPUTS) / benchmark.stats["mean"]
    benchmark.extra_info.update(
        {
            "workers": workers,
            "jobs": len(_INPUTS),
            "jobs_per_sec": round(jobs_per_sec, 3),
            "cache_hit_rate": round(stats_holder["cache"]["hit_rate"], 3),
            "cache": stats_holder["cache"],
        }
    )
    # 8 jobs over 1 shared target + repeated (input, target) pairs must
    # reuse more artifacts than they compute.
    assert stats_holder["cache"]["hit_rate"] > 0.5


def test_cache_disabled_baseline(benchmark):
    """The no-cache control: same workload, every artifact recomputed."""
    workers = _WORKER_COUNTS[-1]
    benchmark(lambda: _run_batch(workers, cache=None))
    benchmark.extra_info.update(
        {
            "workers": workers,
            "jobs": len(_INPUTS),
            "jobs_per_sec": round(len(_INPUTS) / benchmark.stats["mean"], 3),
            "cache_hit_rate": 0.0,
        }
    )
