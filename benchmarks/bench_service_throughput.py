"""Throughput of the batch job service under a repeated-target workload.

Serving traffic is dominated by many inputs mosaicked against few
targets, so the artifact cache should collapse most Step-1/Step-2 work
after the first job per (input, target) pair.  This bench measures
jobs/sec at 1 and 4 workers and records the cache hit-rate alongside,
so the JSON export shows both the parallel speedup and how much of it
the cache is responsible for.
"""

from __future__ import annotations

import pytest

from repro.service import (
    ArtifactCache,
    CacheStack,
    DiskCacheStore,
    JobSpec,
    MosaicJobRunner,
    WorkerPool,
)

_INPUTS = ["portrait", "peppers", "portrait", "barbara",
           "portrait", "peppers", "baboon", "portrait"]
_SIZE = 64
_TILE = 8
# Thread workers, not processes: oversubscribing cores is harmless and
# the 1-vs-4 comparison still shows queueing/cache interplay on any box.
_WORKER_COUNTS = (1, 4)


def _specs() -> list[JobSpec]:
    return [
        JobSpec(input=name, target="sailboat", name=f"job{i}",
                size=_SIZE, tile_size=_TILE, seed=i)
        for i, name in enumerate(_INPUTS)
    ]


def _run_batch(workers: int, cache: ArtifactCache | None, kind: str = "thread"):
    specs = _specs()
    with WorkerPool(workers=workers, kind=kind,
                    runner=MosaicJobRunner(cache=cache), cache=cache,
                    seed=0) as pool:
        records = pool.run(specs)
    assert all(r.state.value == "DONE" for r in records), [
        (r.spec.name, r.state, r.error) for r in records
    ]
    return records


@pytest.mark.parametrize("workers", _WORKER_COUNTS)
def test_jobs_per_second(benchmark, workers):
    stats_holder = {}

    def run():
        # Fresh cache per round so the measured hit-rate is the
        # within-batch rate, not an artifact of benchmark repetition.
        cache = ArtifactCache(max_bytes=256 << 20)
        _run_batch(workers, cache)
        stats_holder["cache"] = cache.stats.as_dict()

    benchmark(run)
    jobs_per_sec = len(_INPUTS) / benchmark.stats["mean"]
    benchmark.extra_info.update(
        {
            "workers": workers,
            "jobs": len(_INPUTS),
            "jobs_per_sec": round(jobs_per_sec, 3),
            "cache_hit_rate": round(stats_holder["cache"]["hit_rate"], 3),
            "cache": stats_holder["cache"],
        }
    )
    # 8 jobs over 1 shared target + repeated (input, target) pairs must
    # reuse more artifacts than they compute.
    assert stats_holder["cache"]["hit_rate"] > 0.5


def test_process_workers_shared_disk_cache(benchmark, tmp_path):
    """Warm-manifest throughput with 4 *process* workers over one store.

    The cold pass (outside the timed region) populates a shared
    ``DiskCacheStore``; the benchmark then times repeated warm passes of
    the identical manifest.  Each process worker ships a fresh memory
    tier, so every warm hit must cross the process boundary through the
    disk store — the measured Step-2 hit-rate is the cross-process one.
    """
    workers = _WORKER_COUNTS[-1]
    cache_dir = tmp_path / "shared-cache"

    def stack():
        # Rebuilt per pass: a cold memory tier in the parent, the same
        # on-disk store behind it (exactly what a second CLI run sees).
        return CacheStack(memory=ArtifactCache(max_bytes=64 << 20),
                          disk=DiskCacheStore(cache_dir, max_bytes=1 << 30))

    _run_batch(workers, stack(), kind="process")  # cold pass, untimed
    stats_holder = {}

    def run():
        records = _run_batch(workers, stack(), kind="process")
        outcomes = [r.result.meta["cache"]["step2_matrix"] for r in records]
        stats_holder["step2_hit_rate"] = (
            outcomes.count("hit") / len(outcomes)
        )

    benchmark(run)
    step2_hit_rate = stats_holder["step2_hit_rate"]
    benchmark.extra_info.update(
        {
            "workers": workers,
            "executor": "process",
            "jobs": len(_INPUTS),
            "jobs_per_sec": round(len(_INPUTS) / benchmark.stats["mean"], 3),
            "step2_hit_rate": round(step2_hit_rate, 3),
        }
    )
    # A warm manifest must be served almost entirely from the shared
    # store: >= 90% of Step-2 matrices arrive as cross-process hits.
    assert step2_hit_rate >= 0.9, stats_holder


def test_cache_disabled_baseline(benchmark):
    """The no-cache control: same workload, every artifact recomputed."""
    workers = _WORKER_COUNTS[-1]
    benchmark(lambda: _run_batch(workers, cache=None))
    benchmark.extra_info.update(
        {
            "workers": workers,
            "jobs": len(_INPUTS),
            "jobs_per_sec": round(len(_INPUTS) / benchmark.stats["mean"], 3),
            "cache_hit_rate": 0.0,
        }
    )
