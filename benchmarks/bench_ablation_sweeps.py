"""Ablation: local-search sweep strategy.

Algorithm 1's pair order is one of many 2-opt schedules.  This bench
compares the paper-faithful first-improvement sweep, the vectorised
best-per-row sweep, and the colour-class parallel sweep: all reach 2-opt
local optima, so the ablation quantifies the time/quality trade the paper
implicitly made.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.assignment import get_solver
from repro.localsearch import local_search_parallel, local_search_serial

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]


@pytest.fixture(scope="module")
def matrix():
    return prepared_matrix(_N, _T)


@pytest.fixture(scope="module")
def optimum(matrix):
    return get_solver("scipy").solve(matrix).total


STRATEGIES = {
    "first": lambda m: local_search_serial(m, strategy="first"),
    "best_row": lambda m: local_search_serial(m, strategy="best_row"),
    "parallel": lambda m: local_search_parallel(m),
}


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_sweep_strategy(benchmark, strategy, matrix, optimum):
    run = STRATEGIES[strategy]
    result = benchmark(lambda: run(matrix))
    benchmark.extra_info.update(
        {
            "S": matrix.shape[0],
            "total": result.total,
            "sweeps": result.sweeps,
            "gap_to_optimal_pct": 100.0 * (result.total - optimum) / optimum,
        }
    )
    assert result.total >= optimum
    assert result.total <= 1.10 * optimum  # all schedules land near-optimal


def test_strategies_reach_comparable_quality(benchmark, matrix):
    def run():
        return {name: fn(matrix).total for name, fn in STRATEGIES.items()}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["totals"] = totals
    lo, hi = min(totals.values()), max(totals.values())
    assert (hi - lo) <= 0.05 * lo
