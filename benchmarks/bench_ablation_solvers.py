"""Ablation: assignment-solver choice.

The paper used Blossom V because it was the fastest exact solver for its
instance sizes (Section III).  This bench compares the repository's four
exact solvers and the greedy baseline on the same matrix: all exact
solvers must return the same optimum (so the choice is pure wall-clock),
and greedy's quality gap is quantified.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import prepared_matrix, profile_grid
from repro.assignment import get_solver

_N = max(n for n, _ in profile_grid())
_T = sorted({t for _, t in profile_grid()})[-1]
_TILE_SMALL = sorted({t for _, t in profile_grid()})[0]

EXACT = ("scipy", "jv", "hungarian", "auction")


@pytest.fixture(scope="module")
def matrix():
    return prepared_matrix(_N, _T)


@pytest.mark.parametrize("name", EXACT + ("greedy",))
def test_solver_timing(benchmark, name, matrix):
    solver = get_solver(name)
    result = benchmark(lambda: solver.solve(matrix))
    reference = get_solver("scipy").solve(matrix).total
    benchmark.extra_info.update(
        {
            "S": matrix.shape[0],
            "total": result.total,
            "optimal": result.optimal,
            "gap_pct": 100.0 * (result.total - reference) / reference,
        }
    )
    if name in EXACT:
        assert result.total == reference
    else:
        assert result.total >= reference
        # Greedy stays within a usable band on natural images.
        assert result.total <= 1.5 * reference


def test_exact_solvers_identical_quality(benchmark, matrix):
    def run():
        return {name: get_solver(name).solve(matrix).total for name in EXACT}

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["totals"] = totals
    assert len(set(totals.values())) == 1


def test_blossom_family_agrees(benchmark):
    """The paper's own algorithm family (Edmonds blossom on the Fig. 4
    bipartite graph) must find the same optimum the LAP solvers find.
    Run at reduced S — general matching in pure Python is slow, which is
    this repository's reason for defaulting to assignment solvers."""
    small = prepared_matrix(_N, _TILE_SMALL)

    def run():
        return {
            "blossom": get_solver("blossom").solve(small).total,
            "scipy": get_solver("scipy").solve(small).total,
        }

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["totals"] = totals
    assert totals["blossom"] == totals["scipy"]
