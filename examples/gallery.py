"""Figure 8 reproduction: three more image pairs at 32 x 32 tiles.

Runs the optimization algorithm (as the paper's Fig. 8 does) on the
airplane->portrait, peppers->barbara and tiffany->baboon stand-in pairs at
N = 512, writing input/target/mosaic triplets.

Run:  python examples/gallery.py
"""

from __future__ import annotations

import os

from repro import MosaicConfig, PhotomosaicGenerator, save_image, standard_image

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "gallery")

# The paper's Fig. 8 pairs, with `portrait` standing in for Lena.
PAIRS = (
    ("airplane", "portrait"),
    ("peppers", "barbara"),
    ("tiffany", "baboon"),
)


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    size = 512
    config = MosaicConfig(tile_size=size // 32, algorithm="optimization")
    generator = PhotomosaicGenerator(config)
    for input_name, target_name in PAIRS:
        input_image = standard_image(input_name, size)
        target_image = standard_image(target_name, size)
        result = generator.generate(input_image, target_image)
        base = os.path.join(OUT_DIR, f"{input_name}_to_{target_name}")
        save_image(f"{base}_input.png", input_image)
        save_image(f"{base}_target.png", target_image)
        save_image(f"{base}_mosaic.png", result.image)
        print(
            f"{input_name:>9} -> {target_name:<9} "
            f"total error {result.total_error:>10}  ({base}_mosaic.png)"
        )
    print(f"\nimages written to {OUT_DIR}")


if __name__ == "__main__":
    main()
