"""Quickstart: generate one photomosaic by rearranging subimages.

Divides an input image into tiles and rearranges them so the result
reproduces a target image (Yang, Ito & Nakano 2017).  Writes the input,
target and mosaic as PNGs next to this script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import generate_photomosaic, save_image, standard_image

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "quickstart")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    size = 512
    input_image = standard_image("portrait", size)   # the paper's "Lena" role
    target_image = standard_image("sailboat", size)  # the paper's Fig. 2 target

    result = generate_photomosaic(
        input_image,
        target_image,
        tile_size=16,          # 32 x 32 = 1024 tiles, the paper's Fig. 2 setting
        algorithm="parallel",  # Algorithm 2 (colour-class parallel local search)
    )

    save_image(os.path.join(OUT_DIR, "input.png"), input_image)
    save_image(os.path.join(OUT_DIR, "target.png"), target_image)
    save_image(os.path.join(OUT_DIR, "mosaic.png"), result.image)

    print(f"tiles            : {result.permutation.shape[0]}")
    print(f"total error      : {result.total_error}")
    print(f"sweeps (k)       : {result.sweeps}")
    print(f"step 2 (errors)  : {result.timings.get('step2_error_matrix'):.3f}s")
    print(f"step 3 (rearr.)  : {result.timings.get('step3_rearrangement'):.3f}s")
    print(f"outputs in {OUT_DIR}")


if __name__ == "__main__":
    main()
