"""Extension: closing the gap between local search and the optimum.

Table I shows Algorithm 1 lands 1.7-2.3% above the exact optimum.  This
example compares four ways to spend extra compute on Step 3 — plain local
search, multi-start local search, simulated annealing, and exact matching
— on the same error matrix, reporting quality and time for each.

Run:  python examples/beyond_local_optima.py
"""

from __future__ import annotations

import time

from repro import standard_image
from repro.assignment import get_solver
from repro.benchharness.tables import format_table
from repro.cost import error_matrix
from repro.imaging.histogram import match_histogram
from repro.localsearch import (
    local_search_serial,
    multi_start_local_search,
    refine_three_opt,
    simulated_annealing,
)
from repro.tiles import TileGrid


def main() -> None:
    size, tiles_per_side = 256, 16
    inp = standard_image("portrait", size)
    tgt = standard_image("sailboat", size)
    grid = TileGrid.from_tile_count(size, tiles_per_side)
    matrix = error_matrix(
        grid.split(match_histogram(inp, tgt)), grid.split(tgt)
    )

    def two_plus_three_opt() -> int:
        base = local_search_serial(matrix)
        return refine_three_opt(matrix, base.permutation, seed=0).total

    methods = {
        "local search (Alg. 1)": lambda: local_search_serial(matrix).total,
        "multi-start x4": lambda: multi_start_local_search(
            matrix, restarts=4
        ).total,
        "2-opt + 3-opt": two_plus_three_opt,
        "simulated annealing": lambda: simulated_annealing(matrix, seed=0).total,
        "exact matching": lambda: get_solver("scipy").solve(matrix).total,
    }

    optimum = get_solver("scipy").solve(matrix).total
    rows = []
    for name, run in methods.items():
        start = time.perf_counter()
        total = run()
        elapsed = time.perf_counter() - start
        rows.append(
            [name, total, f"{100 * (total - optimum) / optimum:.3f}%", elapsed]
        )
    print(
        format_table(
            f"Step-3 quality/time trade at S={tiles_per_side}^2",
            ["method", "total error", "gap to optimal", "time [s]"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
