"""Figure 7 reproduction: optimization vs approximation across tile counts.

Generates the portrait->sailboat photomosaic with all three algorithms at
S = 16^2, 32^2 and 64^2 tiles, writes every output image, and prints the
Table I-style error comparison plus image-quality metrics (PSNR/SSIM vs
the target) that quantify the paper's visual claims.

Run:  python examples/compare_algorithms.py [--size 512] [--tiles 16,32,64]

Note: the faithful Algorithm-1 sweep is a scalar Python loop; at S=64^2 it
takes minutes, so this example runs the serial approximation with the
vectorised ``best_row`` sweep (same 2-opt semantics and fixed points, see
docs/algorithms.md) — the faithful loop is timed in the benchmarks.
"""

from __future__ import annotations

import argparse
import os

from repro import MosaicConfig, PhotomosaicGenerator, save_image, standard_image
from repro.benchharness.tables import format_table
from repro.imaging import psnr, ssim

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "compare")

ALGORITHMS = (
    ("optimization", "opt"),
    ("approximation", "approx_cpu"),
    ("parallel", "approx_gpu"),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=512, help="image side N")
    parser.add_argument(
        "--tiles",
        default="16,32,64",
        help="comma-separated tiles-per-side values",
    )
    args = parser.parse_args()
    tile_grids = [int(t) for t in args.tiles.split(",")]
    os.makedirs(OUT_DIR, exist_ok=True)

    input_image = standard_image("portrait", args.size)
    target_image = standard_image("sailboat", args.size)
    save_image(os.path.join(OUT_DIR, "input.png"), input_image)
    save_image(os.path.join(OUT_DIR, "target.png"), target_image)

    rows = []
    for tiles_per_side in tile_grids:
        tile_size = args.size // tiles_per_side
        for algorithm, tag in ALGORITHMS:
            config = MosaicConfig(
                tile_size=tile_size,
                algorithm=algorithm,
                serial_strategy="best_row",  # see module docstring
            )
            result = PhotomosaicGenerator(config).generate(input_image, target_image)
            name = f"s{tiles_per_side}_{tag}.png"
            save_image(os.path.join(OUT_DIR, name), result.image)
            rows.append(
                [
                    f"{tiles_per_side}x{tiles_per_side}",
                    tag,
                    result.total_error,
                    round(psnr(result.image, target_image), 2),
                    round(ssim(result.image, target_image), 4),
                    "-" if result.sweeps is None else result.sweeps,
                    name,
                ]
            )
    print(
        format_table(
            f"Fig. 7 / Table I reproduction at N={args.size} (portrait -> sailboat)",
            ["S", "algorithm", "total error", "PSNR[dB]", "SSIM", "k", "file"],
            rows,
        )
    )
    print(f"\nimages written to {OUT_DIR}")


if __name__ == "__main__":
    main()
