"""Real-time-style video photomosaic.

The paper motivates the approximation algorithm with interactive and
real-time video photomosaic systems (Section III, refs [16]-[18]).  This
example plays that scenario: one fixed input image is rearranged to follow
a *sequence* of target frames.  The expensive per-S artefacts (the edge
groups P_1..P_S) are built once and reused for every frame, exactly as
Section IV-B prescribes, and each frame warm-starts from the previous
frame's permutation — successive frames differ little, so the local search
converges in very few sweeps.

Run:  python examples/video_mosaic.py [--frames 8]
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro import VideoMosaicSession, save_image, standard_image

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "video")


def make_frame(base: np.ndarray, t: float) -> np.ndarray:
    """Synthesise target frame ``t``: the base image under a moving light."""
    n = base.shape[0]
    ys, xs = np.meshgrid(np.linspace(0, 1, n), np.linspace(0, 1, n), indexing="ij")
    cx = 0.5 + 0.35 * np.cos(2 * np.pi * t)
    cy = 0.5 + 0.35 * np.sin(2 * np.pi * t)
    light = 60.0 * np.exp(-8.0 * ((ys - cy) ** 2 + (xs - cx) ** 2))
    return np.clip(base.astype(np.float64) + light - 20.0, 0, 255).astype(np.uint8)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=8)
    parser.add_argument("--size", type=int, default=256)
    parser.add_argument("--tiles", type=int, default=16, help="tiles per side")
    args = parser.parse_args()
    os.makedirs(OUT_DIR, exist_ok=True)

    input_image = standard_image("portrait", args.size)
    base_target = standard_image("sailboat", args.size)

    # The session builds the tile grid and the edge groups P_1..P_S once
    # (Section IV-B) and warm-starts each frame from the previous one.
    session = VideoMosaicSession(input_image, args.size // args.tiles)

    for frame_idx in range(args.frames):
        target = make_frame(base_target, frame_idx / args.frames)
        start = time.perf_counter()
        frame = session.process_frame(target)
        elapsed = time.perf_counter() - start
        save_image(os.path.join(OUT_DIR, f"frame_{frame_idx:03d}.png"), frame.image)
        print(
            f"frame {frame_idx:3d}: error {frame.total_error:>9}  "
            f"k={frame.sweeps}  {elapsed * 1000:7.1f} ms"
        )
    print(f"\nframes written to {OUT_DIR}")


if __name__ == "__main__":
    main()
