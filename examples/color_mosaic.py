"""Colour photomosaic — the Section-II extension, end to end.

The paper: "we can easily extend the proposed photomosaic method to deal
with color images only by changing the error function."  This example does
exactly that: colour renditions of the stand-in images are rearranged
under the channel-weighted colour metric, and the result is compared with
the grayscale pipeline on the same pair.

Run:  python examples/color_mosaic.py
"""

from __future__ import annotations

import os

from repro import generate_photomosaic, save_image, standard_image, standard_image_color
from repro.imaging import psnr, rgb_to_gray, side_by_side

OUT_DIR = os.path.join(os.path.dirname(__file__), "output", "color")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    size = 256
    tile_size = size // 32

    input_color = standard_image_color("peppers", size)
    target_color = standard_image_color("portrait", size)
    result_color = generate_photomosaic(
        input_color,
        target_color,
        tile_size=tile_size,
        algorithm="parallel",
        metric="color",  # the changed error function
    )
    save_image(os.path.join(OUT_DIR, "input.png"), input_color)
    save_image(os.path.join(OUT_DIR, "target.png"), target_color)
    save_image(os.path.join(OUT_DIR, "mosaic_color.png"), result_color.image)
    save_image(
        os.path.join(OUT_DIR, "sheet.png"),
        side_by_side(input_color, target_color, result_color.image),
    )

    # Grayscale reference on the same content.
    result_gray = generate_photomosaic(
        rgb_to_gray(input_color),
        rgb_to_gray(target_color),
        tile_size=tile_size,
        algorithm="parallel",
    )
    print(f"colour  : total error {result_color.total_error:>10}, "
          f"PSNR vs target {psnr(result_color.image, target_color):6.2f} dB, "
          f"k={result_color.sweeps}")
    print(f"grayscale: total error {result_gray.total_error:>10}, "
          f"PSNR vs target {psnr(result_gray.image, rgb_to_gray(target_color)):6.2f} dB, "
          f"k={result_gray.sweeps}")
    print(f"images written to {OUT_DIR}")


if __name__ == "__main__":
    main()
